//! Vendored subset of the `bytes` crate: [`Bytes`], [`BytesMut`] and the
//! [`Buf`] / [`BufMut`] traits, restricted to the contiguous little-endian
//! accessors the snapshot codec needs.  Backed by plain `Vec<u8>` — no
//! refcounted slices, which this workspace never relies on.

use std::ops::Deref;

/// An immutable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// A growable byte buffer with little-endian write accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read access to a byte cursor (subset of `bytes::Buf`).  Implemented for
/// `&[u8]`, which advances through the slice as values are read.
///
/// Like the real crate, the `get_*` accessors panic when the buffer is too
/// short — callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `n` bytes into a fresh slice reference, advancing the cursor.
    fn take(&mut self, n: usize) -> &[u8];

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize) {
        let _ = self.take(n);
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().unwrap())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_i64_le(-42);
        buf.put_f64_le(3.25);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor.get_f64_le(), 3.25);
        assert_eq!(cursor.remaining(), 4);
        assert_eq!(&cursor[..2], b"ta");
        cursor.advance(2);
        assert_eq!(cursor, b"il");
        cursor.advance(2);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn bytes_construction() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let v: Bytes = vec![9u8].into();
        assert_eq!(v.as_ref(), &[9]);
        assert!(BytesMut::new().is_empty());
    }
}
