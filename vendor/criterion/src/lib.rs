//! Vendored subset of the `criterion` benchmark harness.
//!
//! Provides the API surface the `sgl-bench` suite uses — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`] —
//! with a deliberately simple measurement model: each benchmark closure is
//! warmed up once and then timed `sample_size` times, and the mean / min /
//! max per-iteration wall-clock times are printed to stdout.  There is no
//! statistical analysis, plotting or HTML report; benches exist in this
//! workspace to be runnable and comparable, not publication-grade.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work.  Re-exported name-compatible with `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times one benchmark: the closure passed to `iter` is warmed up once and
/// then run `samples` times.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Measure a closure.  The closure's return value is black-boxed so the
    /// computation cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
            max = max.max(elapsed);
        }
        self.result = Some((total / self.samples as u32, min, max));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((mean, min, max)) => println!(
                "{full:<60} time: [{} {} {}]",
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max)
            ),
            None => println!("{full:<60} (no measurement)"),
        }
    }

    /// Benchmark a closure under a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (prints nothing; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Apply command-line configuration.  Supports the one flag the harness
    /// cares about: a positional substring filter (as `cargo bench -- foo`),
    /// and ignores criterion's own flags (`--bench`, `--save-baseline`, ...).
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--bench" || arg == "--test" {
                continue;
            }
            if arg.starts_with("--") {
                // Flags with a value: skip the value when not `--flag=value`.
                if !arg.contains('=') {
                    let _ = args.next();
                }
                continue;
            }
            self.filter = Some(arg);
        }
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmark a closure outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.run(id.to_string(), f);
        self
    }
}

/// Define a benchmark group function, compatible with
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark `main`, compatible with `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test_group");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
