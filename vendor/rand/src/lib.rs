//! Vendored subset of the `rand` crate: [`rngs::SmallRng`] (xoshiro256++),
//! the [`Rng`] / [`SeedableRng`] traits, and `gen_range` over half-open
//! ranges of the primitive types this workspace samples.  Deterministic for
//! a fixed seed, which is all the scenario generators need.

use std::ops::Range;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (expanded with splitmix64).
    fn from_u64_seed(state: u64) -> Self;

    /// `rand`-compatible name for [`SeedableRng::from_u64_seed`].
    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64_seed(state)
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// The core generator interface: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from the half-open range `[start, end)`.
    ///
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample(self, range.start, range.end)
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, low: f64, high: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for i64 {
    fn sample(rng: &mut dyn RngCore, low: i64, high: i64) -> i64 {
        let span = (high - low) as u64;
        low + (rng.next_u64() % span) as i64
    }
}

impl SampleUniform for usize {
    fn sample(rng: &mut dyn RngCore, low: usize, high: usize) -> usize {
        let span = (high - low) as u64;
        low + (rng.next_u64() % span) as usize
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++), seedable from a `u64`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }

        fn from_u64_seed(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..10).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..10).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..1000 {
            let f = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&f));
            let i = rng.gen_range(-3i64..5);
            assert!((-3..5).contains(&i));
            let u = rng.gen_range(2usize..9);
            assert!((2..9).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(1.0..1.0);
    }
}
