//! Vendored subset of the `rustc-hash` crate: the Fx hash function (as used
//! by rustc) plus the `FxHashMap` / `FxHashSet` aliases.  API-compatible with
//! the crates.io version for everything this workspace uses.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: a fast, non-cryptographic, deterministic hasher based on
/// the one Firefox and rustc use (multiply + rotate per word).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("one".into(), 1);
        assert_eq!(m.get("one"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
