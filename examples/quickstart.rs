//! Quickstart: compile an SGL script, build a small game and run a few ticks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use sgl::engine::{Mechanics, UnitSelector};
use sgl::env::postprocess::paper_postprocessor;
use sgl::env::{schema::paper_schema, EnvTable, TupleBuilder};
use sgl::lang::builtins::paper_registry;
use sgl::GameBuilder;

const SCRIPT: &str = r#"
main(u) {
  (let c = CountEnemiesInRange(u, 10))
  if c > 3 then
    perform MoveInDirection(u, u.posx - 5, u.posy);
  else if c > 0 and u.cooldown = 0 then
    perform FireAt(u, getNearestEnemy(u).key);
  else
    perform MoveInDirection(u, 25, 25);
}
"#;

fn main() {
    // 1. The environment schema of Eq. (1) and the built-ins of Figures 4/5.
    let schema = paper_schema().into_shared();
    let registry = paper_registry();

    // 2. Populate the world with two small armies.
    let mut table = EnvTable::new(Arc::clone(&schema));
    for key in 0..20i64 {
        let unit = TupleBuilder::new(&schema)
            .set("key", key)
            .unwrap()
            .set("player", key % 2)
            .unwrap()
            .set("posx", (key * 2) as f64)
            .unwrap()
            .set("posy", ((key * 7) % 30) as f64)
            .unwrap()
            .set("health", 20i64)
            .unwrap()
            .build();
        table.insert(unit).unwrap();
    }

    // 3. Game mechanics: the post-processing query of Example 4.1.
    let mechanics = Mechanics {
        post: paper_postprocessor(&schema, 1.0, 2).expect("paper schema"),
        movement: None,
        resurrect: None,
    };

    // 4. Compile the script, build and run the game (indexed execution).
    let mut sim = GameBuilder::new(Arc::clone(&schema), registry, mechanics)
        .seed(7)
        .script("skirmish", SCRIPT, UnitSelector::All)
        .build(table)
        .expect("script compiles");

    for _ in 0..10 {
        let report = sim.step().expect("tick succeeds");
        println!(
            "tick {:>2}: {:>2} units alive, {} aggregate probes, {} index probes",
            report.tick, report.population, report.exec.aggregate_probes, report.exec.index_probes
        );
    }
}
