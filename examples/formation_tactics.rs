//! Formation tactics from §3.2: archers keep the knights between themselves
//! and the enemy centroid; knights close ranks when their formation spreads
//! out.  Runs the full battle scripts on a small scenario and prints how far
//! the archers stay behind the knights.
//!
//! ```text
//! cargo run --release --example formation_tactics
//! ```

use sgl::battle::{BattleScenario, Formation, ScenarioConfig, UnitKind, UnitMix};
use sgl::exec::ExecMode;

fn main() {
    let config = ScenarioConfig {
        units: 240,
        density: 0.02,
        mix: UnitMix {
            knights: 0.5,
            archers: 0.5,
            healers: 0.0,
        },
        seed: 11,
        resurrect: false,
        formation: Formation::Line,
    };
    let scenario = BattleScenario::generate(config);
    let mut sim = scenario.build_simulation(ExecMode::Indexed);

    let schema = scenario.schema.clone();
    let player = schema.attr_id("player").unwrap();
    let unittype = schema.attr_id("unittype").unwrap();
    let posx = schema.attr_id("posx").unwrap();

    println!("tick | p0 knights x | p0 archers x | p1 centroid x | archers behind knights?");
    for tick in 0..40 {
        sim.step().expect("tick succeeds");
        if tick % 8 != 7 {
            continue;
        }
        let mut knight_x = (0.0, 0usize);
        let mut archer_x = (0.0, 0usize);
        let mut enemy_x = (0.0, 0usize);
        for (_, row) in sim.table().iter() {
            let x = row.get_f64(posx).unwrap();
            if row.get_i64(player).unwrap() == 0 {
                if row.get_i64(unittype).unwrap() == UnitKind::Knight.code() {
                    knight_x = (knight_x.0 + x, knight_x.1 + 1);
                } else if row.get_i64(unittype).unwrap() == UnitKind::Archer.code() {
                    archer_x = (archer_x.0 + x, archer_x.1 + 1);
                }
            } else {
                enemy_x = (enemy_x.0 + x, enemy_x.1 + 1);
            }
        }
        let k = knight_x.0 / knight_x.1.max(1) as f64;
        let a = archer_x.0 / archer_x.1.max(1) as f64;
        let e = enemy_x.0 / enemy_x.1.max(1) as f64;
        // Player 1 attacks from the right, so "behind" means archers have a
        // smaller x than knights.
        let behind = if e > k { a <= k + 1.0 } else { a >= k - 1.0 };
        println!(
            "{:>4} | {:>12.1} | {:>12.1} | {:>13.1} | {}",
            tick + 1,
            k,
            a,
            e,
            behind
        );
    }
}
