//! EXPLAIN: show how the Figure-3 script is translated to the bag algebra and
//! what the rewrite rules of §5.2 do to it (the Figure 6 (a) → (d) walk).
//!
//! ```text
//! cargo run --example explain_plan
//! ```

use sgl::algebra::{
    estimate_cost, explain, optimize_with, plan_stats, translate, OptimizerOptions,
};
use sgl::lang::builtins::paper_registry;
use sgl::lang::{normalize, parse_script};

const FIGURE_3: &str = r#"
main(u) {
  (let c = CountEnemiesInRange(u, 12))
  (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, 12)) {
    if (c > 4) then
      perform MoveInDirection(u, u.posx + away_vector.x, u.posy + away_vector.y);
    else if (c > 0 and u.cooldown = 0) then
      (let target_key = getNearestEnemy(u).key) {
        perform FireAt(u, target_key);
      }
  }
}
"#;

fn main() {
    let registry = paper_registry();
    let script = parse_script(FIGURE_3).expect("figure 3 parses");
    let normal = normalize(&script, &registry).expect("figure 3 normalises");
    let plan = translate(&normal);

    println!("=== unoptimized plan (Figure 6a) ===");
    println!("{}", explain(&plan));
    let before = plan_stats(&plan);
    println!(
        "stats: {} aggregate extensions, {} distinct\n",
        before.aggregate_nodes, before.distinct_aggregates
    );

    let optimized = optimize_with(plan.clone(), &registry, OptimizerOptions::default());
    println!("=== optimized plan (Figure 6d analogue) ===");
    println!("{}", explain(&optimized.plan));
    println!(
        "stats: {} aggregate extensions, {} distinct",
        optimized.after.aggregate_nodes, optimized.after.distinct_aggregates
    );

    for n in [100usize, 1_000, 10_000] {
        let cost = estimate_cost(&optimized.plan, n, 0.5);
        println!(
            "estimated cost at n = {n:>6}: naive {:>14.0} row visits, indexed {:>12.0}  ({}x)",
            cost.naive,
            cost.indexed,
            (cost.naive / cost.indexed).round()
        );
    }

    // The physical side: run a battle under the cost-based planner and show
    // the per-call-site choices (planned backend + priced alternatives +
    // which backend actually served each call site at runtime).
    use sgl::battle::{BattleScenario, ScenarioConfig};
    use sgl::exec::{ExecConfig, PlannerMode};
    let scenario = BattleScenario::generate(ScenarioConfig {
        units: 200,
        ..ScenarioConfig::default()
    });
    let mut sim = scenario.build_with_config(
        ExecConfig::cost_based(&scenario.schema).with_planner(PlannerMode::cost_based(2)),
    );
    sim.run(6).expect("battle runs");
    println!("\n=== cost-based physical plan after 6 ticks ===");
    println!("{}", sim.explain());
}
