//! Replay and determinism: the indexed executor is a pure optimization.
//!
//! The paper's whole pitch is that set-at-a-time, index-backed execution of
//! SGL scripts changes *how fast* a tick runs, never *what happens* in the
//! game.  This example makes that visible:
//!
//! 1. run the same seeded battle twice — once naively, once indexed — while
//!    recording a per-tick state digest with the replay harness;
//! 2. compare the two traces (they must be identical);
//! 3. snapshot the final environment to bytes, restore it, and check the
//!    digest survives the round trip (the save-game substrate);
//! 4. checkpoint a *running* simulation mid-battle, resume it into a fresh
//!    simulation under a different executor configuration, and check the
//!    resumed run reproduces the uninterrupted trace tick for tick (the
//!    pause/migrate/crash-recover substrate).
//!
//! ```text
//! cargo run --release --example replay_determinism
//! ```

use sgl::battle::{BattleScenario, Formation, ScenarioConfig};
use sgl::engine::{compare_traces, StateDigest, TraceComparison, TraceRecorder};
use sgl::env::snapshot::{restore, snapshot};
use sgl::exec::ExecMode;

fn main() {
    let config = ScenarioConfig {
        units: 200,
        density: 0.01,
        seed: 2026,
        formation: Formation::Line,
        ..ScenarioConfig::default()
    };
    let scenario = BattleScenario::generate(config);
    println!(
        "battle: {} units, {:.0}x{:.0} world, line formation, seed {}",
        scenario.table.len(),
        scenario.world_side,
        scenario.world_side,
        config.seed
    );

    // 1. Record one trace per execution mode.
    let ticks = 15;
    let mut traces = Vec::new();
    for mode in [ExecMode::Naive, ExecMode::Indexed] {
        let mut sim = scenario.build_simulation(mode);
        let mut recorder = TraceRecorder::new();
        for _ in 0..ticks {
            let report = sim.step().expect("tick succeeds");
            recorder.record(report.tick, sim.table(), report.deaths);
        }
        let throughput = sim.throughput();
        println!(
            "{:>8?}: {:>6.1} ticks/s (mean tick {:?}), final digest {:016x}",
            mode,
            throughput.ticks_per_second,
            throughput.mean_tick,
            sim.digest().hash
        );
        traces.push((mode, recorder, sim));
    }

    // 2. The traces must match tick for tick.
    let (_, naive_trace, _) = &traces[0];
    let (_, indexed_trace, indexed_sim) = &traces[1];
    match compare_traces(naive_trace, indexed_trace) {
        TraceComparison::Identical => println!("traces: identical over {ticks} ticks ✓"),
        // The Display form names the divergent tick and both digests.
        diverged => panic!("the optimization changed game semantics: {diverged}"),
    }

    // 3. Save-game round trip.
    let bytes = snapshot(indexed_sim.table()).expect("snapshot serializes");
    let restored = restore(&bytes, indexed_sim.table().schema()).expect("snapshot restores");
    let before = indexed_sim.digest();
    let after = StateDigest::of_table(&restored);
    assert_eq!(
        before, after,
        "snapshot round trip must preserve the digest"
    );
    println!(
        "snapshot: {} bytes, digest preserved across save/restore ✓",
        bytes.len()
    );

    // 4. Checkpoint a *running* game mid-battle and resume it elsewhere.
    //    Unlike the table snapshot above, the checkpoint also carries the
    //    tick counter, the RNG stream state, the runtime statistics and the
    //    planner state — everything the remaining trajectory depends on.
    let split = 6;
    let mut writer = scenario.build_simulation(ExecMode::Indexed);
    for _ in 0..split {
        writer.step().expect("tick succeeds");
    }
    let checkpoint = writer.checkpoint().expect("checkpoint serializes");
    println!(
        "checkpoint: {} bytes after tick {split} (tick counter, RNG seed, \
         stats, planner state + table)",
        checkpoint.len()
    );
    drop(writer);

    // Resume into a brand-new simulation — here even under a different
    // configuration (naive execution): every knob is behaviour-neutral, so
    // the resumed run must still reproduce the uninterrupted indexed trace.
    let mut resumed = scenario.build_simulation(ExecMode::Naive);
    let naive_config = *resumed.exec_config();
    resumed
        .resume(&checkpoint, naive_config)
        .expect("checkpoint resumes");
    let mut resumed_trace = TraceRecorder::new();
    for _ in split..ticks {
        let report = resumed.step().expect("tick succeeds");
        resumed_trace.record(report.tick, resumed.table(), report.deaths);
    }
    let mut reference_tail = TraceRecorder::new();
    for entry in &indexed_trace.entries()[split..] {
        reference_tail.push(*entry);
    }
    match compare_traces(&reference_tail, &resumed_trace) {
        TraceComparison::Identical => println!(
            "resume: ticks {split}..{ticks} identical to the uninterrupted run \
             (indexed writer → naive reader) ✓"
        ),
        diverged => panic!("checkpoint/resume changed game semantics: {diverged}"),
    }
}
