//! The motivating example from the paper's introduction: units flee when a
//! horde of skeletons marches into view, otherwise they stand and fight.
//! Demonstrates individual (per-unit) behaviour that classic centralized RTS
//! AI cannot express: only the units that actually see too many skeletons run.
//!
//! ```text
//! cargo run --release --example skeleton_fear
//! ```

use std::sync::Arc;

use sgl::battle::{
    battle_mechanics, battle_registry, battle_schema, UnitKind, SKELETON_FEAR_SCRIPT,
};
use sgl::engine::UnitSelector;
use sgl::env::{EnvTable, TupleBuilder, Value};
use sgl::GameBuilder;

fn main() {
    let schema = battle_schema().into_shared();
    let registry = battle_registry();
    let mut table = EnvTable::new(Arc::clone(&schema));

    // A thin line of defenders (player 0, archers) facing a horde of
    // skeletons (player 1, knights) marching from the right.
    let mut key = 0i64;
    let mut add = |player: i64, kind: UnitKind, x: f64, y: f64, table: &mut EnvTable| {
        let stats = kind.stats();
        let unit = TupleBuilder::new(&schema)
            .set("key", key)
            .unwrap()
            .set("player", player)
            .unwrap()
            .set("unittype", kind.code())
            .unwrap()
            .set("posx", x)
            .unwrap()
            .set("posy", y)
            .unwrap()
            .set("health", stats.max_health)
            .unwrap()
            .set("max_health", stats.max_health)
            .unwrap()
            .set("range", stats.range)
            .unwrap()
            .set("sight", stats.sight)
            .unwrap()
            .set("morale", stats.morale)
            .unwrap()
            .set("armor", stats.armor)
            .unwrap()
            .set("strength", stats.strength)
            .unwrap()
            .build();
        table.insert(unit).unwrap();
        key += 1;
    };
    for i in 0..12 {
        add(0, UnitKind::Archer, 20.0, 10.0 + 3.0 * i as f64, &mut table);
    }
    for i in 0..60 {
        add(
            1,
            UnitKind::Knight,
            45.0 + (i % 6) as f64 * 2.0,
            8.0 + (i / 6) as f64 * 4.0,
            &mut table,
        );
    }

    let mechanics = battle_mechanics(&schema, 80.0, false);
    let unittype = schema.attr_id("unittype").unwrap();
    let posx = schema.attr_id("posx").unwrap();
    let mut sim = GameBuilder::new(Arc::clone(&schema), registry, mechanics)
        .seed(3)
        .script(
            "defenders",
            SKELETON_FEAR_SCRIPT,
            UnitSelector::AttrEquals(unittype, Value::Int(UnitKind::Archer.code())),
        )
        .script(
            "skeletons",
            "main(u) { perform MoveInDirection(u, 0, u.posy); }",
            UnitSelector::AttrEquals(unittype, Value::Int(UnitKind::Knight.code())),
        )
        .build(table)
        .expect("scripts compile");

    for tick in 0..30 {
        sim.step().expect("tick succeeds");
        if tick % 5 == 4 {
            // Report the average x position of the defenders: it moves left
            // (away from the horde) once the skeletons come into sight.
            let player = schema.attr_id("player").unwrap();
            let (mut sum, mut n) = (0.0, 0);
            for (_, row) in sim.table().iter() {
                if row.get_i64(player).unwrap() == 0 {
                    sum += row.get_f64(posx).unwrap();
                    n += 1;
                }
            }
            println!(
                "tick {:>2}: {} defenders alive, mean x = {:.1}",
                tick + 1,
                n,
                sum / n.max(1) as f64
            );
        }
    }
}
