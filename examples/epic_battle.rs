//! An "epic" battle: thousands of knights, archers and healers per side,
//! comparing naive and indexed execution on the same scenario, then
//! sweeping the parallel executor's thread counts on the indexed engine.
//!
//! ```text
//! cargo run --release --example epic_battle [units]
//! ```

use std::time::Instant;

use sgl::battle::{BattleScenario, ScenarioConfig};
use sgl::exec::{ExecConfig, ExecMode, Parallelism};

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let config = ScenarioConfig {
        units,
        density: 0.01,
        seed: 2026,
        ..ScenarioConfig::default()
    };
    let scenario = BattleScenario::generate(config);
    println!(
        "battlefield: {:.0} x {:.0} world, {} units per side",
        scenario.world_side,
        scenario.world_side,
        units / 2
    );

    for mode in [ExecMode::Indexed, ExecMode::Naive] {
        // Keep the naive run short for large armies — that is the point.
        let ticks = if mode == ExecMode::Naive && units > 1000 {
            3
        } else {
            10
        };
        let mut sim = scenario.build_simulation(mode);
        let start = Instant::now();
        let summary = sim.run(ticks).expect("battle runs");
        let per_tick = start.elapsed().as_secs_f64() / ticks as f64;
        println!(
            "{mode:?}: {:.3} s/tick ({:.1} ticks/s), {} aggregate probes/tick, {} deaths",
            per_tick,
            1.0 / per_tick,
            summary.exec.aggregate_probes / ticks,
            summary.deaths,
        );
    }

    // Parallel tick execution: a pure performance knob — every thread count
    // fights bit-for-bit the same battle (compare the digests below).
    println!("\nparallel scaling (indexed engine):");
    for threads in [1usize, 2, 4, 8] {
        let parallelism = if threads == 1 {
            Parallelism::Off
        } else {
            Parallelism::Threads(threads)
        };
        let mut sim = scenario.build_simulation(ExecMode::Indexed);
        sim.set_exec_config(ExecConfig::indexed(&scenario.schema).with_parallelism(parallelism));
        let ticks = 10;
        let start = Instant::now();
        sim.run(ticks).expect("battle runs");
        let per_tick = start.elapsed().as_secs_f64() / ticks as f64;
        println!(
            "  {threads} thread(s): {:.3} s/tick ({:.1} ticks/s), digest {:016x}",
            per_tick,
            1.0 / per_tick,
            sim.digest().hash,
        );
    }
}
