//! An "epic" battle: thousands of knights, archers and healers per side,
//! comparing naive and indexed execution on the same scenario.
//!
//! ```text
//! cargo run --release --example epic_battle [units]
//! ```

use std::time::Instant;

use sgl::battle::{BattleScenario, ScenarioConfig};
use sgl::exec::ExecMode;

fn main() {
    let units: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let config = ScenarioConfig {
        units,
        density: 0.01,
        seed: 2026,
        ..ScenarioConfig::default()
    };
    let scenario = BattleScenario::generate(config);
    println!(
        "battlefield: {:.0} x {:.0} world, {} units per side",
        scenario.world_side,
        scenario.world_side,
        units / 2
    );

    for mode in [ExecMode::Indexed, ExecMode::Naive] {
        // Keep the naive run short for large armies — that is the point.
        let ticks = if mode == ExecMode::Naive && units > 1000 {
            3
        } else {
            10
        };
        let mut sim = scenario.build_simulation(mode);
        let start = Instant::now();
        let summary = sim.run(ticks).expect("battle runs");
        let per_tick = start.elapsed().as_secs_f64() / ticks as f64;
        println!(
            "{mode:?}: {:.3} s/tick ({:.1} ticks/s), {} aggregate probes/tick, {} deaths",
            per_tick,
            1.0 / per_tick,
            summary.exec.aggregate_probes / ticks,
            summary.deaths,
        );
    }
}
