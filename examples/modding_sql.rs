//! Modding with SQL: extend the game's built-ins from a data file.
//!
//! The paper's data-driven architecture (§2) puts built-in aggregate and
//! action definitions in the *game content*, written in the SQL fragments of
//! Figures 4 and 5.  This example plays the role of a modder: it starts from
//! the paper's bundled SQL definitions, layers a small mod on top (a new
//! aggregate and a new area-of-effect action), writes a script that uses
//! them, and runs the result — no Rust involved in the new behaviour.
//!
//! ```text
//! cargo run --release --example modding_sql
//! ```

use std::sync::Arc;

use sgl::engine::{Mechanics, UnitSelector};
use sgl::env::postprocess::paper_postprocessor;
use sgl::env::{schema::paper_schema, EnvTable, TupleBuilder};
use sgl::lang::sql::{aggregate_to_sql, extend_registry_from_sql, paper_registry_from_sql};
use sgl::GameBuilder;

/// The mod: count badly wounded allies nearby, and a "war cry" that chips one
/// point of damage off every enemy in close range (a stackable area effect).
const MOD_SQL: &str = r#"
constant _WARCRY_RANGE = 3.0;
constant _WOUNDED_BELOW = 8;

function CountWoundedAllies(u, range) returns
  SELECT Count(*)
  FROM E e
  WHERE e.posx >= u.posx - range AND e.posx <= u.posx + range
    AND e.posy >= u.posy - range AND e.posy <= u.posy + range
    AND e.player = u.player
    AND e.health < _WOUNDED_BELOW;

function WarCry(u) returns
  SELECT e.key, e.damage + 1 AS damage
  FROM E e
  WHERE e.player <> u.player
    AND e.posx >= u.posx - _WARCRY_RANGE AND e.posx <= u.posx + _WARCRY_RANGE
    AND e.posy >= u.posy - _WARCRY_RANGE AND e.posy <= u.posy + _WARCRY_RANGE;
"#;

/// A script using both stock and modded built-ins.
const SCRIPT: &str = r#"
main(u) {
  (let threats = CountEnemiesInRange(u, 10))
  (let wounded = CountWoundedAllies(u, 10)) {
    if threats > 0 and wounded > 2 then
      perform WarCry(u);
    else if threats > 0 and u.cooldown = 0 then
      perform FireAt(u, getNearestEnemy(u).key);
    else
      perform MoveInDirection(u, 25, 25);
  }
}
"#;

fn main() {
    // 1. The base game: the paper's definitions, parsed from SQL text.
    let mut registry = paper_registry_from_sql();
    println!(
        "base game: {} aggregates, {} actions",
        registry.aggregate_names().len(),
        registry.action_names().len()
    );

    // 2. The mod layers two more definitions on top.
    extend_registry_from_sql(&mut registry, MOD_SQL).expect("mod definitions parse");
    println!(
        "with mod : {} aggregates, {} actions",
        registry.aggregate_names().len(),
        registry.action_names().len()
    );
    println!(
        "\nround-tripped definition of the modded aggregate:\n{}\n",
        aggregate_to_sql(registry.aggregate("CountWoundedAllies").unwrap())
    );

    // 3. A small world: two ragged bands close to each other.
    let schema = paper_schema().into_shared();
    let mut table = EnvTable::new(Arc::clone(&schema));
    for key in 0..30i64 {
        let unit = TupleBuilder::new(&schema)
            .set("key", key)
            .unwrap()
            .set("player", key % 2)
            .unwrap()
            .set("posx", 10.0 + (key % 6) as f64 * 2.0)
            .unwrap()
            .set("posy", 10.0 + (key / 6) as f64 * 2.0)
            .unwrap()
            .set("health", if key % 5 == 0 { 5i64 } else { 20i64 })
            .unwrap()
            .build();
        table.insert(unit).unwrap();
    }

    // 4. Compile the script against the modded registry and run.
    let mechanics = Mechanics {
        post: paper_postprocessor(&schema, 1.0, 2).expect("paper schema"),
        movement: None,
        resurrect: None,
    };
    let mut sim = GameBuilder::new(Arc::clone(&schema), registry, mechanics)
        .seed(11)
        .script("modded", SCRIPT, UnitSelector::All)
        .build(table)
        .expect("the modded script compiles");

    for _ in 0..8 {
        let report = sim.step().expect("tick succeeds");
        println!(
            "tick {:>2}: {:>2} units alive, {:>4} aggregate probes, {:>3} effect rows",
            report.tick, report.population, report.exec.aggregate_probes, report.exec.effect_rows
        );
    }
}
