//! Run the four hand-authored preset scenarios of the conformance corpus —
//! siege, mixed formations, fleeing swarm, attrition stalemate — and verify
//! on the fly that the optimized executor reproduces the oracle
//! interpreter's outcome tick for tick.
//!
//! ```text
//! cargo run --release --example preset_battles
//! ```

use sgl::battle::PresetScenario;
use sgl::exec::ExecMode;

fn main() {
    const TICKS: usize = 25;
    for preset in PresetScenario::all() {
        let mut indexed = preset.build_simulation(ExecMode::Indexed);
        let mut oracle = preset.build_simulation(ExecMode::Oracle);
        let start = preset.table.len();
        let mut diverged = false;
        for _ in 0..TICKS {
            indexed.step().expect("indexed tick");
            oracle.step().expect("oracle tick");
            if indexed.digest() != oracle.digest() {
                diverged = true;
                break;
            }
        }
        let digest = indexed.digest();
        println!(
            "{:<22} {:>3} → {:>3} units over {TICKS} ticks · digest {:016x} · oracle {}",
            preset.name,
            start,
            digest.population,
            digest.hash,
            if diverged { "DIVERGED" } else { "agrees" },
        );
        assert!(
            !diverged,
            "{}: optimized execution left the oracle",
            preset.name
        );
    }
}
