//! Integration tests of the compile pipeline and the paper's running example
//! (Figure 3) end to end.

use std::sync::Arc;

use sgl::algebra::OptimizerOptions;
use sgl::battle::{battle_registry, battle_schema};
use sgl::engine::{Mechanics, UnitSelector};
use sgl::env::postprocess::paper_postprocessor;
use sgl::env::{schema::paper_schema, EnvTable, TupleBuilder};
use sgl::exec::ExecConfig;
use sgl::lang::builtins::paper_registry;
use sgl::{compile_script, compile_script_with, GameBuilder};

const FIGURE_3: &str = r#"
main(u) {
  (let c = CountEnemiesInRange(u, 12))
  (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, 12)) {
    if (c > 4) then
      perform MoveInDirection(u, u.posx + away_vector.x, u.posy + away_vector.y);
    else if (c > 0 and u.cooldown = 0) then
      (let target_key = getNearestEnemy(u).key) {
        perform FireAt(u, target_key);
      }
  }
}
"#;

#[test]
fn figure_three_compiles_and_optimization_shrinks_the_plan() {
    let schema = paper_schema();
    let registry = paper_registry();
    let optimized = compile_script("fig3", FIGURE_3, &schema, &registry).unwrap();
    let unoptimized = compile_script_with(
        "fig3",
        FIGURE_3,
        &schema,
        &registry,
        OptimizerOptions::none(),
    )
    .unwrap();
    assert!(
        optimized.optimized.after.aggregate_nodes < unoptimized.optimized.after.aggregate_nodes
    );
    assert_eq!(optimized.optimized.after.distinct_aggregates, 3);
    assert_eq!(optimized.check.aggregate_calls, 3);
    assert_eq!(optimized.check.performs, 2);
}

#[test]
fn figure_three_runs_and_units_react_to_enemies() {
    let schema = paper_schema().into_shared();
    let registry = paper_registry();
    let mut table = EnvTable::new(Arc::clone(&schema));
    // A lone unit of player 0 surrounded by six enemies: it should flee
    // (count 6 > 4), moving away from the enemy centroid.
    let mut insert = |key: i64, player: i64, x: f64, y: f64| {
        let t = TupleBuilder::new(&schema)
            .set("key", key)
            .unwrap()
            .set("player", player)
            .unwrap()
            .set("posx", x)
            .unwrap()
            .set("posy", y)
            .unwrap()
            .set("health", 20i64)
            .unwrap()
            .build();
        table.insert(t).unwrap();
    };
    insert(0, 0, 20.0, 20.0);
    for (i, (dx, dy)) in [
        (4.0, 0.0),
        (4.0, 2.0),
        (4.0, -2.0),
        (5.0, 1.0),
        (5.0, -1.0),
        (6.0, 0.0),
    ]
    .iter()
    .enumerate()
    {
        insert(i as i64 + 1, 1, 20.0 + dx, 20.0 + dy);
    }
    let mechanics = Mechanics {
        post: paper_postprocessor(&schema, 2.0, 2).unwrap(),
        movement: None,
        resurrect: None,
    };
    let mut sim = GameBuilder::new(Arc::clone(&schema), registry, mechanics)
        .exec_config(ExecConfig::indexed(&schema))
        .seed(1)
        .script("fig3", FIGURE_3, UnitSelector::All)
        .build(table)
        .unwrap();
    sim.step().unwrap();
    let posx = schema.attr_id("posx").unwrap();
    let idx = sim.table().find_key_readonly(0).unwrap();
    let x = sim.table().row(idx).get_f64(posx).unwrap();
    // The enemies are all to the right (larger x), so fleeing means moving to
    // smaller x; the post-processing step caps the move at 2 world units.
    assert!(
        x < 20.0,
        "unit should flee away from the enemy centroid, got x = {x}"
    );
    assert!(x >= 18.0 - 1e-9);
}

#[test]
fn battle_scripts_compile_against_the_battle_registry() {
    let schema = battle_schema();
    let registry = battle_registry();
    for (name, source) in [
        ("knight", sgl::battle::KNIGHT_SCRIPT),
        ("archer", sgl::battle::ARCHER_SCRIPT),
        ("healer", sgl::battle::HEALER_SCRIPT),
    ] {
        let compiled = compile_script(name, source, &schema, &registry).unwrap();
        assert!(compiled.check.aggregate_calls >= 4, "{name}");
        // Optimization never *adds* aggregate work.
        assert!(
            compiled.optimized.after.aggregate_nodes <= compiled.optimized.before.aggregate_nodes
        );
    }
}

#[test]
fn compile_rejects_unknown_builtins_and_attributes() {
    let schema = paper_schema();
    let registry = paper_registry();
    assert!(compile_script(
        "bad",
        "main(u) { perform CastFireball(u); }",
        &schema,
        &registry
    )
    .is_err());
    assert!(compile_script(
        "bad",
        "main(u) { if u.mana > 1 then perform Heal(u); }",
        &schema,
        &registry
    )
    .is_err());
    assert!(compile_script(
        "bad",
        "main(u) { (let x = Count(u)) perform Heal(u); }",
        &schema,
        &registry
    )
    .is_err());
}
