//! Persistence robustness: seeded corruption fuzzing of the snapshot and
//! checkpoint readers, plus a snapshot round-trip property sweep over
//! generated adversarial worlds.
//!
//! The rule under fuzz: **any** mutation of a serialized blob must produce a
//! typed [`EnvError`] — never a panic, never an abort-sized allocation,
//! never silently wrong data.  Mutations come in three seeded flavours:
//!
//! * bit flips (caught by the trailing checksum);
//! * truncations at every prefix length (caught by bounds checks);
//! * *checksum-fixed* mutations — the payload is mutated and the trailing
//!   checksum recomputed, so the decoder's structural validation (not the
//!   checksum) is what must hold the line.
//!
//! The round-trip sweep asserts, over 200 generated worlds spanning every
//! adversarial layout, that `restore(snapshot(T))` reproduces `T` exactly:
//! byte-identical re-snapshot and equal `StateDigest`.

use sgl::engine::StateDigest;
use sgl::env::checkpoint::fnv64;
use sgl::env::snapshot::{restore, snapshot};
use sgl::env::EnvError;
use sgl_testkit::{generate_world, TestRng, WorldLayout, WorldSpec};

/// Replace the trailing checksum so structural validation is exercised
/// instead of the checksum comparison.
fn fix_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
    let payload_len = bytes.len().saturating_sub(8);
    let checksum = fnv64(&bytes[..payload_len]);
    bytes[payload_len..].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

fn sample_world(seed: u64, units: usize) -> sgl_testkit::GeneratedWorld {
    let mut rng = TestRng::new(seed);
    let layout = *rng.pick(&WorldLayout::ALL);
    generate_world(WorldSpec {
        seed,
        units,
        layout,
        wounded: rng.chance(1, 2),
        single_player: rng.chance(1, 10),
    })
}

#[test]
fn snapshot_restore_survives_seeded_corruption() {
    let world = sample_world(0xF1, 60);
    let bytes = snapshot(&world.table).unwrap().to_vec();
    let mut rng = TestRng::new(0xFA22);

    // Bit flips: every one must yield a typed error.
    for _ in 0..400 {
        let mut mutated = bytes.clone();
        let at = rng.below(mutated.len());
        mutated[at] ^= 1 << rng.below(8);
        let err = restore(&mutated, world.table.schema())
            .expect_err("a flipped snapshot must not restore");
        assert!(matches!(err, EnvError::Snapshot(_)), "{err}");
    }
    // Truncations at every length.
    for cut in 0..bytes.len() {
        let err = restore(&bytes[..cut], world.table.schema())
            .expect_err("a truncated snapshot must not restore");
        assert!(matches!(err, EnvError::Snapshot(_)), "cut {cut}: {err}");
    }
    // Checksum-fixed mutations: the decoder must return *some* Result
    // without panicking; when it succeeds the result must itself round-trip
    // (i.e. the mutation happened to produce another valid snapshot, not
    // torn state).
    for _ in 0..400 {
        let mut mutated = bytes.clone();
        let flips = 1 + rng.below(4);
        for _ in 0..flips {
            let at = rng.below(mutated.len() - 8);
            mutated[at] ^= 1 << rng.below(8);
        }
        let mutated = fix_checksum(mutated);
        if let Ok(table) = restore(&mutated, world.table.schema()) {
            let again = snapshot(&table).unwrap();
            let back = restore(&again, world.table.schema()).expect("re-snapshot restores");
            assert_eq!(StateDigest::of_table(&back), StateDigest::of_table(&table));
        }
    }
}

#[test]
fn checkpoint_reader_survives_seeded_corruption() {
    use sgl::env::checkpoint::CheckpointReader;
    use sgl::exec::ExecConfig;
    use sgl_testkit::ConformanceCase;

    let mut case = ConformanceCase::generate_sized(0xCC, 10, 40);
    case.ticks = 4;
    let schema = case.world.schema.clone();
    let mut sim = case.build(ExecConfig::indexed(&schema));
    for _ in 0..3 {
        sim.step().unwrap();
    }
    let bytes = sim.checkpoint().unwrap();
    assert!(CheckpointReader::parse(&bytes).is_ok());

    let mut rng = TestRng::new(0xCC02);
    for _ in 0..400 {
        let mut mutated = bytes.clone();
        let at = rng.below(mutated.len());
        mutated[at] ^= 1 << rng.below(8);
        let err =
            CheckpointReader::parse(&mutated).expect_err("a flipped checkpoint must not parse");
        assert!(matches!(err, EnvError::Checkpoint(_)), "{err}");
    }
    for cut in 0..bytes.len() {
        let err = CheckpointReader::parse(&bytes[..cut])
            .expect_err("a truncated checkpoint must not parse");
        assert!(matches!(err, EnvError::Checkpoint(_)), "cut {cut}: {err}");
    }
    // Checksum-fixed mutations against the *full resume path* (container,
    // sections, table, stats, planner, maintenance decoding): the engine
    // must either reject with a typed error or resume a structurally valid
    // state — stepping it afterwards must not panic.
    for _ in 0..150 {
        let mut mutated = bytes.clone();
        let flips = 1 + rng.below(3);
        for _ in 0..flips {
            let at = rng.below(mutated.len() - 8);
            mutated[at] ^= 1 << rng.below(8);
        }
        let mutated = fix_checksum(mutated);
        let mut target = case.build(ExecConfig::indexed(&schema));
        match target.resume(&mutated, ExecConfig::indexed(&schema)) {
            Err(e) => {
                let rendered = e.to_string();
                assert!(!rendered.is_empty());
            }
            Ok(()) => {
                // The mutation produced a decodable checkpoint (e.g. a bit
                // flipped inside a float payload): the resumed simulation
                // must still be runnable.
                let _ = target.step();
            }
        }
    }
}

/// Satellite: 200 generated adversarial worlds round-trip exactly —
/// byte-identical re-snapshot, equal digest, identical sorted keys.
#[test]
fn round_trip_sweep_over_generated_worlds() {
    let mut rng = TestRng::new(0x5EED);
    for seed in 0..200u64 {
        let units = rng.in_range(1, 120);
        let world = sample_world(seed.wrapping_mul(0x9E37).wrapping_add(3), units);
        let table = &world.table;
        let bytes = snapshot(table).unwrap();
        let restored = restore(&bytes, table.schema()).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: {} world of {} units failed to restore: {e}",
                world.spec.layout.name(),
                table.len()
            )
        });
        assert_eq!(
            snapshot(&restored).unwrap(),
            bytes,
            "seed {seed}: re-snapshot must be byte-identical"
        );
        assert_eq!(
            StateDigest::of_table(&restored),
            StateDigest::of_table(table),
            "seed {seed}: digest must survive the round trip"
        );
        assert_eq!(restored.sorted_keys(), table.sorted_keys(), "seed {seed}");
    }
}
