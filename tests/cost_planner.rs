//! Cost-based planner tests: explain-based assertions that the cost model
//! picks the *right* backend per call site (scan for tiny tables, a spatial
//! backend for dense range probes, Incremental→Rebuild when the observed
//! update rate crosses the modeled break-even), that the planned and
//! *executed* choices are both surfaced in `explain`, and that the whole
//! adaptive machinery is observationally neutral — bit-identical
//! `StateDigest`s against the heuristic planner and the oracle interpreter.
//! (The full 31-entry configuration lattice, including the cost-based rows,
//! is swept by `tests/conformance.rs` and `tests/golden_digests.rs`.)

use sgl::battle::{BattleScenario, ScenarioConfig};
use sgl::engine::Simulation;
use sgl::exec::{choose_physical, plan_registry, ExecConfig, PlannerMode, RuntimeStats};
use sgl_testkit::ConformanceCase;

fn scenario(units: usize, density: f64, seed: u64) -> BattleScenario {
    BattleScenario::generate(ScenarioConfig {
        units,
        density,
        seed,
        ..ScenarioConfig::default()
    })
}

fn cost_based(scenario: &BattleScenario, window: u32) -> Simulation {
    scenario.build_with_config(
        ExecConfig::cost_based(&scenario.schema).with_planner(PlannerMode::cost_based(window)),
    )
}

/// Backend label per call site, as a sorted map.
fn backends_of(sim: &Simulation) -> Vec<(String, String)> {
    sim.physical_choices()
        .into_iter()
        .map(|(name, backend, _maint)| (name, backend))
        .collect()
}

#[test]
fn cost_based_is_digest_identical_to_heuristic_and_oracle() {
    for seed in [1u64, 7, 19] {
        let case = ConformanceCase::generate_sized(seed, 8, 40);
        let schema = &case.world.schema;
        let oracle = case.digests(ExecConfig::oracle(schema));
        let heuristic = case.digests(ExecConfig::indexed(schema));
        // Window 1: re-cost every tick — maximal opportunity to diverge.
        let cost1 =
            case.digests(ExecConfig::cost_based(schema).with_planner(PlannerMode::cost_based(1)));
        let cost2 =
            case.digests(ExecConfig::cost_based(schema).with_planner(PlannerMode::cost_based(2)));
        assert_eq!(oracle, heuristic, "seed {seed}: heuristic vs oracle");
        assert_eq!(oracle, cost1, "seed {seed}: cost-based(1) vs oracle");
        assert_eq!(oracle, cost2, "seed {seed}: cost-based(2) vs oracle");
    }
}

#[test]
fn tiny_tables_plan_scans() {
    let tiny = scenario(8, 0.02, 5);
    let mut sim = cost_based(&tiny, 1);
    sim.run(3).expect("tiny battle runs");
    // Every indexable call site should be priced back onto the scan path:
    // with eight units, building any structure costs more than scanning.
    for (name, backend, maintenance) in sim.physical_choices() {
        assert_eq!(backend, "scan", "call site {name} should scan a tiny table");
        assert_eq!(maintenance, "per-tick", "{name}");
    }
    let explain = sim.explain();
    assert!(
        explain.contains("physical: scan"),
        "explain should show the scan choice:\n{explain}"
    );
    // The scans actually happened (executed choice, not just planned).
    assert!(explain.contains("served: scan"), "{explain}");
}

#[test]
fn dense_and_sparse_worlds_plan_different_backends() {
    // Same army, two densities: dense probes match a large fraction of the
    // world (selectivity-independent structures win), sparse probes match
    // almost nothing (the maintained grid's cheap probes win).
    let dense = scenario(300, 0.25, 11);
    let sparse = scenario(300, 0.0004, 11);
    let mut dense_sim = cost_based(&dense, 2);
    let mut sparse_sim = cost_based(&sparse, 2);
    dense_sim.run(6).expect("dense battle runs");
    sparse_sim.run(6).expect("sparse battle runs");

    let dense_backends = backends_of(&dense_sim);
    let sparse_backends = backends_of(&sparse_sim);
    assert_eq!(dense_backends.len(), sparse_backends.len());
    let differing: Vec<&str> = dense_backends
        .iter()
        .zip(&sparse_backends)
        .filter(|(d, s)| d.0 == s.0 && d.1 != s.1)
        .map(|(d, _)| d.0.as_str())
        .collect();
    assert!(
        differing.len() >= 2,
        "expected ≥2 call sites with density-dependent backends;\n\
         dense:  {dense_backends:?}\nsparse: {sparse_backends:?}"
    );

    // And the decisions are visible in explain, with priced alternatives.
    let explain = dense_sim.explain();
    assert!(explain.contains("alts:"), "{explain}");
    assert!(explain.contains("µs"), "{explain}");

    // Neutrality on both worlds: the heuristic planner simulates the same
    // battles, digest for digest.
    for (scen, cost_sim) in [(&dense, &dense_sim), (&sparse, &sparse_sim)] {
        let mut heuristic = scen.build_with_config(ExecConfig::indexed(&scen.schema));
        heuristic.run(6).expect("heuristic battle runs");
        assert_eq!(heuristic.digest(), cost_sim.digest());
    }
}

#[test]
fn observed_update_rate_flips_incremental_to_rebuild() {
    // Drive the statistics store directly: a sparse, probe-heavy call-site
    // profile keeps the maintained grid cheapest; the update rate decides
    // whether it is patched or rebuilt.
    let scen = scenario(300, 0.0004, 3);
    let registry = sgl::battle::battle_registry();
    let config = ExecConfig::cost_based(&scen.schema);
    let constants = sgl::algebra::CostConstants::default();
    let break_even = constants.break_even_update_rate();

    let run_with_update_rate = |rate: f64| {
        let stats = RuntimeStats {
            update_rate: rate,
            have_update_rate: true,
            ..RuntimeStats::default()
        };
        let mut planned = plan_registry(&registry, &scen.table, &config);
        choose_physical(&mut planned, &stats, &constants, scen.table.len(), true);
        planned
    };

    let calm = run_with_update_rate(break_even * 0.5);
    let hot = run_with_update_rate((break_even * 2.0).min(1.0));
    let mut flipped = 0;
    for (name, plan) in &calm {
        let calm_choice = plan.choice.as_ref();
        let hot_choice = hot[name].choice.as_ref();
        if let (Some(c), Some(h)) = (calm_choice, hot_choice) {
            if c.backend == sgl::algebra::PhysicalBackend::MaintainedGrid {
                assert_eq!(
                    c.maintenance,
                    sgl::algebra::MaintenanceChoice::Incremental,
                    "{name}: below break-even the grid must be patched"
                );
                assert_eq!(
                    h.maintenance,
                    sgl::algebra::MaintenanceChoice::Rebuild,
                    "{name}: above break-even the grid must be rebuilt"
                );
                flipped += 1;
            }
        }
    }
    assert!(flipped > 0, "no call site was grid-maintained: {calm:?}");
}

#[test]
fn explain_surfaces_executed_backends_under_the_heuristic_planner() {
    // The runtime `served:` annotation is not a cost-based feature: the
    // heuristic planner's explain shows which structures actually answered
    // each call site too.
    let scen = scenario(60, 0.02, 9);
    let mut sim = scen.build_with_config(ExecConfig::indexed(&scen.schema));
    sim.run(3).expect("battle runs");
    let explain = sim.explain();
    assert!(explain.contains("physical:"), "{explain}");
    assert!(
        explain.contains("served:"),
        "executed choices missing from explain:\n{explain}"
    );
    // Heuristic rebuild policy answers divisible aggregates from the
    // layered tree; the runtime counters must say so.
    assert!(explain.contains("served: layered-tree"), "{explain}");
    // Naive mode reports scans as the executed choice.
    let mut naive = scen.build_with_config(ExecConfig::naive(&scen.schema));
    naive.run(2).expect("naive battle runs");
    assert!(naive.explain().contains("served: scan"));
}

#[test]
fn recosting_happens_on_the_window_and_is_counted() {
    let scen = scenario(120, 0.02, 13);
    let mut sim = cost_based(&scen, 3);
    sim.run(7).expect("battle runs");
    let recosts: usize = sim.history().iter().map(|r| r.exec.planner_recosts).sum();
    // Ticks 0, 3 and 6 re-cost.
    assert_eq!(recosts, 3, "window-3 run of 7 ticks re-costs thrice");
    // The first pass priced every indexable call site (a switch each).
    assert!(sim.history()[0].exec.plan_switches > 0);
    // Heuristic runs never re-cost.
    let mut heuristic = scen.build_with_config(ExecConfig::indexed(&scen.schema));
    heuristic.run(3).expect("battle runs");
    assert!(heuristic
        .history()
        .iter()
        .all(|r| r.exec.planner_recosts == 0 && r.exec.plan_switches == 0));
    // The cost-based run matches the heuristic digests tick for tick.
    let mut check = scen.build_with_config(ExecConfig::indexed(&scen.schema));
    let heur: Vec<_> = (0..7)
        .map(|_| {
            check.step().unwrap();
            check.digest()
        })
        .collect();
    let mut cost = cost_based(&scen, 3);
    for (tick, expected) in heur.iter().enumerate() {
        cost.step().unwrap();
        assert_eq!(cost.digest(), *expected, "tick {tick}");
    }
}

/// Regression for the EWMA decay-before-seed bug: a call site that goes
/// idle decays its probe volume, and once the volume falls under the floor
/// the site must revert to *unobserved* (priced from priors like a fresh
/// site) instead of being costed from a vanishing-but-positive EWMA.  The
/// old `probes > 0.0` proxy kept long-idle sites "observed" at microscopic
/// volumes, skewing the first recost after an idle window.
#[test]
fn long_idle_windows_recost_from_priors_not_vanishing_ewmas() {
    use sgl::exec::TickObservations;

    let scen = scenario(300, 0.0004, 3);
    let registry = sgl::battle::battle_registry();
    let config = ExecConfig::cost_based(&scen.schema);
    let constants = sgl::algebra::CostConstants::default();
    let cardinality = scen.table.len();

    let site_names: Vec<String> = plan_registry(&registry, &scen.table, &config)
        .keys()
        .cloned()
        .collect();
    assert!(!site_names.is_empty());

    let decide = |stats: &RuntimeStats| {
        let mut planned = plan_registry(&registry, &scen.table, &config);
        choose_physical(&mut planned, stats, &constants, cardinality, true);
        let mut out: Vec<(String, String, String)> = planned
            .iter()
            .filter_map(|(name, plan)| {
                plan.choice.as_ref().map(|c| {
                    (
                        name.clone(),
                        c.backend.label().to_string(),
                        format!("{:?}", c.maintenance),
                    )
                })
            })
            .collect();
        out.sort();
        out
    };

    // Five live ticks seed every call site at the every-unit-probes volume
    // (matching the unobserved prior, so the idle-window reversion to
    // priors is decision-neutral by construction).
    let mut stats = RuntimeStats::default();
    for _ in 0..5 {
        let mut obs = TickObservations::default();
        for name in &site_names {
            obs.record_probes(name, cardinality as u64);
            obs.record_matched(name, 4);
        }
        stats.observe_tick(cardinality, 6, 10_000.0, None, &obs);
    }
    for name in &site_names {
        assert!(stats.calls[name].have_probes, "{name} seeded");
    }
    let before_idle = decide(&stats);

    // A long idle window: no site is probed for fifteen ticks.  The halving
    // EWMA takes 300 under the 0.5 floor in ten ticks, so by now every
    // site must have snapped back to unobserved — not to probes = 0.009.
    for _ in 0..15 {
        stats.observe_tick(cardinality, 6, 10_000.0, None, &TickObservations::default());
    }
    for name in &site_names {
        let site = &stats.calls[name];
        assert!(
            !site.have_probes && site.probes == 0.0,
            "{name}: idle window left a vanishing EWMA (probes {}, have_probes {})",
            site.probes,
            site.have_probes
        );
    }

    // Unobserved sites are priced from priors, so the recost at the end of
    // the idle window keeps every decision — the buggy `probes > 0.0` proxy
    // priced them at microscopic volumes and flipped sites back to
    // per-tick scans/rebuilds.
    assert_eq!(
        decide(&stats),
        before_idle,
        "recost after an idle window must not flip decisions"
    );
}

/// The planner only materializes per-subscription answers when the delta
/// stream is calm: under heavy churn, patching every stored answer against
/// every delta dominates, and the cost model must walk away from the
/// materialized class on every call site.
#[test]
fn high_churn_worlds_never_materialize_answers() {
    use sgl::exec::TickObservations;

    let scen = scenario(300, 0.0004, 3);
    let registry = sgl::battle::battle_registry();
    let config = ExecConfig::cost_based(&scen.schema);
    let constants = sgl::algebra::CostConstants::default();
    let cardinality = scen.table.len();

    let site_names: Vec<String> = plan_registry(&registry, &scen.table, &config)
        .keys()
        .cloned()
        .collect();

    let decisions_at = |changed_rows: usize| {
        let mut stats = RuntimeStats::default();
        for _ in 0..5 {
            let mut obs = TickObservations::default();
            for name in &site_names {
                obs.record_probes(name, 60);
                obs.record_matched(name, 4);
            }
            stats.observe_tick(cardinality, changed_rows, 10_000.0, None, &obs);
        }
        let mut planned = plan_registry(&registry, &scen.table, &config);
        choose_physical(&mut planned, &stats, &constants, cardinality, true);
        planned
    };

    // Every row churning every tick: no site may hold a materialized answer.
    let hot = decisions_at(cardinality);
    for (name, plan) in &hot {
        if let Some(choice) = &plan.choice {
            assert_ne!(
                choice.backend,
                sgl::algebra::PhysicalBackend::Materialized,
                "{name}: materialized answers under full churn"
            );
        }
    }

    // A calm world (nobody moves) is where materialization pays: the same
    // probe profile must materialize at least one divisible/min-max site.
    let calm = decisions_at(0);
    let materialized = calm
        .values()
        .filter(|p| {
            p.choice
                .as_ref()
                .is_some_and(|c| c.backend == sgl::algebra::PhysicalBackend::Materialized)
        })
        .count();
    assert!(
        materialized > 0,
        "calm world materialized nothing: {:?}",
        calm.iter()
            .map(|(n, p)| (n.clone(), p.choice.as_ref().map(|c| c.backend.label())))
            .collect::<Vec<_>>()
    );
}
