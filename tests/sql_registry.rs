//! The SQL-sourced registry (Figures 4/5 parsed from text) must behave
//! exactly like the programmatically built one: same compile results, same
//! game, tick for tick.

use std::sync::Arc;

use sgl::engine::{Mechanics, StateDigest, UnitSelector};
use sgl::env::postprocess::paper_postprocessor;
use sgl::env::{schema::paper_schema, EnvTable, Schema, TupleBuilder};
use sgl::lang::builtins::paper_registry;
use sgl::lang::sql::{extend_registry_from_sql, paper_registry_from_sql};
use sgl::lang::{check_registry, Registry};
use sgl::GameBuilder;

const FIGURE_3_SCRIPT: &str = r#"
main(u) {
  (let c = CountEnemiesInRange(u, u.range))
  (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
    if (c > u.morale) then
      perform MoveInDirection(u, u.posx + away_vector.x, u.posy + away_vector.y);
    else if (c > 0 and u.cooldown = 0) then
      (let target_key = getNearestEnemy(u).key) {
        perform FireAt(u, target_key);
      }
  }
}
"#;

/// The paper schema plus the `range` / `morale` statistics the Figure-3 script
/// reads from the unit.
fn schema_with_stats() -> Arc<Schema> {
    let mut b = Schema::builder();
    b.key("key")
        .const_attr("player", 0i64)
        .const_attr("posx", 0.0)
        .const_attr("posy", 0.0)
        .const_attr("health", 20i64)
        .const_attr("cooldown", 0i64)
        .const_attr("range", 10.0)
        .const_attr("morale", 4i64)
        .sum_attr("weaponused", 0i64)
        .sum_attr("movevect_x", 0.0)
        .sum_attr("movevect_y", 0.0)
        .sum_attr("damage", 0i64)
        .max_attr("inaura", 0i64);
    b.build().unwrap().into_shared()
}

fn build_world(schema: &Arc<Schema>) -> EnvTable {
    let mut table = EnvTable::new(Arc::clone(schema));
    for key in 0..40i64 {
        let unit = TupleBuilder::new(schema)
            .set("key", key)
            .unwrap()
            .set("player", key % 2)
            .unwrap()
            .set("posx", (key % 8) as f64 * 3.0)
            .unwrap()
            .set("posy", (key / 8) as f64 * 3.0)
            .unwrap()
            .set("health", 20i64)
            .unwrap()
            .build();
        table.insert(unit).unwrap();
    }
    table
}

fn run_figure3(schema: &Arc<Schema>, registry: Registry, ticks: usize) -> StateDigest {
    let mechanics = Mechanics {
        post: paper_postprocessor(schema, 1.0, 2).unwrap(),
        movement: None,
        resurrect: None,
    };
    let mut sim = GameBuilder::new(Arc::clone(schema), registry, mechanics)
        .seed(99)
        .script("figure3", FIGURE_3_SCRIPT, UnitSelector::All)
        .build(build_world(schema))
        .expect("Figure 3 compiles");
    for _ in 0..ticks {
        sim.step().expect("tick succeeds");
    }
    sim.digest()
}

#[test]
fn sql_and_rust_registries_validate_identically() {
    let schema = paper_schema();
    let rust = paper_registry();
    let sql = paper_registry_from_sql();
    check_registry(&rust, &schema).unwrap();
    check_registry(&sql, &schema).unwrap();
    assert_eq!(rust.aggregate_names(), sql.aggregate_names());
    assert_eq!(rust.action_names(), sql.action_names());
}

#[test]
fn figure_3_plays_out_identically_under_both_registries() {
    let schema = schema_with_stats();
    let rust_digest = run_figure3(&schema, paper_registry(), 8);
    let sql_digest = run_figure3(&schema, paper_registry_from_sql(), 8);
    assert_eq!(
        rust_digest, sql_digest,
        "the SQL-parsed built-ins must produce exactly the same game as the Rust-built ones"
    );
}

#[test]
fn sql_mods_change_behaviour_in_the_expected_direction() {
    let schema = schema_with_stats();
    // A mod that doubles arrow damage: the battle after 8 ticks must differ
    // from the stock game (and still compile / validate).
    let mut modded = paper_registry_from_sql();
    extend_registry_from_sql(&mut modded, "constant _ARROW_HIT_DAMAGE = 12;").unwrap();
    check_registry(&modded, &paper_schema()).unwrap();
    let stock = run_figure3(&schema, paper_registry_from_sql(), 8);
    let buffed = run_figure3(&schema, modded, 8);
    assert_ne!(
        stock, buffed,
        "doubling arrow damage must change the game state"
    );
}
