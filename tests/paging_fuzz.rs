//! Page-manager fuzz suite: the columnar environment table must compute
//! the same logical contents — and serialize to the same bytes — no matter
//! which page manager backs it, how small the page budget is, or where
//! pin (fault-in) / unpin / evict passes land between mutations.
//!
//! The determinism contract under test: eviction decides *where bytes
//! live*, never *what the table contains*.  Every test drives a RAM-backed
//! table and a spill-backed twin through identical operation sequences and
//! demands identical observable state at every probe point.

use std::sync::Arc;

use sgl::env::pager::{PageData, PageManager, RamPageManager, SpillPageManager, PAGE_ROWS};
use sgl::env::snapshot::{restore, snapshot};
use sgl::env::{EnvError, EnvTable, Value};
use sgl::exec::ExecConfig;
use sgl_testkit::{generate_world, ConformanceCase, TestRng, WorldLayout, WorldSpec};

/// Rebuild `source`'s contents on a table backed by the given page manager.
fn rebuild_on(source: &EnvTable, pager: Arc<dyn PageManager>) -> EnvTable {
    let mut table = EnvTable::with_pager(Arc::clone(source.schema()), pager);
    for (_, row) in source.iter() {
        table
            .insert(row.to_tuple())
            .expect("source keys are unique");
    }
    table
}

/// Every observable of the two tables must agree: length, key order, every
/// column's values, and the serialized snapshot bytes.
fn assert_tables_identical(a: &EnvTable, b: &EnvTable, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: row counts diverged");
    assert_eq!(
        a.sorted_keys(),
        b.sorted_keys(),
        "{context}: key sets diverged"
    );
    for attr in 0..a.schema().len() {
        assert_eq!(
            a.column_values(attr).unwrap(),
            b.column_values(attr).unwrap(),
            "{context}: column {attr} diverged"
        );
    }
    assert_eq!(
        snapshot(a).unwrap(),
        snapshot(b).unwrap(),
        "{context}: snapshot bytes diverged — the encoding leaked page-residency state"
    );
}

/// One random mutation against both tables.  Keys are drawn from the live
/// key set so both sides always hit the same rows.
fn apply_random_op(rng: &mut TestRng, tables: &mut [&mut EnvTable; 2], op_no: usize) {
    let keys = tables[0].sorted_keys();
    let arity = tables[0].schema().len();
    match rng.below(6) {
        // Point write through the key index (typed value).
        0 if !keys.is_empty() => {
            let key = *rng.pick(&keys);
            let attr = 1 + rng.below(arity - 1);
            let value = Value::Float(op_no as f64 * 0.5);
            for t in tables.iter_mut() {
                t.set_by_key(key, attr, value.clone()).unwrap();
            }
        }
        // Point write forcing a Mixed-page promotion (variant mismatch).
        1 if !keys.is_empty() => {
            let key = *rng.pick(&keys);
            let attr = 1 + rng.below(arity - 1);
            let value = Value::Int(op_no as i64);
            for t in tables.iter_mut() {
                t.set_by_key(key, attr, value.clone()).unwrap();
            }
        }
        // Positional write.
        2 if !keys.is_empty() => {
            let row = rng.below(tables[0].len());
            let attr = 1 + rng.below(arity - 1);
            let value = Value::Float(-(op_no as f64));
            for t in tables.iter_mut() {
                t.set_attr(row, attr, value.clone()).unwrap();
            }
        }
        // Tombstone + compaction: remove a slice of the key space.
        3 if keys.len() > 4 => {
            let modulus = 3 + rng.below(5) as i64;
            let victim = rng.below(modulus as usize) as i64;
            for t in tables.iter_mut() {
                t.remove_where(|row| row.get_i64(0).unwrap().rem_euclid(modulus) == victim);
            }
        }
        // Effect-column reset (the per-tick fast path).
        4 => {
            for t in tables.iter_mut() {
                t.reset_effects();
            }
        }
        // Pin / unpin / evict interleaving: fault everything in on one
        // side, enforce the budget on the other, at a random point in the
        // mutation stream.  Neither may change observable contents.
        _ => {
            for t in tables.iter_mut() {
                if rng.chance(1, 2) {
                    t.ensure_resident().unwrap();
                } else {
                    t.enforce_page_budget().unwrap();
                }
            }
        }
    }
}

#[test]
fn seeded_mutation_interleavings_match_ram_and_spill() {
    for seed in 0..8u64 {
        let layout = WorldLayout::ALL[seed as usize % WorldLayout::ALL.len()];
        let world = generate_world(WorldSpec {
            seed,
            units: 300 + (seed as usize * 97) % 500,
            layout,
            wounded: seed % 2 == 0,
            single_player: false,
        });
        let mut ram = rebuild_on(&world.table, Arc::new(RamPageManager::new()));
        // A budget of 2 pages on a multi-column table: almost every
        // operation crosses the eviction path.
        let spill = Arc::new(SpillPageManager::new(2).expect("spill file"));
        let mut spilled = rebuild_on(&world.table, spill);
        spilled.enforce_page_budget().unwrap();

        let mut rng = TestRng::new(seed ^ 0xFA57_F00D);
        for op_no in 0..60 {
            apply_random_op(&mut rng, &mut [&mut ram, &mut spilled], op_no);
            if op_no % 15 == 14 {
                assert_tables_identical(
                    &ram,
                    &spilled,
                    &format!("seed {seed} ({}) after op {op_no}", layout.name()),
                );
            }
        }
        assert_tables_identical(&ram, &spilled, &format!("seed {seed} final"));
        // The spill side actually exercised the eviction machinery.
        let stats = spilled.memory_stats();
        assert!(
            stats.evictions > 0,
            "seed {seed}: budget 2 never evicted — the fuzz lost its teeth"
        );
    }
}

#[test]
fn budget_boundary_cases_stay_deterministic() {
    // Enough rows for several pages per column.
    let world = generate_world(WorldSpec {
        seed: 11,
        units: PAGE_ROWS * 3 + 7,
        layout: WorldLayout::Uniform,
        wounded: true,
        single_player: false,
    });
    let ram = rebuild_on(&world.table, Arc::new(RamPageManager::new()));
    let total_pages = ram.memory_stats().resident_pages;
    assert!(
        total_pages > ram.schema().len(),
        "want multiple pages per column"
    );

    // budget < one column's pages, budget = exact fit, budget > resident.
    for budget in [1usize, total_pages, total_pages + 50] {
        let pager = Arc::new(SpillPageManager::new(budget).expect("spill file"));
        let mut table = rebuild_on(&world.table, pager);
        let evicted = table.enforce_page_budget().unwrap();
        let stats = table.memory_stats();
        assert!(
            stats.resident_pages <= budget,
            "budget {budget}: {} pages stayed resident",
            stats.resident_pages
        );
        if budget >= total_pages {
            assert_eq!(evicted, 0, "budget {budget} evicted needlessly");
        } else {
            assert!(evicted > 0, "budget {budget} evicted nothing");
        }
        assert_tables_identical(&ram, &table, &format!("budget {budget}"));
        // A second enforcement pass is idempotent.
        assert_eq!(
            table.enforce_page_budget().unwrap(),
            0,
            "budget {budget} not idempotent"
        );
        // Fault everything back in: contents unchanged, nothing spilled.
        table.ensure_resident().unwrap();
        assert_eq!(table.memory_stats().spilled_pages, 0);
        assert_tables_identical(&ram, &table, &format!("budget {budget} after fault-in"));
    }
}

#[test]
fn spill_file_corruption_is_a_typed_error_not_silent_data() {
    // Crash-safety of the spill file: a page that comes back different
    // from what was written must surface as a typed pager error — never as
    // silently wrong column data.
    let pager = SpillPageManager::new(1).expect("spill file");
    let page = PageData::F64((0..PAGE_ROWS).map(|i| i as f64 * 0.25).collect());
    let token = pager.spill(&page).expect("spill");
    // Round trip is exact before the corruption.
    assert_eq!(pager.load(token).expect("load"), page);

    // Flip bytes in the middle of the record, past the length header.
    use std::io::{Seek, SeekFrom, Write as _};
    let mut file = std::fs::OpenOptions::new()
        .write(true)
        .open(pager.path())
        .expect("open spill file");
    file.seek(SeekFrom::Start(24)).expect("seek");
    file.write_all(&[0xAB, 0xCD, 0xEF]).expect("overwrite");
    file.sync_all().expect("sync");

    let err = pager.load(token).expect_err("corrupted page must not load");
    match err {
        EnvError::Pager(msg) => assert!(
            msg.contains("checksum"),
            "pager error should name the checksum: {msg}"
        ),
        other => panic!("expected EnvError::Pager, got {other:?}"),
    }
}

#[test]
fn snapshots_survive_a_spill_restart_cycle() {
    // Simulated crash-recovery: snapshot a spill-backed table, drop it
    // (the spill file is deleted), restore the bytes onto a *fresh* spill
    // manager, and demand byte-identical re-serialization.  The snapshot
    // must be self-contained — nothing may reference the dead spill file.
    let world = generate_world(WorldSpec {
        seed: 23,
        units: 400,
        layout: WorldLayout::Clustered,
        wounded: true,
        single_player: false,
    });
    let pager = Arc::new(SpillPageManager::new(2).expect("spill file"));
    let spill_path = pager.path().to_path_buf();
    let mut table = rebuild_on(&world.table, pager);
    table.enforce_page_budget().unwrap();
    let bytes = snapshot(&table).unwrap();
    let schema = Arc::clone(table.schema());
    drop(table);
    assert!(!spill_path.exists(), "spill file must die with its tables");

    let restored = restore(&bytes, &schema).expect("restore after restart");
    assert_eq!(
        snapshot(&restored).unwrap(),
        bytes,
        "re-snapshot after a spill restart drifted"
    );
}

#[test]
fn engine_checkpoints_are_byte_identical_with_spill_on_and_off() {
    // Full-stack version of the contract: an entire simulation — scripts,
    // executor, movement, resurrection — produces bit-identical checkpoint
    // bytes whether its environment pages through a spill budget or not.
    for seed in [3u64, 17] {
        let case = ConformanceCase::generate(seed);
        let config = ExecConfig::indexed(&case.world.schema);
        let ram_table = rebuild_on(&case.world.table, Arc::new(RamPageManager::new()));
        let spill_table = rebuild_on(
            &case.world.table,
            Arc::new(SpillPageManager::new(2).expect("spill file")),
        );

        let mut sim_ram = case.build_on(ram_table, config);
        let mut sim_spill = case.build_on(spill_table, config);
        for tick in 0..case.ticks {
            sim_ram.step().expect("ram tick");
            sim_spill.step().expect("spill tick");
            assert_eq!(
                sim_ram.digest(),
                sim_spill.digest(),
                "seed {seed}: digests diverged at tick {tick}"
            );
        }
        // The spill side really paged.
        let last = sim_spill.history().last().expect("history");
        assert!(
            last.memory.evictions > 0 && last.allocs.fault_in > 0,
            "seed {seed}: the spill run never crossed the eviction path"
        );
        assert_eq!(
            sim_ram.checkpoint().unwrap(),
            sim_spill.checkpoint().unwrap(),
            "seed {seed}: checkpoint bytes depend on the page manager"
        );
    }
}
