//! Golden-digest snapshots: per-scenario `StateDigest` sequences (first 20
//! ticks) for every battle scenario, checked into `tests/golden/`.
//!
//! The conformance suite (`tests/conformance.rs`) proves every executor
//! configuration *agrees*; this suite pins what they agree *on*, so a
//! refactor cannot silently change game outcomes while staying internally
//! consistent.  Each scenario's digests are recorded once (from the oracle
//! interpreter, the reference semantics) and every configuration of the
//! lattice must reproduce them bit for bit.
//!
//! To regenerate after an *intentional* semantics change:
//!
//! ```text
//! SGL_BLESS=1 cargo test --test golden_digests
//! ```
//!
//! and commit the rewritten files together with the change that explains
//! them.

use std::fmt::Write as _;
use std::path::PathBuf;

use sgl::battle::{
    BattleScenario, PresetScenario, ScenarioConfig, SkeletonConfig, SkeletonScenario,
};
use sgl::engine::{Simulation, StateDigest};
use sgl::exec::ExecConfig;
use sgl_testkit::config_lattice;

/// Ticks recorded per scenario.
const TICKS: usize = 20;

/// One corpus entry: a stable name and a builder accepting any executor
/// configuration.
struct GoldenScenario {
    name: &'static str,
    build: Box<dyn Fn(ExecConfig) -> Simulation>,
    schema: std::sync::Arc<sgl::env::Schema>,
}

/// The golden corpus: the two generated scenario families the repo started
/// with, plus the four hand-authored presets.
fn corpus() -> Vec<GoldenScenario> {
    let mut scenarios = Vec::new();

    let battle = BattleScenario::generate(ScenarioConfig {
        units: 48,
        ..ScenarioConfig::default()
    });
    let schema = battle.schema.clone();
    scenarios.push(GoldenScenario {
        name: "battle-scattered",
        schema,
        build: Box::new(move |config| battle.build_with_config(config)),
    });

    let horde = SkeletonScenario::generate(SkeletonConfig {
        defenders: 14,
        skeletons: 28,
        ..SkeletonConfig::default()
    });
    let schema = horde.schema.clone();
    scenarios.push(GoldenScenario {
        name: "skeleton-horde",
        schema,
        build: Box::new(move |config| horde.build_with_config(config)),
    });

    for preset in PresetScenario::all() {
        let schema = preset.schema.clone();
        scenarios.push(GoldenScenario {
            name: preset.name,
            schema,
            build: Box::new(move |config| preset.build_with_config(config)),
        });
    }
    scenarios
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.digests"))
}

fn digests_of(scenario: &GoldenScenario, config: ExecConfig) -> Vec<StateDigest> {
    let mut sim = (scenario.build)(config);
    (0..TICKS)
        .map(|tick| {
            sim.step()
                .unwrap_or_else(|e| panic!("{}: tick {tick} failed: {e}", scenario.name));
            sim.digest()
        })
        .collect()
}

fn render(digests: &[StateDigest]) -> String {
    let mut out = String::from("# tick  hash              population\n");
    for (tick, d) in digests.iter().enumerate() {
        let _ = writeln!(out, "{tick:4}  {:016x}  {}", d.hash, d.population);
    }
    out
}

fn parse(content: &str, name: &str) -> Vec<StateDigest> {
    content
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|line| {
            let mut fields = line.split_whitespace();
            let _tick = fields.next();
            let hash = u64::from_str_radix(fields.next().expect("hash field"), 16)
                .unwrap_or_else(|e| panic!("{name}: malformed golden hash: {e}"));
            let population: usize = fields
                .next()
                .expect("population field")
                .parse()
                .unwrap_or_else(|e| panic!("{name}: malformed golden population: {e}"));
            StateDigest { hash, population }
        })
        .collect()
}

fn blessing() -> bool {
    std::env::var("SGL_BLESS").is_ok_and(|v| v == "1")
}

/// Load the golden digests for a scenario, or (re)write them from the oracle
/// reference when `SGL_BLESS=1`.
fn golden_digests(scenario: &GoldenScenario) -> Vec<StateDigest> {
    let path = golden_path(scenario.name);
    if blessing() {
        let reference = digests_of(scenario, ExecConfig::oracle(&scenario.schema));
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        std::fs::write(&path, render(&reference)).expect("write golden file");
        return reference;
    }
    let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: no golden file at {} ({e}).\n\
             Generate it with: SGL_BLESS=1 cargo test --test golden_digests",
            scenario.name,
            path.display()
        )
    });
    let digests = parse(&content, scenario.name);
    assert_eq!(
        digests.len(),
        TICKS,
        "{}: golden file has the wrong tick count — re-bless with SGL_BLESS=1",
        scenario.name
    );
    digests
}

fn assert_matches(name: &str, label: &str, golden: &[StateDigest], got: &[StateDigest]) {
    if let Some(tick) = golden.iter().zip(got).position(|(a, b)| a != b) {
        panic!(
            "{name} under {label}: digest diverged from the golden sequence at tick {tick}\n\
             golden: {:016x} pop {}\n\
             got:    {:016x} pop {}\n\
             If this change of game outcome is intentional, re-bless with\n\
             SGL_BLESS=1 cargo test --test golden_digests",
            golden[tick].hash, golden[tick].population, got[tick].hash, got[tick].population,
        );
    }
}

/// The oracle interpreter reproduces every checked-in sequence (this is also
/// the path `SGL_BLESS=1` regenerates from).
#[test]
fn scenarios_match_their_golden_digests() {
    for scenario in corpus() {
        let golden = golden_digests(&scenario);
        let oracle = digests_of(&scenario, ExecConfig::oracle(&scenario.schema));
        assert_matches(scenario.name, "oracle", &golden, &oracle);
    }
}

/// Every configuration of the lattice reproduces the golden sequences —
/// authored scenarios get the same cross-configuration guarantee as the
/// generated conformance corpus.
#[test]
fn golden_digests_hold_across_the_full_lattice() {
    for scenario in corpus() {
        let golden = golden_digests(&scenario);
        for (label, config) in config_lattice(&scenario.schema) {
            let got = digests_of(&scenario, config);
            assert_matches(scenario.name, &label, &golden, &got);
        }
    }
}

/// The corpus itself is stable: names are unique (they are file names) and
/// every golden file on disk corresponds to a scenario.
#[test]
fn corpus_names_are_unique_and_files_accounted_for() {
    let scenarios = corpus();
    let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
    names.sort_unstable();
    let mut deduped = names.clone();
    deduped.dedup();
    assert_eq!(names, deduped, "duplicate scenario names");
    if let Ok(dir) = std::fs::read_dir(golden_path("x").parent().expect("golden dir")) {
        for entry in dir.flatten() {
            let file = entry.file_name().to_string_lossy().into_owned();
            if let Some(stem) = file.strip_suffix(".digests") {
                assert!(
                    names.contains(&stem),
                    "stale golden file {file}: no scenario named `{stem}`"
                );
            }
        }
    }
}
