//! End-to-end determinism and purity of the optimization: for every scenario
//! shape and every execution mode the game unfolds identically, and the
//! save-game snapshot preserves state exactly.

use sgl::battle::{BattleScenario, Formation, ScenarioConfig, SkeletonConfig, SkeletonScenario};
use sgl::engine::{compare_traces, StateDigest, TraceComparison, TraceRecorder};
use sgl::env::snapshot::{restore, snapshot};
use sgl::exec::ExecMode;

fn record(scenario: &BattleScenario, mode: ExecMode, ticks: usize) -> TraceRecorder {
    let mut sim = scenario.build_simulation(mode);
    let mut recorder = TraceRecorder::new();
    for _ in 0..ticks {
        let report = sim.step().expect("tick succeeds");
        recorder.record(report.tick, sim.table(), report.deaths);
    }
    recorder
}

#[test]
fn naive_and_indexed_traces_are_identical_for_every_formation() {
    for formation in Formation::ALL {
        let config = ScenarioConfig {
            units: 80,
            density: 0.02,
            seed: 31,
            formation,
            ..ScenarioConfig::default()
        };
        let scenario = BattleScenario::generate(config);
        let naive = record(&scenario, ExecMode::Naive, 5);
        let indexed = record(&scenario, ExecMode::Indexed, 5);
        assert_eq!(
            compare_traces(&naive, &indexed),
            TraceComparison::Identical,
            "naive and indexed runs diverged with the {} formation",
            formation.name()
        );
    }
}

#[test]
fn the_skeleton_horde_scenario_is_mode_independent() {
    let config = SkeletonConfig {
        defenders: 20,
        skeletons: 60,
        density: 0.03,
        seed: 13,
        ..SkeletonConfig::default()
    };
    let scenario = SkeletonScenario::generate(config);
    let mut naive = scenario.build_simulation(ExecMode::Naive);
    let mut indexed = scenario.build_simulation(ExecMode::Indexed);
    for _ in 0..6 {
        naive.step().unwrap();
        indexed.step().unwrap();
        assert_eq!(naive.digest(), indexed.digest());
    }
}

#[test]
fn reruns_with_the_same_seed_reproduce_the_same_trace() {
    let config = ScenarioConfig {
        units: 60,
        density: 0.02,
        seed: 8,
        formation: Formation::Wedge,
        ..ScenarioConfig::default()
    };
    let a = record(&BattleScenario::generate(config), ExecMode::Indexed, 6);
    let b = record(&BattleScenario::generate(config), ExecMode::Indexed, 6);
    assert_eq!(compare_traces(&a, &b), TraceComparison::Identical);
    // And a different seed must *not* reproduce it.
    let other = ScenarioConfig { seed: 9, ..config };
    let c = record(&BattleScenario::generate(other), ExecMode::Indexed, 6);
    assert_ne!(compare_traces(&a, &c), TraceComparison::Identical);
}

#[test]
fn snapshots_preserve_mid_battle_state_exactly() {
    let config = ScenarioConfig {
        units: 70,
        density: 0.02,
        seed: 21,
        formation: Formation::Box,
        ..ScenarioConfig::default()
    };
    let scenario = BattleScenario::generate(config);
    let mut sim = scenario.build_simulation(ExecMode::Indexed);
    sim.run(4).unwrap();

    let bytes = snapshot(sim.table()).unwrap();
    let restored = restore(&bytes, sim.table().schema()).expect("snapshot restores");
    assert_eq!(StateDigest::of_table(&restored), sim.digest());
    assert_eq!(restored.len(), sim.table().len());

    // The snapshot must also be bit-stable: saving twice gives the same bytes.
    assert_eq!(bytes, snapshot(sim.table()).unwrap());
}

#[test]
fn timing_metrics_are_collected_for_every_tick() {
    let config = ScenarioConfig {
        units: 50,
        density: 0.02,
        seed: 5,
        ..ScenarioConfig::default()
    };
    let scenario = BattleScenario::generate(config);
    let mut sim = scenario.build_simulation(ExecMode::Indexed);
    let summary = sim.run(4).unwrap();
    assert!(summary.timings.total() > std::time::Duration::ZERO);
    let throughput = sim.throughput();
    assert_eq!(throughput.ticks, 4);
    assert!(throughput.ticks_per_second > 0.0);
    assert!(throughput.mean_tick <= throughput.worst_tick);
    // Each recorded tick carries its own phase breakdown.
    for report in sim.history() {
        assert!(report.timings.exec > std::time::Duration::ZERO);
    }
}
