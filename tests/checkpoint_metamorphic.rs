//! Metamorphic checkpoint equivalence: for any configuration and any split
//! point `k`,
//!
//! ```text
//! run(N)  ≡  run(k) → checkpoint → resume → run(N − k)
//! ```
//!
//! by bit-identical `StateDigest` at every tick.  This is the conformance
//! suite's argument extended across a process boundary: the checkpoint must
//! capture *all* state the trajectory depends on (table, tick counter, RNG
//! stream, runtime statistics, installed physical choices), and whatever it
//! does not capture (maintained index structures, memo caches) must be a
//! deterministic function of what it does.
//!
//! The sweep covers ≥ 8 generated `(script, world)` seeds × the full
//! 37-entry configuration lattice (including the force-materialized rows,
//! whose answer stores are deliberately *not* serialized and must be
//! rebuilt on resume), with the split point chosen seeded and *odd* — the
//! cost-based lattice rows re-cost on a 2-tick window, so an odd split
//! resumes mid-window with materialized answers live.  A second sweep resumes under a *different*
//! configuration than the writer (different parallelism, backend, policy,
//! planner and naive↔indexed), and a third checks the reader rejects
//! corrupted and mismatched input with typed errors.

use sgl::engine::StateDigest;
use sgl::env::EnvError;
use sgl::exec::{ExecConfig, MaintenancePolicy, Parallelism, PlannerMode, RebuildBackend};
use sgl_testkit::{config_lattice, ConformanceCase, TestRng};

/// Generated seeds to sweep (acceptance floor is 8).
const SEEDS: u64 = 8;
/// Ticks per case: long enough for several re-costing windows and a
/// mid-horizon split, short enough for the tier-1 budget.
const TICKS: usize = 8;

/// Digests of an uninterrupted run.
fn uninterrupted(case: &ConformanceCase, config: ExecConfig) -> Vec<StateDigest> {
    case.digests(config)
}

/// Digests of `run(k) → checkpoint → resume(reader_config) → run(N−k)`:
/// the first `k` digests come from the writer, the rest from the resumed
/// simulation.
fn interrupted(
    case: &ConformanceCase,
    writer_config: ExecConfig,
    reader_config: ExecConfig,
    k: usize,
) -> Vec<StateDigest> {
    let mut writer = case.build(writer_config);
    let mut digests = Vec::with_capacity(case.ticks);
    for tick in 0..k {
        writer
            .step()
            .unwrap_or_else(|e| panic!("seed {}: writer tick {tick} failed: {e}", case.seed));
        digests.push(writer.digest());
    }
    let bytes = writer.checkpoint().unwrap();
    drop(writer);
    let mut resumed = case.build(reader_config);
    resumed
        .resume(&bytes, reader_config)
        .unwrap_or_else(|e| panic!("seed {}: resume failed: {e}", case.seed));
    assert_eq!(resumed.current_tick() as usize, k);
    for tick in k..case.ticks {
        resumed
            .step()
            .unwrap_or_else(|e| panic!("seed {}: resumed tick {tick} failed: {e}", case.seed));
        digests.push(resumed.digest());
    }
    digests
}

fn assert_equivalent(
    case: &ConformanceCase,
    label: &str,
    k: usize,
    reference: &[StateDigest],
    resumed: &[StateDigest],
) {
    if let Some(tick) = reference.iter().zip(resumed).position(|(a, b)| a != b) {
        panic!(
            "\n=== CHECKPOINT METAMORPHIC FAILURE ===========================\n\
             case:   {}\n\
             config: {label}\n\
             split:  checkpoint after tick {k}\n\
             tick {tick}: uninterrupted {:016x} pop {} vs resumed {:016x} pop {}\n\
             script:\n{}\n\
             ==============================================================",
            case.describe(),
            reference[tick].hash,
            reference[tick].population,
            resumed[tick].hash,
            resumed[tick].population,
            case.script_source,
        );
    }
    assert_eq!(reference.len(), resumed.len());
}

/// The main sweep: every lattice configuration, writer == reader, seeded odd
/// split (mid cost-based re-costing window for the `w2` rows).
#[test]
fn resume_is_digest_identical_across_the_lattice() {
    for seed in 0..SEEDS {
        let mut case = ConformanceCase::generate(seed);
        case.ticks = TICKS;
        let schema = case.world.schema.clone();
        let mut rng = TestRng::new(seed ^ 0xC4EC);
        // Odd k in [1, TICKS-1]: never a boundary of the 2-tick re-costing
        // window, so cost-based rows always resume mid-window.
        let k = 1 + 2 * rng.below(TICKS / 2);
        assert!(k % 2 == 1 && k < TICKS);
        eprintln!("metamorphic: {} · split at {k}", case.describe());
        for (label, config) in config_lattice(&schema) {
            let reference = uninterrupted(&case, config);
            let resumed = interrupted(&case, config, config, k);
            assert_equivalent(&case, &label, k, &reference, &resumed);
        }
    }
}

/// Cross-configuration resume: the writer and the reader run different
/// parallelism, maintenance policy, rebuild backend, planner mode — even
/// naive vs indexed.  The resumed trajectory must still match the reader
/// configuration's own uninterrupted run (which the conformance lattice
/// proves equals everyone else's).
#[test]
fn resume_under_a_different_config_than_the_writer() {
    for seed in 0..SEEDS {
        let mut case = ConformanceCase::generate(seed);
        case.ticks = TICKS;
        let schema = case.world.schema.clone();
        let indexed = ExecConfig::indexed(&schema);
        let pairs: Vec<(&str, ExecConfig, ExecConfig)> = vec![
            (
                "serial→4t",
                indexed.with_parallelism(Parallelism::Off),
                indexed.with_parallelism(Parallelism::Threads(4)),
            ),
            (
                "4t→serial",
                indexed.with_parallelism(Parallelism::Threads(4)),
                indexed.with_parallelism(Parallelism::Off),
            ),
            (
                "layered→quadtree",
                indexed.with_backend(RebuildBackend::LayeredTree),
                indexed.with_backend(RebuildBackend::QuadTree),
            ),
            (
                "rebuild→incremental",
                indexed.with_policy(MaintenancePolicy::RebuildEachTick),
                indexed.with_policy(MaintenancePolicy::Incremental),
            ),
            (
                "costbased→heuristic",
                ExecConfig::cost_based(&schema).with_planner(PlannerMode::cost_based(2)),
                indexed,
            ),
            (
                "heuristic→costbased/2t",
                indexed,
                ExecConfig::cost_based(&schema)
                    .with_planner(PlannerMode::cost_based(2))
                    .with_parallelism(Parallelism::Threads(2)),
            ),
            ("indexed→naive", indexed, ExecConfig::naive(&schema)),
            ("naive→indexed", ExecConfig::naive(&schema), indexed),
            // Materialized answer stores are never serialized: resuming
            // *into* the materialized class rebuilds them from the restored
            // table; resuming *out of* it discards them.  Either direction
            // must be digest-neutral.
            (
                "materialized→heuristic",
                ExecConfig::cost_based(&schema).with_planner(PlannerMode::ForceMaterialized),
                indexed,
            ),
            (
                "costbased→materialized/2t",
                ExecConfig::cost_based(&schema).with_planner(PlannerMode::cost_based(2)),
                ExecConfig::cost_based(&schema)
                    .with_planner(PlannerMode::ForceMaterialized)
                    .with_parallelism(Parallelism::Threads(2)),
            ),
        ];
        let k = 3; // odd: mid-window for the cost-based writer
        for (label, writer, reader) in pairs {
            let reference = uninterrupted(&case, reader);
            let resumed = interrupted(&case, writer, reader, k);
            assert_equivalent(&case, label, k, &reference, &resumed);
        }
    }
}

/// Checkpoints taken at *every* split point of one case resume identically —
/// including k = 0 (checkpoint before the first tick) and k = N−1.
#[test]
fn every_split_point_is_equivalent() {
    let mut case = ConformanceCase::generate(2);
    case.ticks = 6;
    let schema = case.world.schema.clone();
    let config = ExecConfig::cost_based(&schema).with_planner(PlannerMode::cost_based(2));
    let reference = uninterrupted(&case, config);
    for k in 0..case.ticks {
        let resumed = interrupted(&case, config, config, k);
        assert_equivalent(&case, "costbased/w2/serial", k, &reference, &resumed);
    }
}

/// The checkpoint reader rejects corrupted, truncated and mismatched input
/// with typed errors — never panics, never resumes silently wrong.
#[test]
fn resume_rejects_bad_input_with_typed_errors() {
    let mut case = ConformanceCase::generate(4);
    case.ticks = 6;
    let schema = case.world.schema.clone();
    let config = ExecConfig::indexed(&schema);
    let mut writer = case.build(config);
    for _ in 0..3 {
        writer.step().unwrap();
    }
    let bytes = writer.checkpoint().unwrap();

    let mut rng = TestRng::new(0xBAD_C0DE);
    for _ in 0..200 {
        let mut target = case.build(config);
        let mutated: Vec<u8> = if rng.chance(1, 2) {
            // Seeded bit flip.
            let mut m = bytes.clone();
            let at = rng.below(m.len());
            m[at] ^= 1 << rng.below(8);
            m
        } else {
            // Seeded truncation.
            bytes[..rng.below(bytes.len())].to_vec()
        };
        if mutated == bytes {
            continue;
        }
        let err = target
            .resume(&mutated, config)
            .expect_err("mutated checkpoints must be rejected");
        // Typed env-layer error, with tick state untouched.
        assert!(
            matches!(
                err,
                sgl::engine::error::EngineError::Env(
                    EnvError::Checkpoint(_) | EnvError::Snapshot(_)
                )
            ),
            "unexpected error shape: {err}"
        );
        assert_eq!(target.current_tick(), 0);
    }

    // Fingerprint mismatch: a checkpoint from a different-schema world.
    let other = sgl::env::schema::paper_schema().into_shared();
    let table = sgl::env::EnvTable::new(other.clone());
    let mechanics = sgl::engine::Mechanics {
        post: sgl::env::PostProcessor::new(other.clone()),
        movement: None,
        resurrect: None,
    };
    let mut foreign = sgl::engine::Simulation::new(
        table,
        sgl::lang::builtins::paper_registry(),
        mechanics,
        ExecConfig::naive(&other),
        1,
    );
    let err = foreign
        .resume(&bytes, ExecConfig::naive(&other))
        .unwrap_err();
    assert!(err.to_string().contains("schema"), "{err}");
}
