//! Differential conformance: every executor configuration must reproduce,
//! bit for bit, the per-tick `StateDigest` sequence of the oracle
//! interpreter (`ExecMode::Oracle` — tree-walking AST evaluation, no
//! planner, no indexes, no memoization, serial).
//!
//! Each seed yields one generated `(script, world)` pair from `sgl-testkit`
//! (random-but-well-typed script; adversarial world layout), which then runs
//! across the full configuration lattice:
//!
//! ```text
//! {naive, planned} × {RebuildEachTick, Incremental, Adaptive}
//!                  × {LayeredTree, QuadTree} × {serial, 2, 4 threads}
//! ```
//!
//! (maintenance policy and backend are index-layer knobs, so the naive
//! executor contributes one entry per thread count).  A divergence is
//! shrunk to a minimal set of units before failing, and the panic message is
//! a complete reproducer: seed, configuration, tick, script source and the
//! surviving world rows.
//!
//! The default seed budget fits the tier-1 test run; CI sweeps more via
//! `SGL_CONFORMANCE_SEEDS=64`.

use sgl::engine::StateDigest;
use sgl::env::EnvTable;
use sgl::exec::ExecConfig;
use sgl_testkit::{config_lattice as lattice, ConformanceCase};

/// Seeds to sweep: `SGL_CONFORMANCE_SEEDS` or the tier-1 default of 32.
fn seed_budget() -> u64 {
    std::env::var("SGL_CONFORMANCE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn first_divergence(oracle: &[StateDigest], candidate: &[StateDigest]) -> usize {
    oracle
        .iter()
        .zip(candidate)
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| oracle.len().min(candidate.len()))
}

/// Rebuild the case's starting table keeping only the given unit keys.
fn table_subset(case: &ConformanceCase, keys: &[i64]) -> EnvTable {
    let mut table = EnvTable::new(case.world.schema.clone());
    for (_, row) in case.world.table.iter() {
        let key = row.key(&case.world.schema);
        if keys.contains(&key) {
            table
                .insert(row.to_tuple())
                .expect("subset keys stay unique");
        }
    }
    table
}

/// Does the case still diverge from the oracle when started from `keys`?
fn diverges_on(case: &ConformanceCase, keys: &[i64], config: ExecConfig) -> bool {
    let oracle = case.digests_on(
        table_subset(case, keys),
        ExecConfig::oracle(&case.world.schema),
    );
    let candidate = case.digests_on(table_subset(case, keys), config);
    oracle != candidate
}

/// Greedy delta-debugging: drop chunks of units while the divergence
/// persists.  Bounded so a stubborn case cannot stall the suite.
fn shrink_world(case: &ConformanceCase, config: ExecConfig) -> Vec<i64> {
    let mut keys: Vec<i64> = case
        .world
        .table
        .iter()
        .map(|(_, row)| row.key(&case.world.schema))
        .collect();
    let mut budget = 120usize;
    let mut chunk = (keys.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut start = 0;
        let mut shrunk_this_round = false;
        while start < keys.len() && budget > 0 {
            if keys.len() <= 1 {
                return keys;
            }
            let end = (start + chunk).min(keys.len());
            let candidate: Vec<i64> = keys[..start].iter().chain(&keys[end..]).copied().collect();
            budget -= 1;
            if !candidate.is_empty() && diverges_on(case, &candidate, config) {
                keys = candidate;
                shrunk_this_round = true;
                // Same start index now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk_this_round {
            break;
        }
        chunk = (chunk / 2).max(1);
        if chunk == 1 && keys.len() > 40 {
            // Single-unit passes over huge worlds burn the budget without
            // much gain; stop at the chunked minimum.
            break;
        }
    }
    keys
}

/// Render the surviving world rows for the reproducer dump.
fn dump_world(case: &ConformanceCase, keys: &[i64]) -> String {
    use std::fmt::Write as _;
    let schema = &case.world.schema;
    let mut out = String::from("  key player type      posx          posy  health\n");
    let get = |name: &str| schema.attr_id(name).expect("battle schema");
    let (player, unittype) = (get("player"), get("unittype"));
    let (posx, posy, health) = (get("posx"), get("posy"), get("health"));
    for (_, row) in case.world.table.iter() {
        let key = row.key(schema);
        if !keys.contains(&key) {
            continue;
        }
        let _ = writeln!(
            out,
            "  {key:3} {:6} {:4} {:13.6} {:13.6} {:6}",
            row.get_i64(player).unwrap_or(0),
            row.get_i64(unittype).unwrap_or(0),
            row.get_f64(posx).unwrap_or(f64::NAN),
            row.get_f64(posy).unwrap_or(f64::NAN),
            row.get_i64(health).unwrap_or(0),
        );
    }
    out
}

/// Shrink a confirmed divergence and panic with a full reproducer.
/// Shrink a confirmed divergence and panic with a full reproducer.
/// `world_from_seed` says whether the case's world was derived from its
/// seed (the generated sweep) or explicitly pinned by the calling test — a
/// pinned world cannot be reproduced through the seed sweep, only from the
/// dumped rows.
fn report_divergence(
    case: &ConformanceCase,
    label: &str,
    config: ExecConfig,
    oracle: &[StateDigest],
    candidate: &[StateDigest],
    world_from_seed: bool,
) -> ! {
    let tick = first_divergence(oracle, candidate);
    let keys = shrink_world(case, config);
    let shrunk_tick = {
        let o = case.digests_on(
            table_subset(case, &keys),
            ExecConfig::oracle(&case.world.schema),
        );
        let c = case.digests_on(table_subset(case, &keys), config);
        first_divergence(&o, &c)
    };
    let reproduce = if world_from_seed {
        format!(
            "re-run `cargo test --test conformance` with\n              \
             SGL_CONFORMANCE_SEEDS={} (any budget > {} replays seed {})",
            seed_budget().max(case.seed + 1),
            case.seed,
            case.seed
        )
    } else {
        "this test pins its world explicitly; rebuild the starting table\n              \
         from the dumped rows below and re-run the script under the config"
            .to_string()
    };
    panic!(
        "\n=== CONFORMANCE FAILURE ===============================================\n\
         case:        {desc}\n\
         config:      {label}\n\
         divergence:  tick {tick} (full world) / tick {shrunk_tick} (shrunk world)\n\
         shrunk to:   {n} of {total} units\n\
         reproduce:   {reproduce}\n\
         world rows (shrunk):\n{world}\
         script:\n{script}\n\
         =======================================================================",
        desc = case.describe(),
        n = keys.len(),
        total = case.world.table.len(),
        world = dump_world(case, &keys),
        script = case.script_source,
    );
}

#[test]
fn generated_cases_agree_with_the_oracle_across_the_lattice() {
    let seeds = seed_budget();
    for seed in 0..seeds {
        let case = ConformanceCase::generate(seed);
        eprintln!("conformance: {}", case.describe());
        let schema = case.world.schema.clone();
        let oracle = case.digests(ExecConfig::oracle(&schema));
        assert_eq!(oracle.len(), case.ticks);
        for (label, config) in lattice(&schema) {
            let candidate = case.digests(config);
            if candidate != oracle {
                report_divergence(&case, &label, config, &oracle, &candidate, true);
            }
        }
    }
}

#[test]
fn the_lattice_covers_the_advertised_configurations() {
    let schema = sgl::battle::battle_schema();
    let configs = lattice(&schema);
    // 3 thread counts × (1 naive + 3 policies × 2 backends + 1 cost-based
    // + 1 forced-materialized) = 27, plus 10 register-bytecode VM entries
    // (3 rebuild/layered threads, incremental/serial, adaptive/4t,
    // 2 cost-based, 3 forced-materialized) = 37.
    assert_eq!(configs.len(), 37);
    let labels: Vec<&str> = configs.iter().map(|(l, _)| l.as_str()).collect();
    for needle in [
        "naive/serial",
        "naive/4t",
        "planned/rebuild/layered/serial",
        "planned/rebuild/quadtree/2t",
        "planned/incremental/layered/4t",
        "planned/adaptive/quadtree/serial",
        "compiled/rebuild/layered/serial",
        "compiled/rebuild/layered/4t",
        "compiled/incremental/layered/serial",
        "compiled/adaptive/quadtree/4t",
        "compiled/costbased/w2/serial",
        "compiled/costbased/w2/4t",
        "planned/materialized/serial",
        "planned/materialized/2t",
        "planned/materialized/4t",
        "compiled/materialized/serial",
        "compiled/materialized/2t",
        "compiled/materialized/4t",
    ] {
        assert!(labels.contains(&needle), "missing {needle}: {labels:?}");
    }
    // No duplicate configurations.
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), labels.len());
}

/// Regression: the first divergence the harness ever found (seed 3, stacked
/// layout, shrunk to 4 units).  Units 44 and 46 share an *exact* position,
/// so both are equidistant nearest-enemy candidates for unit 47; the
/// kD-tree, the maintained grids and the scan each used to break the tie
/// differently.  The reference rule is now "smallest key wins" everywhere.
#[test]
fn nearest_enemy_ties_on_stacked_units_are_deterministic() {
    use sgl::env::{EnvTable, TupleBuilder};
    let schema = sgl::battle::battle_schema().into_shared();
    let mut table = EnvTable::new(schema.clone());
    for (key, player, unittype, posx, posy, health) in [
        (42i64, 0i64, 0i64, 23.018062, 24.096183, 30i64),
        (44, 0, 1, 21.057808, 34.255306, 12),
        (46, 0, 1, 21.057808, 34.255306, 9),
        (47, 1, 1, 29.412077, 34.638682, 9),
    ] {
        let stats = sgl::battle::UnitKind::from_code(unittype).unwrap().stats();
        let t = TupleBuilder::new(&schema)
            .set("key", key)
            .unwrap()
            .set("player", player)
            .unwrap()
            .set("unittype", unittype)
            .unwrap()
            .set("posx", posx)
            .unwrap()
            .set("posy", posy)
            .unwrap()
            .set("health", health)
            .unwrap()
            .set("max_health", stats.max_health)
            .unwrap()
            .set("range", stats.range)
            .unwrap()
            .set("sight", stats.sight)
            .unwrap()
            .set("morale", stats.morale)
            .unwrap()
            .set("armor", stats.armor)
            .unwrap()
            .set("strength", stats.strength)
            .unwrap()
            .build();
        table.insert(t).unwrap();
    }
    let mut case = ConformanceCase::generate(3);
    case.ticks = 4;
    let oracle = case.digests_on(table.clone(), ExecConfig::oracle(&schema));
    for (label, config) in lattice(&schema) {
        eprintln!("tie-regression: {label}");
        let candidate = case.digests_on(table.clone(), config);
        assert_eq!(
            candidate, oracle,
            "{label} diverged on the stacked-tie regression world"
        );
    }
}

/// The degenerate corners the generator is guaranteed to reach eventually,
/// pinned explicitly so they can never rotate out of the sweep: one-unit
/// worlds, single-player worlds (every enemy aggregate empty) and exactly
/// duplicated positions.
#[test]
fn degenerate_worlds_agree_with_the_oracle() {
    use sgl_testkit::{generate_world, WorldLayout, WorldSpec};
    for (units, layout, single_player) in [
        (1, WorldLayout::Uniform, false),
        (2, WorldLayout::Stacked, false),
        (17, WorldLayout::Stacked, false),
        (12, WorldLayout::Collinear, true),
        (24, WorldLayout::Extreme, false),
    ] {
        let world = generate_world(WorldSpec {
            seed: 9000 + units as u64,
            units,
            layout,
            wounded: true,
            single_player,
        });
        let mut case = ConformanceCase::generate(77);
        case.world = world;
        case.ticks = 4;
        let schema = case.world.schema.clone();
        let oracle = case.digests(ExecConfig::oracle(&schema));
        for (label, config) in lattice(&schema) {
            let candidate = case.digests(config);
            if candidate != oracle {
                // The world here is pinned, not derived from the case seed.
                report_divergence(&case, &label, config, &oracle, &candidate, false);
            }
        }
    }
}
