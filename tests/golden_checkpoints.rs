//! Golden checkpoint corpus: committed mid-run checkpoints of two preset
//! battles, taken after tick 10 under the reference writer configuration.
//!
//! Two guarantees are pinned:
//!
//! * **format stability** — re-checkpointing the same preset at the same
//!   tick reproduces the committed bytes exactly (the format, the section
//!   encodings and every EWMA in them are deterministic — including under
//!   `SGL_PARALLELISM=4`, because the statistics pipeline merges shard
//!   observations deterministically);
//! * **resume portability** — every configuration of the 31-entry lattice
//!   resumes the committed checkpoint and reproduces ticks 10..20 of the
//!   *golden digest corpus* (`tests/golden/<preset>.digests`, owned by
//!   `tests/golden_digests.rs`) bit for bit.  The two golden corpora
//!   cross-validate each other.
//!
//! Regenerate after an intentional format or semantics change:
//!
//! ```text
//! SGL_BLESS=1 cargo test --test golden_checkpoints
//! ```

use std::path::PathBuf;

use sgl::battle::PresetScenario;
use sgl::engine::{Simulation, StateDigest};
use sgl::exec::{ExecConfig, ExecMode};
use sgl_testkit::config_lattice;

/// Checkpoints are taken after this many ticks...
const CHECKPOINT_TICK: usize = 10;
/// ...and verified against the golden digests up to this tick.
const TICKS: usize = 20;

/// The two presets in the corpus (a subset of the digest corpus, so their
/// `.digests` files provide the reference continuation).
const PRESETS: [&str; 2] = ["siege", "mixed-formations"];

fn preset(name: &str) -> PresetScenario {
    PresetScenario::all()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown preset `{name}`"))
}

/// The reference writer configuration.  Deliberately the plain indexed
/// preset: it inherits `SGL_PARALLELISM`, so the CI matrix also proves the
/// checkpoint *bytes* are parallelism-independent.  The execution mode is
/// pinned to the plan interpreter — `indexed()` consults `SGL_EXEC_MODE`,
/// and golden bytes must not depend on an environment knob (the compiled
/// VM's probe statistics legitimately differ, so its STATS section would
/// drift).  Compiled-mode resume coverage comes from the lattice below.
fn writer_config(p: &PresetScenario) -> ExecConfig {
    ExecConfig::indexed(&p.schema).with_mode(ExecMode::Indexed)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.t{CHECKPOINT_TICK}.ckpt"))
}

fn digests_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.digests"))
}

/// Ticks 0..20 pinned by the golden *digest* corpus (same parser as
/// `golden_digests.rs`).
fn golden_digests(name: &str) -> Vec<StateDigest> {
    let path = digests_path(name);
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: no digest corpus at {} ({e})", path.display()));
    content
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|line| {
            let mut fields = line.split_whitespace();
            let _tick = fields.next();
            let hash = u64::from_str_radix(fields.next().expect("hash"), 16).expect("hex hash");
            let population = fields.next().expect("population").parse().expect("pop");
            StateDigest { hash, population }
        })
        .collect()
}

/// Run the preset to the checkpoint tick under the writer configuration and
/// serialize.
fn write_checkpoint(name: &str) -> Vec<u8> {
    let p = preset(name);
    let mut sim = p.build_with_config(writer_config(&p));
    for tick in 0..CHECKPOINT_TICK {
        sim.step()
            .unwrap_or_else(|e| panic!("{name}: writer tick {tick} failed: {e}"));
    }
    sim.checkpoint().unwrap()
}

fn blessing() -> bool {
    std::env::var("SGL_BLESS").is_ok_and(|v| v == "1")
}

fn golden_checkpoint(name: &str) -> Vec<u8> {
    let path = golden_path(name);
    if blessing() {
        let bytes = write_checkpoint(name);
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        std::fs::write(&path, &bytes).expect("write golden checkpoint");
        return bytes;
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: no golden checkpoint at {} ({e}).\n\
             Generate it with: SGL_BLESS=1 cargo test --test golden_checkpoints",
            path.display()
        )
    })
}

/// The checkpoint format (container, section encodings, statistics EWMAs)
/// is byte-stable: re-checkpointing reproduces the committed bytes.
#[test]
fn golden_checkpoints_are_byte_stable() {
    for name in PRESETS {
        let golden = golden_checkpoint(name);
        let fresh = write_checkpoint(name);
        assert_eq!(
            fresh, golden,
            "{name}: checkpoint bytes drifted from tests/golden/{name}.t{CHECKPOINT_TICK}.ckpt — \
             if the format or the semantics changed intentionally, re-bless with \
             SGL_BLESS=1 cargo test --test golden_checkpoints"
        );
    }
}

/// Checkpoints written before the columnar TABLE section (snapshot format
/// v1, row-major tagged values) still resume.  The committed `.v1.ckpt`
/// artifacts are frozen copies of the pre-columnar golden corpus; they are
/// never re-blessed.  Resuming one must land on the same digest as the
/// current corpus and continue bit-identically — the paging layer changed
/// the encoding, not the game.
#[test]
fn v1_table_checkpoints_still_resume() {
    for name in PRESETS {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{name}.t{CHECKPOINT_TICK}.v1.ckpt"));
        let bytes = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{name}: no v1 artifact at {} ({e})", path.display()));
        let reference = golden_digests(name);
        let p = preset(name);
        let config = writer_config(&p);
        let mut sim: Simulation = p.build_with_config(config);
        sim.resume(&bytes, config)
            .unwrap_or_else(|e| panic!("{name}: v1 checkpoint resume failed: {e}"));
        assert_eq!(
            sim.digest(),
            reference[CHECKPOINT_TICK - 1],
            "{name}: v1 checkpoint restored to a different state"
        );
        for (tick, expected) in reference
            .iter()
            .enumerate()
            .take(TICKS)
            .skip(CHECKPOINT_TICK)
        {
            sim.step()
                .unwrap_or_else(|e| panic!("{name}: tick {tick} failed after v1 resume: {e}"));
            assert_eq!(
                sim.digest(),
                *expected,
                "{name}: run resumed from a v1 checkpoint diverged at tick {tick}"
            );
        }
    }
}

/// Every lattice configuration resumes the committed checkpoint and
/// reproduces ticks 10..20 of the golden digest corpus.
#[test]
fn golden_checkpoints_resume_identically_across_the_lattice() {
    for name in PRESETS {
        let bytes = golden_checkpoint(name);
        let reference = golden_digests(name);
        assert!(reference.len() >= TICKS, "{name}: digest corpus too short");
        let p = preset(name);
        for (label, config) in config_lattice(&p.schema) {
            let mut sim: Simulation = p.build_with_config(config);
            sim.resume(&bytes, config)
                .unwrap_or_else(|e| panic!("{name} under {label}: resume failed: {e}"));
            assert_eq!(sim.current_tick() as usize, CHECKPOINT_TICK, "{name}");
            assert_eq!(
                sim.digest(),
                reference[CHECKPOINT_TICK - 1],
                "{name} under {label}: restored state does not match the digest corpus \
                 at the checkpoint tick"
            );
            for (tick, expected) in reference
                .iter()
                .enumerate()
                .take(TICKS)
                .skip(CHECKPOINT_TICK)
            {
                sim.step()
                    .unwrap_or_else(|e| panic!("{name} under {label}: tick {tick} failed: {e}"));
                assert_eq!(
                    sim.digest(),
                    *expected,
                    "{name} under {label}: resumed run diverged from the golden \
                     digests at tick {tick}"
                );
            }
        }
    }
}
