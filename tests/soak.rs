//! Long-horizon soak: drive generated worlds for many ticks with population
//! churn, checkpointing at seeded intervals and checking cross-tick
//! invariants (see `sgl_testkit::soak`).
//!
//! The tick budget is wall-clock bounded through `SGL_SOAK_TICKS` (tier-1
//! default 160 per seed; the CI soak job runs thousands in release mode).
//! On failure the complete reproducer dump is written to
//! `target/soak/soak-seed<seed>.txt` — the CI job uploads that directory as
//! an artifact.

use std::path::PathBuf;

use sgl_testkit::{run_soak, SoakSpec};

fn tick_budget() -> usize {
    std::env::var("SGL_SOAK_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(160)
}

fn dump_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("soak")
}

#[test]
fn long_horizon_soak_with_seeded_checkpoints() {
    let ticks = tick_budget();
    for seed in [1u64, 2, 3] {
        let spec = SoakSpec::new(seed, ticks);
        match run_soak(&spec) {
            Ok(report) => {
                eprintln!(
                    "soak seed {seed}: {} ticks · {} checkpoints · {} shadow ticks · \
                     {} deaths · final pop {} · primary {} · shadow {}",
                    report.ticks,
                    report.checkpoints,
                    report.shadow_ticks,
                    report.deaths,
                    report.final_population,
                    report.configs[0],
                    report.configs[1],
                );
                assert_eq!(report.ticks, ticks);
                assert!(report.checkpoints >= 1, "soak never checkpointed");
                assert!(report.shadow_ticks >= 1, "soak never compared a shadow");
            }
            Err(failure) => {
                let dir = dump_dir();
                let _ = std::fs::create_dir_all(&dir);
                let path = dir.join(format!("soak-seed{seed}.txt"));
                let _ = std::fs::write(&path, &failure.dump);
                panic!(
                    "{failure}\nreproducer dump written to {}\n{}",
                    path.display(),
                    failure.dump
                );
            }
        }
    }
}

/// Materialized-class soak: a churn-heavy world (deaths + resurrection
/// moving units every tick) runs the force-materialized configuration in
/// lockstep with the oracle interpreter for the whole horizon, with a
/// checkpoint/resume in the middle.  Digests must stay bit-identical
/// through heavy support invalidation — min/max answers whose supporting
/// extremum died must recompute, never serve a stale fold.
#[test]
fn materialized_soak_under_support_invalidation_churn() {
    use sgl::exec::{ExecConfig, PlannerMode};
    use sgl_testkit::ConformanceCase;

    let ticks = (tick_budget() / 2).max(40);
    for seed in [4u64, 6] {
        let mut case = ConformanceCase::generate_sized(seed, 24, 96);
        case.ticks = ticks;
        case.resurrect = true; // deaths respawn and keep the churn going
        let schema = case.world.schema.clone();

        let mat_config =
            ExecConfig::cost_based(&schema).with_planner(PlannerMode::ForceMaterialized);
        let mut oracle = case.build(ExecConfig::oracle(&schema));
        let mut mat = case.build(mat_config);

        let mut serves = 0usize;
        let mut invalidations = 0usize;
        let mut deaths = 0usize;
        let split = ticks / 2;
        for tick in 0..ticks {
            oracle.step().expect("oracle tick");
            let report = mat.step().expect("materialized tick");
            serves += report.exec.materialized_serves;
            invalidations += mat.index_manager().last_maint.mat_invalidated;
            deaths += report.deaths;
            assert_eq!(
                mat.digest(),
                oracle.digest(),
                "seed {seed}: materialized diverged from oracle at tick {tick}"
            );
            if tick + 1 == split {
                // Mid-soak process boundary: the answer store is not in the
                // checkpoint and must be rebuilt by the resumed simulation.
                let bytes = mat.checkpoint().expect("checkpoint serializes");
                let mut resumed = case.build(mat_config);
                resumed.resume(&bytes, mat_config).expect("resume");
                assert_eq!(resumed.digest(), mat.digest(), "seed {seed}: resume");
                mat = resumed;
            }
        }
        eprintln!(
            "materialized soak seed {seed}: {ticks} ticks · {serves} O(1) serves · \
             {invalidations} support invalidations · {deaths} deaths"
        );
        assert!(
            serves > 0,
            "seed {seed}: no materialized answer ever served"
        );
        assert!(deaths > 0, "seed {seed}: the world never churned");
        assert!(
            invalidations > 0,
            "seed {seed}: churn never invalidated a stored answer"
        );
    }
}
