//! Long-horizon soak: drive generated worlds for many ticks with population
//! churn, checkpointing at seeded intervals and checking cross-tick
//! invariants (see `sgl_testkit::soak`).
//!
//! The tick budget is wall-clock bounded through `SGL_SOAK_TICKS` (tier-1
//! default 160 per seed; the CI soak job runs thousands in release mode).
//! On failure the complete reproducer dump is written to
//! `target/soak/soak-seed<seed>.txt` — the CI job uploads that directory as
//! an artifact.

use std::path::PathBuf;

use sgl_testkit::{run_soak, SoakSpec};

fn tick_budget() -> usize {
    std::env::var("SGL_SOAK_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(160)
}

fn dump_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("soak")
}

#[test]
fn long_horizon_soak_with_seeded_checkpoints() {
    let ticks = tick_budget();
    for seed in [1u64, 2, 3] {
        let spec = SoakSpec::new(seed, ticks);
        match run_soak(&spec) {
            Ok(report) => {
                eprintln!(
                    "soak seed {seed}: {} ticks · {} checkpoints · {} shadow ticks · \
                     {} deaths · final pop {} · primary {} · shadow {}",
                    report.ticks,
                    report.checkpoints,
                    report.shadow_ticks,
                    report.deaths,
                    report.final_population,
                    report.configs[0],
                    report.configs[1],
                );
                assert_eq!(report.ticks, ticks);
                assert!(report.checkpoints >= 1, "soak never checkpointed");
                assert!(report.shadow_ticks >= 1, "soak never compared a shadow");
            }
            Err(failure) => {
                let dir = dump_dir();
                let _ = std::fs::create_dir_all(&dir);
                let path = dir.join(format!("soak-seed{seed}.txt"));
                let _ = std::fs::write(&path, &failure.dump);
                panic!(
                    "{failure}\nreproducer dump written to {}\n{}",
                    path.display(),
                    failure.dump
                );
            }
        }
    }
}
