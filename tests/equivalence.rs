//! Cross-crate integration tests: the naive and the indexed executors must
//! agree on the game they simulate (the optimization is purely a performance
//! transformation), and the battle case study must exercise the whole stack.

use sgl::battle::{BattleScenario, ScenarioConfig};
use sgl::exec::ExecMode;

fn scenario(units: usize, seed: u64) -> BattleScenario {
    BattleScenario::generate(ScenarioConfig {
        units,
        density: 0.02,
        seed,
        ..ScenarioConfig::default()
    })
}

#[test]
fn naive_and_indexed_battles_agree_on_integer_state() {
    let scenario = scenario(60, 77);
    let mut naive = scenario.build_simulation(ExecMode::Naive);
    let mut indexed = scenario.build_simulation(ExecMode::Indexed);
    let schema = scenario.schema.clone();
    let health = schema.attr_id("health").unwrap();
    let cooldown = schema.attr_id("cooldown").unwrap();
    let posx = schema.attr_id("posx").unwrap();
    let posy = schema.attr_id("posy").unwrap();

    for tick in 0..4 {
        naive.step().unwrap();
        indexed.step().unwrap();
        assert_eq!(
            naive.table().sorted_keys(),
            indexed.table().sorted_keys(),
            "tick {tick}"
        );
        for key in naive.table().sorted_keys() {
            let a = naive
                .table()
                .row(naive.table().find_key_readonly(key).unwrap());
            let b = indexed
                .table()
                .row(indexed.table().find_key_readonly(key).unwrap());
            assert_eq!(
                a.get_i64(health).unwrap(),
                b.get_i64(health).unwrap(),
                "tick {tick} unit {key} health"
            );
            assert_eq!(
                a.get_i64(cooldown).unwrap(),
                b.get_i64(cooldown).unwrap(),
                "tick {tick} unit {key} cooldown"
            );
            // Positions agree up to floating-point summation order.
            assert!((a.get_f64(posx).unwrap() - b.get_f64(posx).unwrap()).abs() < 1e-6);
            assert!((a.get_f64(posy).unwrap() - b.get_f64(posy).unwrap()).abs() < 1e-6);
        }
    }
}

#[test]
fn indexed_battle_does_substantially_less_aggregate_work() {
    let scenario = scenario(120, 5);
    let mut naive = scenario.build_simulation(ExecMode::Naive);
    let mut indexed = scenario.build_simulation(ExecMode::Indexed);
    let ns = naive.run(2).unwrap();
    let is = indexed.run(2).unwrap();
    // Same number of per-unit aggregate probes are *requested*...
    assert_eq!(ns.exec.aggregate_probes, is.exec.aggregate_probes);
    // ...but the naive engine answers them all by scanning, the indexed one
    // answers none of them that way.
    assert!(ns.exec.naive_scans > 0);
    assert_eq!(is.exec.naive_scans, 0);
    assert!(is.exec.index_probes + is.exec.shared_hits > 0);
    // Index construction is shared across probes: far fewer builds than probes.
    assert!(is.exec.indexes_built * 10 < is.exec.index_probes.max(1));
}

#[test]
fn battles_are_deterministic_for_a_fixed_seed() {
    let a = scenario(50, 123);
    let b = scenario(50, 123);
    let mut sim_a = a.build_simulation(ExecMode::Indexed);
    let mut sim_b = b.build_simulation(ExecMode::Indexed);
    for _ in 0..5 {
        sim_a.step().unwrap();
        sim_b.step().unwrap();
    }
    let schema = a.schema.clone();
    let health = schema.attr_id("health").unwrap();
    let posx = schema.attr_id("posx").unwrap();
    assert_eq!(sim_a.table().sorted_keys(), sim_b.table().sorted_keys());
    for key in sim_a.table().sorted_keys() {
        let ra = sim_a
            .table()
            .row(sim_a.table().find_key_readonly(key).unwrap());
        let rb = sim_b
            .table()
            .row(sim_b.table().find_key_readonly(key).unwrap());
        assert_eq!(ra.get_i64(health).unwrap(), rb.get_i64(health).unwrap());
        assert_eq!(ra.get_f64(posx).unwrap(), rb.get_f64(posx).unwrap());
    }
}

#[test]
fn different_seeds_produce_different_battles() {
    let mut sim_a = scenario(50, 1).build_simulation(ExecMode::Indexed);
    let mut sim_b = scenario(50, 2).build_simulation(ExecMode::Indexed);
    sim_a.run(3).unwrap();
    sim_b.run(3).unwrap();
    let posx = sim_a.table().schema().attr_id("posx").unwrap();
    let xs_a: Vec<i64> = sim_a
        .table()
        .column_f64(posx)
        .unwrap()
        .iter()
        .map(|x| (x * 100.0) as i64)
        .collect();
    let xs_b: Vec<i64> = sim_b
        .table()
        .column_f64(posx)
        .unwrap()
        .iter()
        .map(|x| (x * 100.0) as i64)
        .collect();
    assert_ne!(xs_a, xs_b);
}

/// The ISSUE-1 equivalence suite: naive, rebuild-indexed and
/// incrementally-maintained executors must produce identical effect
/// relations and state digests on seeded battle scenarios across long runs.
mod backend_equivalence {
    use sgl::battle::{BattleScenario, ScenarioConfig};
    use sgl::engine::replay::StateDigest;
    use sgl::exec::{ExecConfig, MaintenancePolicy, RebuildBackend};

    const TICKS: usize = 50;

    fn digests_for(scenario: &BattleScenario, config: ExecConfig, label: &str) -> Vec<StateDigest> {
        let mut sim = scenario.build_simulation(sgl::exec::ExecMode::Indexed);
        sim.set_exec_config(config);
        (0..TICKS)
            .map(|tick| {
                sim.step()
                    .unwrap_or_else(|e| panic!("{label} tick {tick}: {e}"));
                sim.digest()
            })
            .collect()
    }

    fn check_scenario(units: usize, seed: u64) {
        let scenario = BattleScenario::generate(ScenarioConfig {
            units,
            density: 0.02,
            seed,
            ..ScenarioConfig::default()
        });
        let schema = scenario.schema.clone();
        let naive = digests_for(&scenario, ExecConfig::naive(&schema), "naive");
        let rebuild = digests_for(&scenario, ExecConfig::indexed(&schema), "rebuild");
        let quadtree = digests_for(
            &scenario,
            ExecConfig::indexed(&schema).with_backend(RebuildBackend::QuadTree),
            "rebuild/quadtree",
        );
        let incremental = digests_for(
            &scenario,
            ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::Incremental),
            "incremental",
        );
        let adaptive = digests_for(
            &scenario,
            ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::adaptive()),
            "adaptive",
        );
        for tick in 0..TICKS {
            assert_eq!(
                naive[tick], rebuild[tick],
                "seed {seed}: naive vs rebuild at tick {tick}"
            );
            assert_eq!(
                naive[tick], quadtree[tick],
                "seed {seed}: naive vs quadtree at tick {tick}"
            );
            assert_eq!(
                naive[tick], incremental[tick],
                "seed {seed}: naive vs incremental at tick {tick}"
            );
            assert_eq!(
                naive[tick], adaptive[tick],
                "seed {seed}: naive vs adaptive at tick {tick}"
            );
        }
    }

    #[test]
    fn scenario_one_agrees_across_backends() {
        check_scenario(60, 101);
    }

    #[test]
    fn scenario_two_agrees_across_backends() {
        check_scenario(90, 2024);
    }

    #[test]
    fn scenario_three_agrees_across_backends() {
        check_scenario(120, 777);
    }

    /// The ISSUE-2 parallel-equivalence suite: the sharded executor must be
    /// a pure performance knob — at 2 and 4 worker threads every maintenance
    /// policy (and the naive baseline) produces **bit-identical**
    /// `StateDigest`s to serial execution, tick for tick, on the same seeded
    /// battles the backend suite uses.
    mod parallel {
        use super::*;
        use sgl::exec::Parallelism;

        fn check_parallel_scenario(units: usize, seed: u64) {
            let scenario = BattleScenario::generate(ScenarioConfig {
                units,
                density: 0.02,
                seed,
                ..ScenarioConfig::default()
            });
            let schema = scenario.schema.clone();
            let configs: Vec<(&'static str, ExecConfig)> = vec![
                ("naive", ExecConfig::naive(&schema)),
                ("rebuild", ExecConfig::indexed(&schema)),
                (
                    "rebuild/quadtree",
                    ExecConfig::indexed(&schema).with_backend(RebuildBackend::QuadTree),
                ),
                (
                    "incremental",
                    ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::Incremental),
                ),
                (
                    "adaptive",
                    ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::adaptive()),
                ),
            ];
            for (label, config) in configs {
                let serial = digests_for(
                    &scenario,
                    config.with_parallelism(Parallelism::Off),
                    &format!("{label}/serial"),
                );
                for threads in [2usize, 4] {
                    let parallel = digests_for(
                        &scenario,
                        config.with_parallelism(Parallelism::Threads(threads)),
                        &format!("{label}/{threads}-threads"),
                    );
                    for tick in 0..TICKS {
                        assert_eq!(
                            serial[tick], parallel[tick],
                            "seed {seed}: {label} at {threads} threads diverged from serial \
                             at tick {tick}"
                        );
                    }
                }
            }
        }

        #[test]
        fn scenario_one_parallel_matches_serial() {
            check_parallel_scenario(60, 101);
        }

        #[test]
        fn scenario_two_parallel_matches_serial() {
            check_parallel_scenario(90, 2024);
        }

        #[test]
        fn scenario_three_parallel_matches_serial() {
            check_parallel_scenario(120, 777);
        }
    }

    /// The per-tick effect relations themselves (not just the resulting
    /// state) must be identical across backends.
    #[test]
    fn effect_relations_are_identical_across_backends() {
        use sgl::engine::Simulation;
        let scenario = BattleScenario::generate(ScenarioConfig {
            units: 50,
            density: 0.02,
            seed: 7,
            ..ScenarioConfig::default()
        });
        let schema = scenario.schema.clone();
        let make = |config: ExecConfig| -> Simulation {
            let mut sim = scenario.build_simulation(sgl::exec::ExecMode::Indexed);
            sim.set_exec_config(config);
            sim
        };
        let mut sims = [
            ("naive", make(ExecConfig::naive(&schema))),
            ("rebuild", make(ExecConfig::indexed(&schema))),
            (
                "incremental",
                make(ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::Incremental)),
            ),
        ];
        for tick in 0..20 {
            let mut reference: Option<(usize, StateDigest)> = None;
            for (label, sim) in sims.iter_mut() {
                let report = sim.step().unwrap();
                let current = (report.exec.effect_rows, sim.digest());
                match &reference {
                    None => reference = Some(current),
                    Some(expected) => {
                        assert_eq!(
                            *expected, current,
                            "{label} diverged from naive at tick {tick} (effect rows + digest)"
                        );
                    }
                }
            }
        }
    }
}
