//! Register-bytecode compiler coverage: the disassembler, golden
//! compile→disassemble snapshots for every preset battle, a generated sweep
//! of compiled-vs-oracle digests on seeds *beyond* the lattice defaults, and
//! a deny-style source scan keeping the non-test `sgl-exec` crate free of
//! panicking constructs (the tick path must fail through `ExecError`, never
//! through `panic!`).
//!
//! Regenerate the disassembly snapshots after an intentional compiler
//! change:
//!
//! ```text
//! SGL_BLESS=1 cargo test --test bytecode
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use sgl::battle::PresetScenario;
use sgl::exec::{ExecConfig, ExecMode};
use sgl_testkit::ConformanceCase;

fn blessing() -> bool {
    std::env::var("SGL_BLESS").is_ok_and(|v| v == "1")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/bytecode")
        .join(format!("{name}.disasm"))
}

/// Compile every script of a preset and render the full disassembly, one
/// section per script.  The writer configuration pins [`ExecMode::Compiled`]
/// so the snapshot never depends on `SGL_EXEC_MODE`.
fn disassemble_preset(p: &PresetScenario) -> String {
    let config = ExecConfig::indexed(&p.schema).with_mode(ExecMode::Compiled);
    let sim = p.build_with_config(config);
    let mut out = String::new();
    assert!(
        !sim.scripts().is_empty(),
        "{}: preset has no scripts",
        p.name
    );
    for script in sim.scripts() {
        let compiled = script.compiled.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: preset script `{}` did not lower to bytecode",
                p.name, script.name
            )
        });
        let _ = writeln!(out, "=== script `{}` ===", script.name);
        let _ = writeln!(out, "{compiled}");
    }
    out
}

/// The compile→disassemble output of every preset battle is pinned as a
/// golden snapshot: any change to the lowering (instruction selection,
/// register allocation, call-site analysis) shows up as a reviewable diff
/// instead of a silent semantic drift.
#[test]
fn preset_battles_disassemble_to_golden_snapshots() {
    for p in PresetScenario::all() {
        let fresh = disassemble_preset(&p);
        let path = golden_path(p.name);
        if blessing() {
            std::fs::create_dir_all(path.parent().expect("golden dir"))
                .expect("create tests/golden/bytecode");
            std::fs::write(&path, &fresh).expect("write golden disassembly");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: no golden disassembly at {} ({e}).\n\
                 Generate it with: SGL_BLESS=1 cargo test --test bytecode",
                p.name,
                path.display()
            )
        });
        assert_eq!(
            fresh, golden,
            "{}: disassembly drifted from tests/golden/bytecode/{}.disasm — \
             if the compiler changed intentionally, re-bless with \
             SGL_BLESS=1 cargo test --test bytecode",
            p.name, p.name
        );
    }
}

/// The disassembler itself renders the pieces the snapshots rely on:
/// per-instruction lines, the constant pool, and per-call-site summaries.
#[test]
fn disassembler_renders_instructions_and_call_sites() {
    let p = PresetScenario::all().into_iter().next().expect("presets");
    let sim = p.build_with_config(ExecConfig::indexed(&p.schema).with_mode(ExecMode::Compiled));
    let script = &sim.scripts()[0];
    let compiled = script.compiled.as_ref().expect("preset script compiles");
    let text = format!("{compiled}");
    // Every instruction index appears as a line label.
    for pc in 0..compiled.instr_count() {
        assert!(
            text.contains(&format!("{pc:3}: ")),
            "instruction {pc} missing from disassembly:\n{text}"
        );
    }
    // Every call site appears both in the disassembly and in the explain
    // annotations, under matching indices.
    let aggs = compiled.agg_site_lines();
    let performs = compiled.perform_site_lines();
    assert!(!performs.is_empty(), "preset script performs no action");
    for (i, (name, line)) in aggs.iter().enumerate() {
        assert!(text.contains(&format!("agg#{i} {name}(")), "{text}");
        assert!(line.contains(&format!("site #{i} {name}(")), "{line}");
    }
    for (i, (name, line)) in performs.iter().enumerate() {
        assert!(text.contains(&format!("perform#{i} {name}(")), "{text}");
        assert!(line.contains(&format!("site #{i} {name}(")), "{line}");
    }
    assert!(compiled.reg_count() > 0);
}

/// Generated conformance sweep on 64 seeds disjoint from the lattice
/// sweep's default range (`tests/conformance.rs` runs seeds `0..32`, CI
/// `0..64`): the bytecode VM must reproduce the oracle interpreter's digest
/// sequence bit for bit, serial and sharded, on cases the lattice never saw.
#[test]
fn compiled_matches_oracle_on_64_seeds_beyond_the_lattice() {
    use sgl::exec::Parallelism;
    for seed in 2000..2064u64 {
        let case = ConformanceCase::generate(seed);
        let schema = case.world.schema.clone();
        let oracle = case.digests(ExecConfig::oracle(&schema));
        for (label, par) in [
            ("serial", Parallelism::Off),
            ("4t", Parallelism::Threads(4)),
        ] {
            let config = ExecConfig::indexed(&schema)
                .with_mode(ExecMode::Compiled)
                .with_parallelism(par);
            let candidate = case.digests(config);
            assert_eq!(
                candidate,
                oracle,
                "seed {seed} ({label}): compiled VM diverged from the oracle\n\
                 case: {}\nscript:\n{}",
                case.describe(),
                case.script_source
            );
        }
    }
}

/// Deny-style audit: the non-test portion of `sgl-exec` contains no
/// panicking construct.  Every error on the tick path must surface as a
/// typed [`sgl::exec::ExecError`] — a malformed environment variable, a
/// missing plan entry or an index invariant violation may fail the tick,
/// but must never abort the host process.  Test modules (everything from
/// the first `#[cfg(test)]` down, by the crate's module layout) are exempt.
#[test]
fn exec_crate_non_test_code_is_panic_free() {
    let (offenders, audited) = scan_crate_for_panics("crates/exec/src", 10);
    assert!(
        offenders.is_empty(),
        "panicking constructs on non-test sgl-exec paths (use ExecError instead):\n{}",
        offenders.join("\n")
    );
    assert_eq!(audited, 0, "sgl-exec carries no PANIC-AUDIT exemptions");
}

/// Same audit for `sgl-env`'s tick/IO path: the pager (spill-file decode,
/// lock poisoning), snapshot/checkpoint decoding and the table layer all
/// sit on the engine's per-tick residency protocol, where a panic would
/// abort the host instead of failing the tick with a typed
/// [`sgl::env::EnvError`].
#[test]
fn env_crate_non_test_code_is_panic_free() {
    let (offenders, audited) = scan_crate_for_panics("crates/env/src", 5);
    assert!(
        offenders.is_empty(),
        "panicking constructs on non-test sgl-env paths (use EnvError instead):\n{}",
        offenders.join("\n")
    );
    // Six audited sites survive: the infallible `Value` read API over
    // residency-pinned rows (`value_at`, `key_of`, `Tuple::key`), the
    // `Clone` impl (the trait cannot return `Result`), the documented
    // panicking doc-example helper (`TupleBuilderExt::unwrap_key`) and the
    // static `paper_schema` constructor.  Anything beyond that must be
    // converted to a typed `EnvError`.
    assert!(
        audited <= 6,
        "PANIC-AUDIT exemptions in sgl-env grew to {audited} (cap 6) — convert new sites to EnvError"
    );
}

/// Scan a crate's top-level sources for panicking constructs outside test
/// modules (everything from the first `#[cfg(test)]` down, by the repo's
/// module layout).  Lines carrying a `PANIC-AUDIT:` comment are exempt —
/// those mark call sites whose panic is unreachable by an invariant the
/// comment names (e.g. an infallible-by-trait `Clone`, or reads covered by
/// the tick-start residency pin) — but the audited count is capped, so new
/// markers still show up in review.  Returns `(offending lines, audited)`.
fn scan_crate_for_panics(rel_src_dir: &str, min_files: usize) -> (Vec<String>, usize) {
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel_src_dir);
    let banned = [
        ".unwrap(",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ];
    let mut files = 0;
    let mut offenders = Vec::new();
    let mut audited = 0;
    let entries = std::fs::read_dir(&src_dir).expect("crate src dir exists");
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        files += 1;
        let source = std::fs::read_to_string(&path).expect("readable source");
        for (lineno, line) in source.lines().enumerate() {
            if line.contains("#[cfg(test)]") {
                // Unit tests live in a trailing `mod tests` — everything
                // below the marker is test-only.
                break;
            }
            // Strip line comments so prose about panics doesn't trip the
            // scan; string literals still count, which is the safe side.
            let code = line.split("//").next().unwrap_or(line);
            for needle in banned {
                if code.contains(needle) {
                    if line.contains("PANIC-AUDIT:") {
                        audited += 1;
                    } else {
                        offenders.push(format!(
                            "{}:{}: {}",
                            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
                            lineno + 1,
                            line.trim()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        files >= min_files,
        "expected the {rel_src_dir} sources, saw {files}"
    );
    (offenders, audited)
}
