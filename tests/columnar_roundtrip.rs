//! Column round-trip property sweep over the adversarial world generator.
//!
//! Three properties, checked across every world layout and a seed sweep:
//!
//! * **row↔column agreement** — the row view ([`EnvTable::row`] /
//!   [`EnvTable::value_at`]) and the column view ([`EnvTable::column_values`]
//!   and the typed column extractors) are two projections of one store and
//!   must always agree cell for cell;
//! * **tombstone compaction** — removing rows compacts every column in
//!   lockstep: survivors keep their attribute values, the key index stays
//!   exact, and the column lengths never skew;
//! * **snapshot byte-stability** — `snapshot → restore → snapshot` is a
//!   fixed point, including after Mixed-page promotions and compaction,
//!   because the columnar encoding is a pure function of logical content.

use sgl::env::snapshot::{restore, snapshot};
use sgl::env::{EnvTable, Value};
use sgl_testkit::{generate_world, TestRng, WorldLayout, WorldSpec};

fn sweep_worlds() -> impl Iterator<Item = (u64, WorldLayout)> {
    (0..4u64).flat_map(|seed| WorldLayout::ALL.iter().map(move |l| (seed, *l)))
}

/// The row view and the column view must agree on every cell.
fn assert_views_agree(table: &EnvTable, context: &str) {
    let arity = table.schema().len();
    let columns: Vec<Vec<Value>> = (0..arity)
        .map(|a| table.column_values(a).expect("column read"))
        .collect();
    for (attr, column) in columns.iter().enumerate() {
        assert_eq!(
            column.len(),
            table.len(),
            "{context}: column {attr} length skew"
        );
    }
    for (idx, row) in table.iter() {
        for (attr, column) in columns.iter().enumerate() {
            assert_eq!(
                row.get(attr),
                column[idx],
                "{context}: row/column disagree at ({idx}, {attr})"
            );
            assert_eq!(
                table.value_at(idx, attr),
                column[idx],
                "{context}: value_at/column disagree at ({idx}, {attr})"
            );
        }
    }
    // Typed extractors agree with the generic view where they apply.
    for (attr, column) in columns.iter().enumerate() {
        if let Ok(typed) = table.column_f64(attr) {
            for (idx, x) in typed.iter().enumerate() {
                assert_eq!(
                    column[idx].as_f64().unwrap(),
                    *x,
                    "{context}: column_f64 disagrees at ({idx}, {attr})"
                );
            }
        }
    }
}

#[test]
fn row_and_column_views_agree_across_the_generator() {
    for (seed, layout) in sweep_worlds() {
        let world = generate_world(WorldSpec {
            seed,
            units: 150 + (seed as usize * 131) % 400,
            layout,
            wounded: seed % 2 == 1,
            single_player: seed % 3 == 0,
        });
        assert_views_agree(&world.table, &format!("seed {seed} {}", layout.name()));
    }
}

#[test]
fn tombstone_compaction_keeps_columns_in_lockstep() {
    for (seed, layout) in sweep_worlds() {
        let mut world = generate_world(WorldSpec {
            seed,
            units: 200,
            layout,
            wounded: true,
            single_player: false,
        });
        let context = format!("seed {seed} {}", layout.name());
        let table = &mut world.table;
        let key_attr = table.schema().key_attr();

        // Record survivors' full rows before the kill.
        let mut rng = TestRng::new(seed ^ 0xDEAD);
        let modulus = 2 + rng.below(4) as i64;
        let victim = rng.below(modulus as usize) as i64;
        let expected: Vec<(i64, Vec<Value>)> = table
            .iter()
            .filter(|(_, row)| row.get_i64(key_attr).unwrap().rem_euclid(modulus) != victim)
            .map(|(_, row)| {
                let key = row.get_i64(key_attr).unwrap();
                (key, (0..table.schema().len()).map(|a| row.get(a)).collect())
            })
            .collect();

        let before = table.len();
        let removed = table
            .remove_where(|row| row.get_i64(key_attr).unwrap().rem_euclid(modulus) == victim)
            .unwrap();
        assert_eq!(before - removed, expected.len(), "{context}: removal count");
        assert_eq!(
            table.len(),
            expected.len(),
            "{context}: post-compaction length"
        );
        assert_views_agree(table, &format!("{context} after compaction"));

        // Survivors kept their rows, in original relative order, and the
        // key index resolves each one.
        for (idx, (key, values)) in expected.iter().enumerate() {
            assert_eq!(table.key_of(idx), *key, "{context}: survivor order broke");
            assert_eq!(
                table.find_key_readonly(*key),
                Some(idx),
                "{context}: key index lost a survivor"
            );
            for (attr, expected_value) in values.iter().enumerate() {
                assert_eq!(
                    table.value_at(idx, attr),
                    *expected_value,
                    "{context}: survivor ({idx}, {attr}) mutated during compaction"
                );
            }
        }
    }
}

#[test]
fn snapshot_restore_snapshot_is_a_fixed_point() {
    for (seed, layout) in sweep_worlds() {
        let mut world = generate_world(WorldSpec {
            seed,
            units: 180,
            layout,
            wounded: seed % 2 == 0,
            single_player: false,
        });
        let context = format!("seed {seed} {}", layout.name());
        let table = &mut world.table;
        let mut rng = TestRng::new(seed ^ 0xC0DE);

        // Scramble the column representations: variant-mismatched writes
        // promote pages to Mixed, compaction rebuilds them typed, and a
        // couple of writes restore uniformity on some columns — so the
        // sweep covers typed, Mixed and re-uniformed pages.
        let arity = table.schema().len();
        for op in 0..30 {
            let row = rng.below(table.len());
            let attr = 1 + rng.below(arity - 1);
            let value = if rng.chance(1, 2) {
                Value::Int(op as i64)
            } else {
                Value::Float(op as f64 * 1.5)
            };
            table.set_attr(row, attr, value).unwrap();
        }
        if rng.chance(2, 3) {
            table
                .remove_where(|row| row.get_i64(0).unwrap() % 5 == 0)
                .unwrap();
        }

        let bytes = snapshot(table).unwrap();
        let restored = restore(&bytes, table.schema()).expect("restore");
        assert_eq!(
            snapshot(&restored).unwrap(),
            bytes,
            "{context}: snapshot → restore → snapshot is not a fixed point"
        );
        assert_views_agree(&restored, &format!("{context} restored"));

        // And the restored table is logically identical to the original.
        for attr in 0..arity {
            assert_eq!(
                table.column_values(attr).unwrap(),
                restored.column_values(attr).unwrap(),
                "{context}: column {attr} changed across the round trip"
            );
        }
    }
}
