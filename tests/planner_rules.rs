//! Per-rule optimizer tests: for every rewrite rule in
//! `crates/algebra/src/rules.rs`, (a) an explain-based assertion that the
//! rule fires on its motivating script shape (the rendered plan changes in
//! the way the paper's Figure 6 walk describes), and (b) a differential
//! check that the rewritten plan produces exactly the same effect relation
//! as the unrewritten one on a populated world — rules must only ever buy
//! speed, never change semantics.

use std::sync::Arc;

use sgl::algebra::{explain, optimize_with, translate, LogicalPlan, OptimizerOptions};
use sgl::env::{EnvTable, GameRng, Schema, TupleBuilder};
use sgl::exec::{execute_tick, ExecConfig, ScriptRun};
use sgl::lang::builtins::paper_registry;
use sgl::lang::normalize::normalize;
use sgl::lang::parse_script;

/// Translate a script to its unoptimized logical plan.
fn plan_of(src: &str) -> LogicalPlan {
    let registry = paper_registry();
    let script = parse_script(src).expect("test script parses");
    let normal = normalize(&script, &registry).expect("test script normalizes");
    translate(&normal)
}

/// Apply exactly one rule (plus nothing else) to a plan.
fn apply_rule(plan: LogicalPlan, pick: impl Fn(&mut OptimizerOptions)) -> LogicalPlan {
    let registry = paper_registry();
    let mut options = OptimizerOptions::none();
    pick(&mut options);
    optimize_with(plan, &registry, options).plan
}

/// A deterministic world over the paper schema: two interleaved players on a
/// diagonal spread, some units with cooldown 0 and some wounded, so every
/// branch of the motivating scripts has acting units.
fn make_table(n: usize) -> (Arc<Schema>, EnvTable) {
    let schema = sgl::env::schema::paper_schema().into_shared();
    let mut table = EnvTable::new(Arc::clone(&schema));
    let mut state = 99u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    for key in 0..n {
        let t = TupleBuilder::new(&schema)
            .set("key", key as i64)
            .unwrap()
            .set("player", (key % 2) as i64)
            .unwrap()
            .set("posx", next() * 40.0)
            .unwrap()
            .set("posy", next() * 40.0)
            .unwrap()
            .set("health", 10 + (key as i64 % 13))
            .unwrap()
            .set("cooldown", (key as i64) % 3)
            .unwrap()
            .build();
        table.insert(t).unwrap();
    }
    (schema, table)
}

/// Execute one tick of a plan over the world with every unit acting and
/// return the canonical effect relation.
fn effects_of(plan: &LogicalPlan) -> Vec<(i64, sgl::env::AttrId, sgl::env::Value)> {
    let registry = paper_registry();
    let (schema, table) = make_table(36);
    let rng = GameRng::new(5).for_tick(1);
    let runs = vec![ScriptRun::new(plan, (0..table.len() as u32).collect())];
    let (effects, _) = execute_tick(&table, &registry, &runs, &rng, &ExecConfig::naive(&schema))
        .expect("plan executes");
    effects.canonical()
}

/// The rewritten plan must be observationally identical to the original.
fn assert_same_effects(unoptimized: &LogicalPlan, optimized: &LogicalPlan, rule: &str) {
    assert_eq!(
        effects_of(unoptimized),
        effects_of(optimized),
        "{rule} changed the effect relation;\n--- before ---\n{}\n--- after ---\n{}",
        explain(unoptimized),
        explain(optimized)
    );
}

/// Figure 6 (a)→(b), dead-column elimination: the `¬φ1` branch never reads
/// the `away` centroid, so its ExtendAgg must disappear from that branch.
#[test]
fn dead_column_elimination_fires_on_the_figure_6_shape() {
    let plan = plan_of(
        r#"main(u) {
            (let c = CountEnemiesInRange(u, 12))
            (let away = CentroidOfEnemyUnits(u, 12))
            if c > 3 then
              perform MoveInDirection(u, away.x, away.y);
            else
              perform FireAt(u, getNearestEnemy(u).key);
        }"#,
    );
    let before = explain(&plan);
    // Unoptimized: the centroid is extended in both branches of the combine.
    assert_eq!(before.matches("CentroidOfEnemyUnits").count(), 2);

    let optimized = apply_rule(plan.clone(), |o| o.dead_column_elimination = true);
    let after = explain(&optimized);
    assert_eq!(
        after.matches("CentroidOfEnemyUnits").count(),
        1,
        "the unused centroid extension must be dropped from the else-branch:\n{after}"
    );
    // The used extensions survive.
    assert_eq!(after.matches("CountEnemiesInRange").count(), 2);
    assert_eq!(after.matches("getNearestEnemy").count(), 1);
    assert_same_effects(&plan, &optimized, "dead-column elimination");
}

/// Rule (8), extension pull-up: a selection on a plain attribute is pushed
/// below the aggregate extension, so the aggregate is only computed for the
/// selected units — in the rendered tree, ExtendAgg moves *above* Select.
#[test]
fn extension_pull_up_fires_when_the_selection_ignores_the_column() {
    let plan = plan_of(
        r#"main(u) {
            (let away = CentroidOfEnemyUnits(u, 15))
            if u.cooldown = 0 then
              perform MoveInDirection(u, away.x, away.y);
        }"#,
    );
    let line_index = |text: &str, needle: &str| -> usize {
        text.lines()
            .position(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("no `{needle}` line in:\n{text}"))
    };
    let before = explain(&plan);
    // Unoptimized (root-first rendering): the selection sits above the
    // extension, so every unit pays for the centroid.
    assert!(
        line_index(&before, "Select σ[")
            < line_index(&before, "ExtendAgg π[*, CentroidOfEnemyUnits"),
        "unexpected translation:\n{before}"
    );

    let optimized = apply_rule(plan.clone(), |o| o.extension_pull_up = true);
    let after = explain(&optimized);
    assert!(
        line_index(&after, "ExtendAgg π[*, CentroidOfEnemyUnits") < line_index(&after, "Select σ["),
        "the extension must be evaluated after the selection:\n{after}"
    );
    assert_same_effects(&plan, &optimized, "extension pull-up");
}

/// Associativity of ⊕: nested combines (from nested conditionals and
/// statement sequences) flatten into one n-ary combine with no Empty inputs.
#[test]
fn combine_flattening_fires_on_nested_conditionals() {
    let plan = plan_of(
        r#"main(u) {
            (let c = CountEnemiesInRange(u, 9))
            if c > 4 then {
              perform FireAt(u, getNearestEnemy(u).key);
              perform MoveInDirection(u, 1, 1);
            }
            else {
              if u.health > 5 then
                perform MoveInDirection(u, 30, 30);
              else
                perform MoveInDirection(u, 0, 0);
            }
        }"#,
    );
    // The raw translation nests: Combine(then-branch, Combine(inner if)...).
    fn max_combine_nesting(plan: &LogicalPlan, inside: usize) -> usize {
        let here = match plan {
            LogicalPlan::Combine { .. } => inside + 1,
            _ => inside,
        };
        plan.children()
            .iter()
            .map(|c| max_combine_nesting(c, here))
            .max()
            .unwrap_or(here)
    }
    assert!(
        max_combine_nesting(&plan, 0) >= 2,
        "motivating shape should nest combines:\n{}",
        explain(&plan)
    );

    let optimized = apply_rule(plan.clone(), |o| o.combine_flattening = true);
    let after = explain(&optimized);
    assert_eq!(
        max_combine_nesting(&optimized, 0),
        1,
        "combines must flatten to a single n-ary node:\n{after}"
    );
    assert!(
        !after.contains("Empty"),
        "empty inputs must be dropped:\n{after}"
    );
    assert_same_effects(&plan, &optimized, "combine flattening");
}

/// Figure 6 (c)→(d): when complementary branches partition the environment
/// and every action writes onto its acting unit, the final `⊕ E` is
/// redundant and the CombineWithEnv root disappears.
#[test]
fn env_combine_elimination_fires_on_partitioning_branches() {
    let plan = plan_of(
        r#"main(u) {
            (let c = CountEnemiesInRange(u, 11))
            if c > 2 then
              perform FireAt(u, getNearestEnemy(u).key);
            else
              perform MoveInDirection(u, 20, 20);
        }"#,
    );
    let before = explain(&plan);
    assert!(
        before.contains("CombineWithEnv"),
        "unexpected translation:\n{before}"
    );

    let optimized = apply_rule(plan.clone(), |o| {
        // Flattening first normalizes the combine the partition check reads.
        o.combine_flattening = true;
        o.env_combine_elimination = true;
    });
    let after = explain(&optimized);
    assert!(
        !after.contains("CombineWithEnv"),
        "the redundant ⊕ E must be eliminated:\n{after}"
    );
    assert_same_effects(&plan, &optimized, "environment-combine elimination");
}

/// The guard side of the env-combine rule: `Heal` does not write onto the
/// healer itself, so the `⊕ E` must be kept even on a partitioning shape —
/// the rule's structural proof fails and the plan is unchanged.
#[test]
fn env_combine_is_kept_when_an_action_does_not_cover_self() {
    let plan = plan_of(
        r#"main(u) {
            (let c = CountEnemiesInRange(u, 11))
            if c > 2 then
              perform Heal(u);
            else
              perform MoveInDirection(u, 20, 20);
        }"#,
    );
    let optimized = apply_rule(plan.clone(), |o| {
        o.combine_flattening = true;
        o.env_combine_elimination = true;
    });
    let after = explain(&optimized);
    assert!(
        after.contains("CombineWithEnv"),
        "⊕ E is load-bearing for non-self-covering actions:\n{after}"
    );
    assert_same_effects(&plan, &optimized, "environment-combine (kept)");
}

/// The full default pipeline on the running example: all four rules compose,
/// the plan shrinks, and the semantics is unchanged — the explain report
/// shows fewer aggregate extensions after than before.
#[test]
fn the_default_pipeline_composes_all_rules_without_changing_semantics() {
    let registry = paper_registry();
    let plan = plan_of(
        r#"main(u) {
            (let c = CountEnemiesInRange(u, 12))
            (let away = CentroidOfEnemyUnits(u, 12))
            if c > 3 then
              perform MoveInDirection(u, away.x, away.y);
            else if c > 0 and u.cooldown = 0 then
              perform FireAt(u, getNearestEnemy(u).key);
            else
              perform MoveInDirection(u, 25, 25);
        }"#,
    );
    let optimized = optimize_with(plan.clone(), &registry, OptimizerOptions::default());
    assert!(
        optimized.after.aggregate_nodes < optimized.before.aggregate_nodes,
        "the pipeline should remove at least one aggregate extension: {:?} -> {:?}",
        optimized.before,
        optimized.after
    );
    assert!(optimized.after.nodes < optimized.before.nodes);
    assert_same_effects(&plan, &optimized.plan, "default pipeline");
}
