//! Experiment harness reproducing the paper's evaluation (§6).
//!
//! ```text
//! cargo run --release --bin repro -- fig10      # Figure 10 scaling sweep
//! cargo run --release --bin repro -- density    # density experiment
//! cargo run --release --bin repro -- capacity   # ticks/second capacity claim
//! cargo run --release --bin repro -- all        # everything (default)
//! ```
//!
//! Absolute numbers depend on the machine; the reproduced quantity is the
//! *shape*: quadratic naive growth, near-linear indexed growth, an order of
//! magnitude gap well before 1 000 units.

use sgl::battle::scenario::run_battle;
use sgl::exec::ExecMode;

fn fig10(quick: bool) {
    println!("== Figure 10: total time per 500 ticks vs. number of units (density 1%) ==");
    println!(
        "{:>8} {:>16} {:>16} {:>9}",
        "units", "naive (s/500t)", "indexed (s/500t)", "speedup"
    );
    let sizes: &[usize] = if quick {
        &[250, 500, 1000, 2000]
    } else {
        &[250, 500, 1000, 2000, 4000, 7000, 10000, 14000]
    };
    for &units in sizes {
        // Scale the measured tick count down as n grows so the sweep finishes
        // in reasonable time; the per-tick cost is what matters.
        let ticks = (4000 / units).clamp(2, 20);
        let naive_ticks = if units > 4000 { 2 } else { ticks };
        let naive = run_battle(units, 0.01, ExecMode::Naive, naive_ticks, 42);
        let indexed = run_battle(units, 0.01, ExecMode::Indexed, ticks, 42);
        println!(
            "{:>8} {:>16.2} {:>16.2} {:>8.1}x",
            units,
            naive.seconds_per_500_ticks(),
            indexed.seconds_per_500_ticks(),
            naive.seconds_per_tick() / indexed.seconds_per_tick()
        );
    }
}

fn density() {
    println!("== Density experiment: 500 units, density 0.5%-8% ==");
    println!(
        "{:>9} {:>16} {:>16}",
        "density", "naive (s/500t)", "indexed (s/500t)"
    );
    for density in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let naive = run_battle(500, density, ExecMode::Naive, 5, 42);
        let indexed = run_battle(500, density, ExecMode::Indexed, 5, 42);
        println!(
            "{:>8.1}% {:>16.2} {:>16.2}",
            density * 100.0,
            naive.seconds_per_500_ticks(),
            indexed.seconds_per_500_ticks()
        );
    }
}

fn capacity() {
    println!("== Capacity at 10 ticks/second (section 6.1) ==");
    for mode in [ExecMode::Naive, ExecMode::Indexed] {
        let mut supported = 0usize;
        for &units in &[250usize, 500, 1000, 2000, 4000, 8000, 12000, 16000] {
            let ticks = if mode == ExecMode::Naive && units > 2000 {
                2
            } else {
                3
            };
            let m = run_battle(units, 0.01, mode, ticks, 42);
            if m.ticks_per_second() >= 10.0 {
                supported = units;
            } else {
                break;
            }
        }
        println!("{mode:?}: supports ~{supported} units at >= 10 ticks/second");
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let quick = std::env::args().any(|a| a == "--quick");
    match arg.as_str() {
        "fig10" => fig10(quick),
        "density" => density(),
        "capacity" => capacity(),
        _ => {
            fig10(quick);
            println!();
            density();
            println!();
            capacity();
        }
    }
}
