//! # sgl — Scalable Games Language
//!
//! Umbrella crate re-exporting the whole SGL system (a reproduction of
//! *Scaling Games to Epic Proportions*, SIGMOD 2007): the scripting language,
//! the query optimizer, the naive and indexed executors, the discrete
//! simulation engine and the battle-simulation case study.
//!
//! ```
//! use sgl::battle::{BattleScenario, ScenarioConfig};
//! use sgl::exec::ExecMode;
//!
//! let scenario = BattleScenario::generate(ScenarioConfig { units: 40, ..Default::default() });
//! let mut sim = scenario.build_simulation(ExecMode::Indexed);
//! sim.run(2).unwrap();
//! assert_eq!(sim.current_tick(), 2);
//! ```

pub use sgl_battle as battle;
pub use sgl_core::algebra;
pub use sgl_core::engine;
pub use sgl_core::env;
pub use sgl_core::exec;
pub use sgl_core::index;
pub use sgl_core::lang;
pub use sgl_core::{
    compile_script, compile_script_with, CompileError, CompiledScript, GameBuilder,
};
