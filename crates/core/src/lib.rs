//! # sgl-core — the assembled SGL system
//!
//! This crate glues the SGL front end (`sgl-lang`), the algebraic optimizer
//! (`sgl-algebra`), the executors (`sgl-exec`) and the discrete simulation
//! engine (`sgl-engine`) into the compile-and-run pipeline a game integrates:
//!
//! ```text
//! SGL source ──parse──▶ AST ──normalize──▶ normal form ──check──▶
//!   ──translate──▶ logical plan ──optimize──▶ optimized plan ──▶ Simulation
//! ```
//!
//! The [`compile_script`] function performs the full front-end pipeline; the
//! [`GameBuilder`] assembles a [`sgl_engine::Simulation`] from a schema, a
//! registry of built-ins, game mechanics and a set of scripts.

#![warn(missing_docs)]

use std::sync::Arc;

use sgl_algebra::{optimize_with, Optimized, OptimizerOptions};
use sgl_engine::{Mechanics, Simulation, UnitSelector};
use sgl_env::{EnvTable, Schema};
use sgl_exec::ExecConfig;
use sgl_lang::normalize::normalize;
use sgl_lang::typecheck::{check_registry, check_script};
use sgl_lang::{parse_script, CheckReport, LangError, Registry};

pub use sgl_algebra as algebra;
pub use sgl_engine as engine;
pub use sgl_env as env;
pub use sgl_exec as exec;
pub use sgl_index as index;
pub use sgl_lang as lang;

/// A fully compiled SGL script: the optimized plan plus compile-time reports.
#[derive(Debug, Clone)]
pub struct CompiledScript {
    /// Name given at compile time (for diagnostics).
    pub name: String,
    /// Result of the optimizer (plan + before/after statistics).
    pub optimized: Optimized,
    /// The normalized script the plan was translated from — kept so the
    /// simulation can also run it under the differential
    /// `sgl_exec::ExecMode::Oracle` (tree-walking reference interpreter).
    pub normal: sgl_lang::normalize::NormalScript,
    /// Type-check report (aggregate call sites, performs, nesting depth).
    pub check: CheckReport,
}

impl CompiledScript {
    /// The optimized logical plan.
    pub fn plan(&self) -> &sgl_algebra::LogicalPlan {
        &self.optimized.plan
    }
}

/// Errors of the compile pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Front-end error (lexing, parsing, normalisation, type checking).
    Lang(LangError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(e)
    }
}

/// Compile an SGL script with the default optimizer options.
pub fn compile_script(
    name: &str,
    source: &str,
    schema: &Schema,
    registry: &Registry,
) -> Result<CompiledScript, CompileError> {
    compile_script_with(name, source, schema, registry, OptimizerOptions::default())
}

/// Compile an SGL script with explicit optimizer options (used by the
/// optimizer ablation benchmarks).
pub fn compile_script_with(
    name: &str,
    source: &str,
    schema: &Schema,
    registry: &Registry,
    options: OptimizerOptions,
) -> Result<CompiledScript, CompileError> {
    let ast = parse_script(source)?;
    let normal = normalize(&ast, registry)?;
    let check = check_script(&normal, schema, registry)?;
    let plan = sgl_algebra::translate(&normal);
    let optimized = optimize_with(plan, registry, options);
    Ok(CompiledScript {
        name: name.to_string(),
        optimized,
        normal,
        check,
    })
}

/// Builder assembling a ready-to-run [`Simulation`].
pub struct GameBuilder {
    schema: Arc<Schema>,
    registry: Registry,
    mechanics: Mechanics,
    exec: ExecConfig,
    seed: u64,
    optimizer: OptimizerOptions,
    scripts: Vec<(String, String, UnitSelector)>,
}

impl GameBuilder {
    /// Start building a game.
    pub fn new(schema: Arc<Schema>, registry: Registry, mechanics: Mechanics) -> GameBuilder {
        let exec = ExecConfig::indexed(&schema);
        GameBuilder {
            schema,
            registry,
            mechanics,
            exec,
            seed: 0,
            optimizer: OptimizerOptions::default(),
            scripts: Vec::new(),
        }
    }

    /// Choose the execution configuration (naive / indexed, cascading, ...).
    pub fn exec_config(mut self, exec: ExecConfig) -> GameBuilder {
        self.exec = exec;
        self
    }

    /// Choose the optimizer options.
    pub fn optimizer(mut self, options: OptimizerOptions) -> GameBuilder {
        self.optimizer = options;
        self
    }

    /// Set the game seed (all randomness derives from it).
    pub fn seed(mut self, seed: u64) -> GameBuilder {
        self.seed = seed;
        self
    }

    /// Register a script (SGL source) for the units chosen by the selector.
    pub fn script(mut self, name: &str, source: &str, selector: UnitSelector) -> GameBuilder {
        self.scripts
            .push((name.to_string(), source.to_string(), selector));
        self
    }

    /// Validate the registry, compile every script and build the simulation
    /// over the provided initial environment.
    pub fn build(self, table: EnvTable) -> Result<Simulation, CompileError> {
        check_registry(&self.registry, &self.schema)?;
        let mut compiled = Vec::with_capacity(self.scripts.len());
        for (name, source, selector) in &self.scripts {
            let script =
                compile_script_with(name, source, &self.schema, &self.registry, self.optimizer)?;
            compiled.push((script, selector.clone()));
        }
        let mut sim = Simulation::new(table, self.registry, self.mechanics, self.exec, self.seed);
        for (script, selector) in compiled {
            // Keep the normalized AST alongside the plan so the simulation
            // can switch into the differential oracle mode.
            sim.add_script_with_source(
                script.name.clone(),
                script.optimized.plan,
                script.normal,
                selector,
            );
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::postprocess::paper_postprocessor;
    use sgl_env::schema::paper_schema;
    use sgl_env::TupleBuilder;
    use sgl_lang::builtins::paper_registry;

    const SCRIPT: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, 10))
          if c > 0 and u.cooldown = 0 then perform FireAt(u, getNearestEnemy(u).key);
          else perform MoveInDirection(u, 25, 25);
        }
    "#;

    #[test]
    fn compile_pipeline_produces_an_optimized_plan() {
        let schema = paper_schema();
        let registry = paper_registry();
        let compiled = compile_script("test", SCRIPT, &schema, &registry).unwrap();
        assert_eq!(compiled.check.aggregate_calls, 2);
        assert_eq!(compiled.check.performs, 2);
        assert!(compiled.optimized.after.nodes <= compiled.optimized.before.nodes);
        assert!(compiled.plan().count_apply_nodes() == 2);
    }

    #[test]
    fn compile_errors_surface() {
        let schema = paper_schema();
        let registry = paper_registry();
        assert!(
            compile_script("bad", "main(u) { perform Unknown(u); }", &schema, &registry).is_err()
        );
        assert!(compile_script(
            "bad",
            "main(u) { if u.mana > 2 then perform Heal(u); }",
            &schema,
            &registry
        )
        .is_err());
        assert!(compile_script("bad", "main(u) { ", &schema, &registry).is_err());
    }

    #[test]
    fn game_builder_runs_a_small_game() {
        let schema = paper_schema().into_shared();
        let registry = paper_registry();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for key in 0..10i64 {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", key % 2)
                .unwrap()
                .set("posx", key as f64 * 3.0)
                .unwrap()
                .set("posy", (key % 3) as f64 * 4.0)
                .unwrap()
                .set("health", 20i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let mechanics = Mechanics {
            post: paper_postprocessor(&schema, 1.0, 2).unwrap(),
            movement: None,
            resurrect: None,
        };
        let mut sim = GameBuilder::new(Arc::clone(&schema), registry, mechanics)
            .seed(3)
            .script("battle", SCRIPT, UnitSelector::All)
            .build(table)
            .unwrap();
        let summary = sim.run(3).unwrap();
        assert_eq!(summary.ticks, 3);
        assert!(summary.exec.aggregate_probes > 0);
    }

    #[test]
    fn builder_rejects_bad_scripts() {
        let schema = paper_schema().into_shared();
        let registry = paper_registry();
        let table = EnvTable::new(Arc::clone(&schema));
        let mechanics = Mechanics {
            post: paper_postprocessor(&schema, 1.0, 2).unwrap(),
            movement: None,
            resurrect: None,
        };
        let result = GameBuilder::new(Arc::clone(&schema), registry, mechanics)
            .script("bad", "main(u) { perform Nope(u); }", UnitSelector::All)
            .build(table);
        assert!(result.is_err());
    }
}
