//! # sgl-testkit — seeded generators for differential conformance testing
//!
//! The paper's evaluation is only meaningful because the optimized,
//! set-at-a-time execution is *observationally identical* to naive per-unit
//! evaluation.  This crate provides the machinery to check that claim
//! systematically instead of anecdotally, the way incremental
//! view-maintenance work validates dynamic answers against from-scratch
//! recomputation:
//!
//! * [`script_gen`] — a seeded generator of random-but-well-typed SGL
//!   scripts drawn from the `lang::ast` grammar, rendered through the
//!   pretty-printer and re-parsed so every generated case also exercises
//!   the parser round trip;
//! * [`world_gen`] — a seeded generator of initial environments over the
//!   battle schema with adversarial layouts (clustered, uniform, degenerate
//!   collinear, exactly duplicated positions, extreme-but-finite
//!   coordinates);
//! * [`case`] — [`ConformanceCase`], one `(script, world, seed)` triple with
//!   plumbing to build a simulation under any [`sgl_core::exec::ExecConfig`]
//!   and collect per-tick [`StateDigest`](sgl_core::engine::StateDigest)s;
//! * [`soak`] — the long-horizon soak harness: thousands of ticks with
//!   population churn, seeded checkpoint/resume into shadow simulations
//!   under different configurations, and cross-tick invariant checks.
//!
//! Everything is a pure function of its seed: a failing case reported by
//! `tests/conformance.rs` reproduces from the seed alone, forever.

#![warn(missing_docs)]

pub mod case;
pub mod script_gen;
pub mod soak;
pub mod world_gen;

pub use case::ConformanceCase;
pub use script_gen::{generate_script, script_source, ScriptGenConfig};
pub use soak::{run_soak, SoakFailure, SoakReport, SoakSpec};
pub use world_gen::{generate_world, GeneratedWorld, WorldLayout, WorldSpec};

use sgl_core::env::Schema;
use sgl_core::exec::{
    ExecConfig, ExecMode, MaintenancePolicy, Parallelism, PlannerMode, RebuildBackend,
};

/// The full executor-configuration lattice the conformance and golden-digest
/// suites sweep (37 configurations):
///
/// ```text
/// {naive, planned} × {RebuildEachTick, Incremental, Adaptive}
///                  × {LayeredTree, QuadTree} × {serial, 2, 4 threads}
///   + costbased(window=2) × {serial, 2, 4 threads}
///   + materialized × {serial, 2, 4 threads}
///   + compiled × {rebuild/layered × {serial, 2t, 4t},
///                 incremental/layered/serial, adaptive/quadtree/4t,
///                 costbased/w2 × {serial, 4t},
///                 materialized × {serial, 2t, 4t}}
/// ```
///
/// Maintenance policy and rebuild backend are index-layer knobs, so the
/// naive executor contributes one entry per thread count.  The cost-based
/// rows run the adaptive planner with a 2-tick re-costing window, so a 4–6
/// tick conformance case re-costs (and may swap backends per call site)
/// mid-run — proving adaptivity is observationally neutral.  The `planned/`
/// rows pin [`ExecMode::Indexed`] (the plan interpreter) explicitly — the
/// preset default is env-sensitive — and the `compiled/` rows exercise the
/// register-bytecode VM over a representative policy × backend × thread
/// diagonal.  The oracle configuration ([`ExecConfig::oracle`]) is
/// deliberately *not* part of the lattice: it is the reference the lattice
/// is compared against.
pub fn config_lattice(schema: &Schema) -> Vec<(String, ExecConfig)> {
    let mut configs = Vec::new();
    let threads = [
        ("serial", Parallelism::Off),
        ("2t", Parallelism::Threads(2)),
        ("4t", Parallelism::Threads(4)),
    ];
    for (tname, par) in threads {
        configs.push((
            format!("naive/{tname}"),
            ExecConfig::naive(schema).with_parallelism(par),
        ));
        for (pname, policy) in [
            ("rebuild", MaintenancePolicy::RebuildEachTick),
            ("incremental", MaintenancePolicy::Incremental),
            ("adaptive", MaintenancePolicy::adaptive()),
        ] {
            for (bname, backend) in [
                ("layered", RebuildBackend::LayeredTree),
                ("quadtree", RebuildBackend::QuadTree),
            ] {
                configs.push((
                    format!("planned/{pname}/{bname}/{tname}"),
                    ExecConfig::indexed(schema)
                        .with_mode(ExecMode::Indexed)
                        .with_policy(policy)
                        .with_backend(backend)
                        .with_parallelism(par),
                ));
            }
        }
        configs.push((
            format!("planned/costbased/w2/{tname}"),
            ExecConfig::cost_based(schema)
                .with_mode(ExecMode::Indexed)
                .with_planner(PlannerMode::cost_based(2))
                .with_parallelism(par),
        ));
        // Forced materialization: every divisible / min-max call site serves
        // from the delta-patched answer store.  The generated worlds are too
        // short for the cost model to pick materialization on its own, so
        // the conformance rows force it to prove behaviour neutrality.
        configs.push((
            format!("planned/materialized/{tname}"),
            ExecConfig::cost_based(schema)
                .with_mode(ExecMode::Indexed)
                .with_planner(PlannerMode::ForceMaterialized)
                .with_parallelism(par),
        ));
    }
    // Register-bytecode VM entries: a representative diagonal through
    // policy × backend × threads rather than the full product — the VM
    // shares the index layer with the plan interpreter, so the cross
    // product above already sweeps those knobs exhaustively.
    let compiled = |policy, backend, par| {
        ExecConfig::indexed(schema)
            .with_mode(ExecMode::Compiled)
            .with_policy(policy)
            .with_backend(backend)
            .with_parallelism(par)
    };
    for (tname, par) in threads {
        configs.push((
            format!("compiled/rebuild/layered/{tname}"),
            compiled(
                MaintenancePolicy::RebuildEachTick,
                RebuildBackend::LayeredTree,
                par,
            ),
        ));
    }
    configs.push((
        "compiled/incremental/layered/serial".to_string(),
        compiled(
            MaintenancePolicy::Incremental,
            RebuildBackend::LayeredTree,
            Parallelism::Off,
        ),
    ));
    configs.push((
        "compiled/adaptive/quadtree/4t".to_string(),
        compiled(
            MaintenancePolicy::adaptive(),
            RebuildBackend::QuadTree,
            Parallelism::Threads(4),
        ),
    ));
    for (tname, par) in [
        ("serial", Parallelism::Off),
        ("4t", Parallelism::Threads(4)),
    ] {
        configs.push((
            format!("compiled/costbased/w2/{tname}"),
            ExecConfig::cost_based(schema)
                .with_mode(ExecMode::Compiled)
                .with_planner(PlannerMode::cost_based(2))
                .with_parallelism(par),
        ));
    }
    // The VM shares `TickIndexes` with the plan interpreter, so the
    // materialized serve/miss/write-back path is the same code — the
    // compiled rows prove the bytecode probe sites route through it.
    for (tname, par) in threads {
        configs.push((
            format!("compiled/materialized/{tname}"),
            ExecConfig::cost_based(schema)
                .with_mode(ExecMode::Compiled)
                .with_planner(PlannerMode::ForceMaterialized)
                .with_parallelism(par),
        ));
    }
    configs
}

/// Deterministic split-mix-64 generator: small, fast, and — unlike any
/// `rand` engine — guaranteed stable across toolchain updates, which keeps
/// checked-in failing seeds reproducible forever.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`0` when the bound is zero).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in the inclusive range.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi.saturating_sub(lo) + 1)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'s, T>(&mut self, items: &'s [T]) -> &'s T {
        &items[self.below(items.len())]
    }

    /// Derive an independent stream for a sub-generator.
    pub fn fork(&mut self, salt: u64) -> TestRng {
        TestRng::new(self.next_u64() ^ salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = TestRng::new(43);
        assert_ne!(xs[0], c.next_u64());
        // below/in_range stay in bounds.
        let mut r = TestRng::new(7);
        for _ in 0..200 {
            assert!(r.below(10) < 10);
            let v = r.in_range(3, 6);
            assert!((3..=6).contains(&v));
            let f = r.float_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn forks_are_independent_streams() {
        let mut base = TestRng::new(1);
        let mut f1 = base.fork(10);
        let mut f2 = base.fork(10);
        // Two forks taken sequentially differ (the parent advanced).
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}
