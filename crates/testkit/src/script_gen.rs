//! Seeded generation of random-but-well-typed SGL scripts.
//!
//! Scripts are built from typed building blocks so that every output passes
//! the `lang` type checker against the battle schema and registry *by
//! construction*: aggregate calls carry the right arity, record-valued
//! results (`centroid.x`, `nearest.key`) are only accessed through fields
//! that exist, arithmetic stays scalar, `mod` divisors are positive and
//! literals are non-negative (so the pretty-printed source re-parses to the
//! identical AST — `-3` would come back as `Neg(3)`).
//!
//! [`generate_script`] returns the AST; [`script_source`] pretty-prints it.
//! The generator *asserts* the parser round trip (`parse(pretty(ast)) ==
//! ast`) and the type check on every script it hands out, so a conformance
//! run doubles as a parser/printer property sweep.

use sgl_battle::{battle_registry, battle_schema};
use sgl_core::lang::ast::{Action, AggCall, BinOp, CmpOp, Cond, FunctionDef, Script, Term};
use sgl_core::lang::normalize::normalize;
use sgl_core::lang::parse_script;
use sgl_core::lang::pretty::script_to_string;
use sgl_core::lang::typecheck::check_script;

use crate::TestRng;

/// Aggregates of the battle registry whose result coerces to a scalar.
const SCALAR_AGGS: [&str; 5] = [
    "CountEnemiesInRange",
    "CountAlliesInRange",
    "EnemyStrengthInRange",
    "MissingAllyHealthInRange",
    "WeakestEnemyHealth",
];

/// Aggregates returning an `{x, y}` record.
const VEC_AGGS: [&str; 4] = [
    "CentroidOfEnemies",
    "CentroidOfAllies",
    "CentroidOfAllyKnights",
    "AllySpreadInRange",
];

/// Numeric unit attributes safe to read in generated terms.
const UNIT_ATTRS: [&str; 6] = ["posx", "posy", "health", "cooldown", "morale", "sight"];

/// Knobs of the script generator.
#[derive(Debug, Clone, Copy)]
pub struct ScriptGenConfig {
    /// Maximum number of top-level `let` bindings (at least 1 is generated).
    pub max_lets: usize,
    /// Maximum nesting depth of the `if` tree.
    pub max_depth: usize,
}

impl Default for ScriptGenConfig {
    fn default() -> Self {
        ScriptGenConfig {
            max_lets: 4,
            max_depth: 3,
        }
    }
}

/// What a `let`-bound variable holds, tracked so later terms only use it in
/// well-typed positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarKind {
    /// Single scalar (count, sum, min — single-output records coerce).
    Scalar,
    /// `{x, y}` record (centroids, spreads).
    Vec2,
    /// `{key, posx, posy}` record (`getNearestEnemy`).
    Nearest,
}

struct Ctx {
    vars: Vec<(String, VarKind)>,
    has_helper: bool,
}

impl Ctx {
    fn of(&self, kind: VarKind) -> Vec<&str> {
        self.vars
            .iter()
            .filter(|(_, k)| *k == kind)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Generate one well-typed script from the seed.  Panics (with the seed in
/// the message) if the generated script ever fails its own invariants —
/// parser round trip and type check — which would be a testkit bug.
pub fn generate_script(seed: u64, config: ScriptGenConfig) -> Script {
    let mut rng = TestRng::new(seed ^ 0x5C21_97F0);
    let mut ctx = Ctx {
        vars: Vec::new(),
        has_helper: rng.chance(1, 4),
    };

    // Optional helper function, exercising the inliner.
    let functions = if ctx.has_helper {
        vec![FunctionDef {
            name: "Reposition".into(),
            params: vec!["u".into(), "d".into()],
            body: Action::Perform {
                name: "MoveInDirection".into(),
                args: vec![
                    Term::name("u"),
                    Term::bin(BinOp::Add, Term::unit("posx"), Term::name("d")),
                    Term::unit("posy"),
                ],
            },
        }]
    } else {
        Vec::new()
    };

    // Top-level lets binding aggregate results.
    let let_count = rng.in_range(1, config.max_lets.max(1));
    let mut lets: Vec<(String, Term)> = Vec::new();
    for i in 0..let_count {
        let roll = rng.below(10);
        let (name, kind, term) = if roll < 4 {
            let agg = *rng.pick(&SCALAR_AGGS);
            (
                format!("s{i}"),
                VarKind::Scalar,
                Term::Agg(AggCall {
                    name: agg.into(),
                    args: vec![Term::name("u"), range_term(&mut rng)],
                }),
            )
        } else if roll < 8 {
            let agg = *rng.pick(&VEC_AGGS);
            let call = Term::Agg(AggCall {
                name: agg.into(),
                args: vec![Term::name("u"), range_term(&mut rng)],
            });
            // Half the vector lets subtract the centroid from the unit's own
            // position — the Figure 3 `away_vector` shape, which forces the
            // normalizer to hoist the nested aggregate.
            let term = if rng.chance(1, 2) {
                Term::bin(
                    BinOp::Sub,
                    Term::Tuple(vec![Term::unit("posx"), Term::unit("posy")]),
                    call,
                )
            } else {
                call
            };
            (format!("v{i}"), VarKind::Vec2, term)
        } else {
            (
                format!("n{i}"),
                VarKind::Nearest,
                Term::Agg(AggCall {
                    name: "getNearestEnemy".into(),
                    args: vec![Term::name("u")],
                }),
            )
        };
        ctx.vars.push((name.clone(), kind));
        lets.push((name, term));
    }

    let body = gen_body(&mut rng, &ctx, config.max_depth);
    let mut main_body = body;
    for (name, term) in lets.into_iter().rev() {
        main_body = Action::Let {
            name,
            term,
            body: Box::new(main_body),
        };
    }
    let script = Script {
        functions,
        main: FunctionDef {
            name: "main".into(),
            params: vec!["u".into()],
            body: main_body,
        },
    };
    assert_invariants(&script, seed);
    script
}

/// Pretty-print a generated script as SGL source (what the conformance
/// harness feeds to `GameBuilder`, re-entering through the parser).
pub fn script_source(script: &Script) -> String {
    script_to_string(script)
}

/// The generator's own invariants: the pretty-printed source re-parses to
/// the same AST and the script type-checks against the battle world.
fn assert_invariants(script: &Script, seed: u64) {
    let printed = script_to_string(script);
    let reparsed = parse_script(&printed).unwrap_or_else(|e| {
        panic!("testkit bug: generated script (seed {seed}) does not re-parse: {e}\n{printed}")
    });
    assert_eq!(
        *script, reparsed,
        "testkit bug: parser round trip changed the AST for seed {seed}:\n{printed}"
    );
    let registry = battle_registry();
    let schema = battle_schema();
    let normal = normalize(script, &registry).unwrap_or_else(|e| {
        panic!("testkit bug: generated script (seed {seed}) does not normalize: {e}\n{printed}")
    });
    check_script(&normal, &schema, &registry).unwrap_or_else(|e| {
        panic!("testkit bug: generated script (seed {seed}) is ill-typed: {e}\n{printed}")
    });
}

/// A range argument for the `...InRange` aggregates.
fn range_term(rng: &mut TestRng) -> Term {
    match rng.below(5) {
        0 => Term::unit("sight"),
        1 => Term::unit("range"),
        2 => Term::float(*rng.pick(&[4.5, 7.5, 10.5, 15.5])),
        _ => Term::int(rng.in_range(2, 28) as i64),
    }
}

fn gen_body(rng: &mut TestRng, ctx: &Ctx, depth: usize) -> Action {
    if depth > 0 && rng.chance(7, 10) {
        let cond = gen_cond(rng, ctx);
        let then = Box::new(gen_body(rng, ctx, depth - 1));
        let els = if rng.chance(2, 3) {
            Some(Box::new(gen_body(rng, ctx, depth - 1)))
        } else {
            None
        };
        return Action::If { cond, then, els };
    }
    // Leaf: one or two performs (their effects combine by ⊕), rarely nothing.
    if rng.chance(1, 12) {
        return Action::Nop;
    }
    let count = rng.in_range(1, 2);
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        items.push(gen_perform(rng, ctx));
    }
    if items.len() == 1 {
        items.pop().expect("one item")
    } else {
        Action::Seq(items)
    }
}

fn gen_cond(rng: &mut TestRng, ctx: &Ctx) -> Cond {
    let cmp = |rng: &mut TestRng, ctx: &Ctx| {
        let op = *rng.pick(&[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]);
        Cond::cmp(op, scalar_expr(rng, ctx, 1), scalar_expr(rng, ctx, 0))
    };
    match rng.below(8) {
        0 => Cond::and(cmp(rng, ctx), cmp(rng, ctx)),
        1 => Cond::or(cmp(rng, ctx), cmp(rng, ctx)),
        2 => Cond::not(cmp(rng, ctx)),
        _ => cmp(rng, ctx),
    }
}

/// A scalar-valued term over the variables in scope.
// clippy::explicit_auto_deref's suggestion (`rng.pick(&scalars)` bare) does
// not compile here: the expected `&str` drives inference to `T = str` before
// the `&&str → &str` coercion gets a chance.
#[allow(clippy::explicit_auto_deref)]
fn scalar_expr(rng: &mut TestRng, ctx: &Ctx, depth: usize) -> Term {
    let scalars = ctx.of(VarKind::Scalar);
    let vecs = ctx.of(VarKind::Vec2);
    let nearests = ctx.of(VarKind::Nearest);
    // Rolls 0–2 fall through to the unit-attribute arm when no variable of
    // that kind is in scope (the wildcard arm also catches them), so every
    // roll produces a term in exactly one draw — checked-in seeds depend on
    // this RNG consumption pattern staying stable.
    let atom = |rng: &mut TestRng| -> Term {
        match rng.below(6) {
            0 if !scalars.is_empty() => Term::name(*rng.pick(&scalars)),
            1 if !vecs.is_empty() => {
                let field = if rng.chance(1, 2) { "x" } else { "y" };
                Term::Field(Box::new(Term::name(*rng.pick(&vecs))), field.into())
            }
            2 if !nearests.is_empty() => {
                let field = *rng.pick(&["posx", "posy", "key"]);
                Term::Field(Box::new(Term::name(*rng.pick(&nearests))), field.into())
            }
            3 => {
                // Deterministic randomness: Random(i) mod k, k ≥ 2.
                Term::bin(
                    BinOp::Mod,
                    Term::Random(Box::new(Term::int(rng.in_range(1, 3) as i64))),
                    Term::int(rng.in_range(2, 5) as i64),
                )
            }
            4 => Term::int(rng.in_range(0, 20) as i64),
            _ => Term::unit(*rng.pick(&UNIT_ATTRS)),
        }
    };
    if depth == 0 || rng.chance(1, 2) {
        return atom(rng);
    }
    match rng.below(4) {
        0 => Term::bin(BinOp::Mul, atom(rng), Term::int(rng.in_range(0, 3) as i64)),
        1 => Term::Abs(Box::new(Term::bin(BinOp::Sub, atom(rng), atom(rng)))),
        2 => Term::bin(BinOp::Sub, atom(rng), scalar_expr(rng, ctx, depth - 1)),
        _ => Term::bin(BinOp::Add, atom(rng), scalar_expr(rng, ctx, depth - 1)),
    }
}

/// A `perform` statement over the battle actions.
#[allow(clippy::explicit_auto_deref)] // see scalar_expr
fn gen_perform(rng: &mut TestRng, ctx: &Ctx) -> Action {
    let nearests = ctx.of(VarKind::Nearest);
    let target_key = |rng: &mut TestRng| -> Term {
        if nearests.is_empty() {
            // Inline nearest-enemy lookup; the normalizer hoists it.
            Term::Field(
                Box::new(Term::Agg(AggCall {
                    name: "getNearestEnemy".into(),
                    args: vec![Term::name("u")],
                })),
                "key".into(),
            )
        } else {
            Term::Field(Box::new(Term::name(*rng.pick(&nearests))), "key".into())
        }
    };
    match rng.below(10) {
        0..=3 => {
            // Move relative to the unit's own position so the script keeps
            // the battle in motion.
            let dx = scalar_expr(rng, ctx, 1);
            let dy = scalar_expr(rng, ctx, 1);
            Action::Perform {
                name: "MoveInDirection".into(),
                args: vec![
                    Term::name("u"),
                    Term::bin(BinOp::Add, Term::unit("posx"), dx),
                    Term::bin(BinOp::Sub, Term::unit("posy"), dy),
                ],
            }
        }
        4..=5 => Action::Perform {
            name: "FireAt".into(),
            args: vec![Term::name("u"), target_key(rng)],
        },
        6..=7 => Action::Perform {
            name: "Strike".into(),
            args: vec![Term::name("u"), target_key(rng)],
        },
        8 => Action::Perform {
            name: "Heal".into(),
            args: vec![Term::name("u")],
        },
        _ if ctx.has_helper => Action::Perform {
            name: "Reposition".into(),
            args: vec![Term::name("u"), Term::int(rng.in_range(0, 9) as i64)],
        },
        _ => Action::Perform {
            name: "MoveInDirection".into(),
            args: vec![
                Term::name("u"),
                Term::unit("posx"),
                Term::bin(BinOp::Add, Term::unit("posy"), Term::int(1)),
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scripts_hold_their_invariants_across_seeds() {
        // assert_invariants runs inside generate_script; a panic here is a
        // generator bug.
        for seed in 0..60 {
            let script = generate_script(seed, ScriptGenConfig::default());
            assert_eq!(script.main.params, vec!["u".to_string()]);
            assert!(script.main.body.count_performs() <= 32);
            let src = script_source(&script);
            assert!(src.contains("main(u)"));
        }
    }

    /// The lang round-trip property, swept over the generator corpus (no
    /// proptest dependency — the corpus is the seeded property source):
    /// pretty-print → re-parse → normalize must equal the original
    /// normalized AST, so the printed reproducer in a conformance failure
    /// dump denotes exactly the script that failed.
    #[test]
    fn corpus_round_trips_through_print_parse_normalize() {
        let registry = battle_registry();
        for seed in 0..200 {
            let script = generate_script(seed, ScriptGenConfig::default());
            let printed = script_source(&script);
            let reparsed = parse_script(&printed)
                .unwrap_or_else(|e| panic!("seed {seed} does not re-parse: {e}\n{printed}"));
            assert_eq!(script, reparsed, "seed {seed} AST round trip:\n{printed}");
            let original = normalize(&script, &registry)
                .unwrap_or_else(|e| panic!("seed {seed} does not normalize: {e}"));
            let roundtripped = normalize(&reparsed, &registry)
                .unwrap_or_else(|e| panic!("seed {seed} reparse does not normalize: {e}"));
            assert_eq!(
                original, roundtripped,
                "seed {seed} normalized forms diverge:\n{printed}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_script(9, ScriptGenConfig::default());
        let b = generate_script(9, ScriptGenConfig::default());
        assert_eq!(a, b);
        let c = generate_script(10, ScriptGenConfig::default());
        assert_ne!(script_source(&a), script_source(&c));
    }

    #[test]
    fn corpus_covers_the_grammar() {
        // Across a modest corpus every structural feature should appear.
        let mut saw_helper = false;
        let mut saw_vec_let = false;
        let mut saw_nearest = false;
        let mut saw_seq = false;
        for seed in 0..80 {
            let script = generate_script(seed, ScriptGenConfig::default());
            let src = script_source(&script);
            saw_helper |= src.contains("function Reposition");
            saw_vec_let |= src.contains("(let v");
            saw_nearest |= src.contains("getNearestEnemy");
            saw_seq |= script.main.body.count_performs() >= 2;
        }
        assert!(saw_helper && saw_vec_let && saw_nearest && saw_seq);
    }
}
