//! One differential conformance case: a generated script over a generated
//! world, runnable under any executor configuration.

use sgl_battle::{battle_mechanics, battle_registry};
use sgl_core::engine::{Simulation, StateDigest, UnitSelector};
use sgl_core::env::EnvTable;
use sgl_core::exec::ExecConfig;
use sgl_core::GameBuilder;

use crate::script_gen::{generate_script, script_source, ScriptGenConfig};
use crate::world_gen::{generate_world, GeneratedWorld, WorldLayout, WorldSpec};
use crate::TestRng;

/// A `(script, world, seed)` triple of the conformance sweep.  Everything is
/// derived from `seed`, so a failing case reproduces from the seed alone.
#[derive(Debug, Clone)]
pub struct ConformanceCase {
    /// The driving seed.
    pub seed: u64,
    /// Pretty-printed SGL source of the generated script (the harness
    /// re-enters through the parser on every build).
    pub script_source: String,
    /// The generated world.
    pub world: GeneratedWorld,
    /// Ticks to simulate and compare.
    pub ticks: usize,
    /// Whether dead units respawn.
    pub resurrect: bool,
}

impl ConformanceCase {
    /// Generate the case for a seed with the default size profile (worlds of
    /// 3–80 units, 4–6 ticks — sized for the tier-1 budget; the generators
    /// themselves support up to 2000 units for larger sweeps).
    pub fn generate(seed: u64) -> ConformanceCase {
        ConformanceCase::generate_sized(seed, 3, 80)
    }

    /// Generate the case for a seed with an explicit world-size range.
    pub fn generate_sized(seed: u64, min_units: usize, max_units: usize) -> ConformanceCase {
        let mut rng = TestRng::new(seed ^ 0xCA5E);
        let script = generate_script(seed, ScriptGenConfig::default());
        let layout = *rng.pick(&WorldLayout::ALL);
        let units = rng.in_range(min_units.max(1), max_units.max(min_units.max(1)));
        let world = generate_world(WorldSpec {
            seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(17),
            units,
            layout,
            wounded: rng.chance(1, 3),
            single_player: rng.chance(1, 12),
        });
        ConformanceCase {
            seed,
            script_source: script_source(&script),
            world,
            ticks: rng.in_range(4, 6),
            resurrect: rng.chance(2, 3),
        }
    }

    /// Build a simulation of this case under the given configuration.
    pub fn build(&self, config: ExecConfig) -> Simulation {
        self.build_on(self.world.table.clone(), config)
    }

    /// Build a simulation over an explicit environment (used by the shrinker
    /// to re-run the case on reduced worlds).  The table must use the battle
    /// schema.
    pub fn build_on(&self, table: EnvTable, config: ExecConfig) -> Simulation {
        let registry = battle_registry();
        let mechanics = battle_mechanics(&self.world.schema, self.world.world_side, self.resurrect);
        GameBuilder::new(self.world.schema.clone(), registry, mechanics)
            .exec_config(config)
            .seed(self.seed)
            .script("generated", &self.script_source, UnitSelector::All)
            .build(table)
            .expect("generated scripts compile")
    }

    /// Per-tick digests of this case under a configuration.
    pub fn digests(&self, config: ExecConfig) -> Vec<StateDigest> {
        self.digests_on(self.world.table.clone(), config)
    }

    /// Per-tick digests over an explicit starting environment.
    pub fn digests_on(&self, table: EnvTable, config: ExecConfig) -> Vec<StateDigest> {
        let mut sim = self.build_on(table, config);
        (0..self.ticks)
            .map(|tick| {
                sim.step().unwrap_or_else(|e| {
                    panic!(
                        "seed {} tick {tick}: execution failed under {config:?}: {e}\n\
                         script:\n{}",
                        self.seed, self.script_source
                    )
                });
                sim.digest()
            })
            .collect()
    }

    /// One-line description for progress output and reproducer dumps.
    pub fn describe(&self) -> String {
        format!(
            "seed {} · {} units · {} layout · {} ticks · resurrect {}",
            self.seed,
            self.world.table.len(),
            self.world.spec.layout.name(),
            self.ticks,
            self.resurrect
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_build_and_run_under_oracle_and_indexed() {
        for seed in 0..4 {
            let case = ConformanceCase::generate_sized(seed, 3, 24);
            let oracle = case.digests(ExecConfig::oracle(&case.world.schema));
            let indexed = case.digests(ExecConfig::indexed(&case.world.schema));
            assert_eq!(oracle.len(), case.ticks);
            assert_eq!(
                oracle,
                indexed,
                "{}\nscript:\n{}",
                case.describe(),
                case.script_source
            );
        }
    }

    #[test]
    fn case_generation_is_deterministic() {
        let a = ConformanceCase::generate(3);
        let b = ConformanceCase::generate(3);
        assert_eq!(a.script_source, b.script_source);
        assert_eq!(a.world.spec, b.world.spec);
        assert_eq!(a.ticks, b.ticks);
    }
}
