//! Seeded generation of initial environments with adversarial layouts.
//!
//! Index structures earn their keep on benign uniform worlds; they *break*
//! on the degenerate ones — every point on one line (kD-tree splits
//! collapse), exactly duplicated positions (tie-breaking in sorts and
//! sweeps), coordinates far from the origin (float cancellation in
//! sum-of-squares accumulators).  The world generator therefore samples
//! layouts rather than just positions.

use std::sync::Arc;

use sgl_battle::{battle_schema, UnitKind};
use sgl_core::env::{EnvTable, Schema, TupleBuilder};

use crate::TestRng;

/// Spatial arrangement of a generated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorldLayout {
    /// Uniform random positions over the whole world (the §6 setup).
    Uniform,
    /// A few dense clusters (formation-like hot spots).
    Clustered,
    /// Every unit exactly on one line — degenerate for spatial splits.
    Collinear,
    /// Units stacked on a handful of *exactly* duplicated positions.
    Stacked,
    /// Extreme-but-finite coordinates: a large world with units pressed
    /// into its corners and edges.
    Extreme,
}

impl WorldLayout {
    /// All layouts, for sweeps.
    pub const ALL: [WorldLayout; 5] = [
        WorldLayout::Uniform,
        WorldLayout::Clustered,
        WorldLayout::Collinear,
        WorldLayout::Stacked,
        WorldLayout::Extreme,
    ];

    /// Short name for reproducer dumps.
    pub fn name(self) -> &'static str {
        match self {
            WorldLayout::Uniform => "uniform",
            WorldLayout::Clustered => "clustered",
            WorldLayout::Collinear => "collinear",
            WorldLayout::Stacked => "stacked",
            WorldLayout::Extreme => "extreme",
        }
    }
}

/// Parameters of one generated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldSpec {
    /// Placement seed.
    pub seed: u64,
    /// Unit count (the generator supports 1..=2000).
    pub units: usize,
    /// Spatial arrangement.
    pub layout: WorldLayout,
    /// Start some units below full health.
    pub wounded: bool,
    /// Degenerate single-player world (every enemy aggregate is empty).
    pub single_player: bool,
}

/// A generated initial environment over the battle schema.
#[derive(Debug, Clone)]
pub struct GeneratedWorld {
    /// Shared battle schema.
    pub schema: Arc<Schema>,
    /// The initial environment.
    pub table: EnvTable,
    /// World side length (movement clamps to `[0, side]²`).
    pub world_side: f64,
    /// The spec this world was generated from.
    pub spec: WorldSpec,
}

/// Generate a world from its spec (a pure function of the spec).
pub fn generate_world(spec: WorldSpec) -> GeneratedWorld {
    let units = spec.units.clamp(1, 2000);
    let mut rng = TestRng::new(spec.seed ^ 0x0B0D_1E50);
    let schema = battle_schema().into_shared();
    let mut table = EnvTable::new(Arc::clone(&schema));

    let side: f64 = match spec.layout {
        WorldLayout::Extreme => 2000.0,
        WorldLayout::Stacked => 48.0,
        _ => ((units as f64) / 0.01).sqrt().max(24.0),
    };

    // Pre-computed anchors for the layouts that need them.
    let cluster_centres: Vec<(f64, f64)> = (0..(1 + units / 20))
        .map(|_| (rng.float_in(0.1, 0.9) * side, rng.float_in(0.1, 0.9) * side))
        .collect();
    let posts: Vec<(f64, f64)> = (0..(1 + units / 8).min(12))
        .map(|_| (rng.float_in(0.1, 0.9) * side, rng.float_in(0.1, 0.9) * side))
        .collect();
    // Collinear worlds draw one of three line orientations.
    let line_kind = rng.below(3);
    let line_offset = rng.float_in(0.25, 0.75) * side;

    for i in 0..units {
        let (x, y) = match spec.layout {
            WorldLayout::Uniform => (rng.float_in(0.0, side), rng.float_in(0.0, side)),
            WorldLayout::Clustered => {
                let (cx, cy) = *rng.pick(&cluster_centres);
                // Triangular noise ≈ gaussian cluster.
                let dx = rng.float_in(-3.0, 3.0) + rng.float_in(-3.0, 3.0);
                let dy = rng.float_in(-3.0, 3.0) + rng.float_in(-3.0, 3.0);
                ((cx + dx).clamp(0.0, side), (cy + dy).clamp(0.0, side))
            }
            WorldLayout::Collinear => {
                let t = rng.float_in(0.0, side);
                match line_kind {
                    0 => (t, line_offset), // horizontal
                    1 => (line_offset, t), // vertical
                    _ => (t, t),           // diagonal
                }
            }
            WorldLayout::Stacked => *rng.pick(&posts),
            WorldLayout::Extreme => {
                // Units pressed onto corners and edges of a large world.
                match rng.below(4) {
                    0 => {
                        let cx = if rng.chance(1, 2) { 0.25 } else { side - 0.25 };
                        let cy = if rng.chance(1, 2) { 0.25 } else { side - 0.25 };
                        (
                            cx + rng.float_in(-0.25, 0.25),
                            cy + rng.float_in(-0.25, 0.25),
                        )
                    }
                    1 => (rng.float_in(0.0, side), side - rng.float_in(0.0, 0.5)),
                    2 => (side - rng.float_in(0.0, 0.5), rng.float_in(0.0, side)),
                    _ => (rng.float_in(0.0, side), rng.float_in(0.0, side)),
                }
            }
        };

        let player = if spec.single_player {
            0
        } else {
            (i % 2) as i64
        };
        let kind = match rng.below(6) {
            0..=2 => UnitKind::Knight,
            3 | 4 => UnitKind::Archer,
            _ => UnitKind::Healer,
        };
        let stats = kind.stats();
        let health = if spec.wounded && rng.chance(1, 2) {
            1 + (rng.below(stats.max_health as usize) as i64)
        } else {
            stats.max_health
        };
        let tuple = TupleBuilder::new(&schema)
            .set("key", i as i64)
            .expect("key")
            .set("player", player)
            .expect("player")
            .set("unittype", kind.code())
            .expect("unittype")
            .set("posx", x)
            .expect("posx")
            .set("posy", y)
            .expect("posy")
            .set("health", health)
            .expect("health")
            .set("max_health", stats.max_health)
            .expect("max_health")
            .set("range", stats.range)
            .expect("range")
            .set("sight", stats.sight)
            .expect("sight")
            .set("morale", stats.morale)
            .expect("morale")
            .set("armor", stats.armor)
            .expect("armor")
            .set("strength", stats.strength)
            .expect("strength")
            .build();
        table.insert(tuple).expect("generated keys are unique");
    }

    GeneratedWorld {
        schema,
        table,
        world_side: side,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(layout: WorldLayout, units: usize) -> WorldSpec {
        WorldSpec {
            seed: 5,
            units,
            layout,
            wounded: false,
            single_player: false,
        }
    }

    #[test]
    fn all_layouts_generate_in_bounds() {
        for layout in WorldLayout::ALL {
            let world = generate_world(spec(layout, 60));
            assert_eq!(world.table.len(), 60, "{}", layout.name());
            let posx = world.schema.attr_id("posx").unwrap();
            let posy = world.schema.attr_id("posy").unwrap();
            for (_, row) in world.table.iter() {
                let x = row.get_f64(posx).unwrap();
                let y = row.get_f64(posy).unwrap();
                assert!(x.is_finite() && y.is_finite());
                assert!(
                    (0.0..=world.world_side).contains(&x),
                    "{}: x={x}",
                    layout.name()
                );
                assert!(
                    (0.0..=world.world_side).contains(&y),
                    "{}: y={y}",
                    layout.name()
                );
            }
        }
    }

    #[test]
    fn degenerate_layouts_are_actually_degenerate() {
        let world = generate_world(spec(WorldLayout::Collinear, 40));
        let posx = world.schema.attr_id("posx").unwrap();
        let posy = world.schema.attr_id("posy").unwrap();
        let points: Vec<(f64, f64)> = world
            .table
            .iter()
            .map(|(_, r)| (r.get_f64(posx).unwrap(), r.get_f64(posy).unwrap()))
            .collect();
        // All points satisfy a single linear relation.
        let (x0, y0) = points[0];
        let (x1, y1) = points
            .iter()
            .copied()
            .find(|(x, y)| (x - x0).abs() > 1e-9 || (y - y0).abs() > 1e-9)
            .unwrap();
        for (x, y) in &points {
            let cross = (x1 - x0) * (y - y0) - (y1 - y0) * (x - x0);
            assert!(cross.abs() < 1e-6, "({x}, {y}) off the line");
        }

        let stacked = generate_world(spec(WorldLayout::Stacked, 50));
        let mut distinct: Vec<(u64, u64)> = stacked
            .table
            .iter()
            .map(|(_, r)| {
                (
                    r.get_f64(posx).unwrap().to_bits(),
                    r.get_f64(posy).unwrap().to_bits(),
                )
            })
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() < 15,
            "stacked layout should duplicate positions exactly ({} distinct)",
            distinct.len()
        );
    }

    #[test]
    fn extreme_layout_is_large_and_cornered() {
        let world = generate_world(spec(WorldLayout::Extreme, 80));
        assert!(world.world_side >= 1000.0);
    }

    #[test]
    fn unit_count_is_clamped_and_single_player_respected() {
        let world = generate_world(WorldSpec {
            seed: 1,
            units: 0,
            layout: WorldLayout::Uniform,
            wounded: true,
            single_player: true,
        });
        assert_eq!(world.table.len(), 1);
        let player = world.schema.attr_id("player").unwrap();
        for (_, row) in world.table.iter() {
            assert_eq!(row.get_i64(player).unwrap(), 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_world(spec(WorldLayout::Clustered, 30));
        let b = generate_world(spec(WorldLayout::Clustered, 30));
        let posx = a.schema.attr_id("posx").unwrap();
        for ((_, ra), (_, rb)) in a.table.iter().zip(b.table.iter()) {
            assert_eq!(ra.get_f64(posx).unwrap(), rb.get_f64(posx).unwrap());
        }
    }
}
