//! Long-horizon soak harness: thousands of ticks, population churn, seeded
//! checkpoint/resume, cross-tick invariants.
//!
//! The conformance sweep proves configurations agree over 4–6 ticks; nothing
//! there stresses what the paper's architecture promises at *scale* — that a
//! world can run for hours, be checkpointed at arbitrary points, and resume
//! (possibly on a different configuration) without the trajectory drifting.
//! This harness drives one generated `(script, world)` case for a long
//! horizon and checks, every tick:
//!
//! * **population accounting** — the tick report's population equals the
//!   table's row count and the digest's population; with resurrection on,
//!   the population is constant, otherwise it never grows;
//! * **stats monotonicity** — the engine's [`RuntimeStats`] tick counter
//!   advances by exactly one per tick and the cumulative served-backend
//!   counters never decrease;
//! * **digest stability across checkpoints** — at seeded intervals the
//!   primary simulation is checkpointed and resumed into a *shadow*
//!   simulation under a different (seeded) lattice configuration; the shadow
//!   must reproduce the primary's digests tick for tick until the next
//!   checkpoint, where it is discarded and a fresh one is resumed.
//!
//! A violation aborts the run with a [`SoakFailure`] carrying a complete
//! reproducer dump (seed, configurations, script source, world, the trailing
//! digest window) — the CI soak job uploads it as an artifact.
//!
//! [`RuntimeStats`]: sgl_core::exec::RuntimeStats

use std::fmt::Write as _;

use sgl_core::engine::{compare_traces, Simulation, TraceComparison, TraceRecorder};

use crate::{config_lattice, ConformanceCase, TestRng};

/// Parameters of one soak run.  Everything else (world, script, primary and
/// shadow configurations, checkpoint schedule) derives from `seed`.
#[derive(Debug, Clone, Copy)]
pub struct SoakSpec {
    /// Master seed of the run.
    pub seed: u64,
    /// Total ticks to simulate on the primary simulation.
    pub ticks: usize,
    /// World size range (inclusive) handed to the world generator.
    pub min_units: usize,
    /// See [`SoakSpec::min_units`].
    pub max_units: usize,
}

impl SoakSpec {
    /// A spec with the default world-size range (40–140 units — big enough
    /// for real index pressure, small enough for thousand-tick horizons).
    pub fn new(seed: u64, ticks: usize) -> SoakSpec {
        SoakSpec {
            seed,
            ticks,
            min_units: 40,
            max_units: 140,
        }
    }
}

/// Aggregate outcome of a successful soak run.
#[derive(Debug, Clone, Default)]
pub struct SoakReport {
    /// Ticks simulated on the primary.
    pub ticks: usize,
    /// Checkpoints taken (and shadows resumed).
    pub checkpoints: usize,
    /// Shadow ticks compared digest-for-digest against the primary.
    pub shadow_ticks: usize,
    /// Total deaths observed on the primary.
    pub deaths: usize,
    /// Population after the last tick.
    pub final_population: usize,
    /// Labels of the configurations exercised (primary first).
    pub configs: Vec<String>,
}

/// A violated invariant, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct SoakFailure {
    /// Master seed of the failing run.
    pub seed: u64,
    /// Tick at which the invariant broke.
    pub tick: usize,
    /// What broke.
    pub message: String,
    /// Complete reproducer dump (spec, configurations, script, world
    /// description, trailing digests).
    pub dump: String,
}

impl std::fmt::Display for SoakFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "soak seed {} failed at tick {}: {}",
            self.seed, self.tick, self.message
        )
    }
}

struct SoakRun {
    case: ConformanceCase,
    spec: SoakSpec,
    primary_label: String,
    shadow_label: String,
    recorder: TraceRecorder,
}

impl SoakRun {
    fn fail(&self, tick: usize, message: String) -> SoakFailure {
        let mut dump = String::new();
        let _ = writeln!(
            dump,
            "=== SOAK FAILURE ======================================="
        );
        let _ = writeln!(dump, "spec:      {:?}", self.spec);
        let _ = writeln!(dump, "case:      {}", self.case.describe());
        let _ = writeln!(dump, "primary:   {}", self.primary_label);
        let _ = writeln!(dump, "shadow:    {}", self.shadow_label);
        let _ = writeln!(dump, "tick:      {tick}");
        let _ = writeln!(dump, "violation: {message}");
        let _ = writeln!(dump, "trailing digests (primary):");
        let entries = self.recorder.entries();
        for e in entries.iter().skip(entries.len().saturating_sub(10)) {
            let _ = writeln!(
                dump,
                "  tick {:5}  {:016x}  pop {:4}  deaths {}",
                e.tick, e.digest.hash, e.digest.population, e.deaths
            );
        }
        let _ = writeln!(dump, "script:\n{}", self.case.script_source);
        let _ = writeln!(
            dump,
            "========================================================"
        );
        SoakFailure {
            seed: self.spec.seed,
            tick,
            message,
            dump,
        }
    }
}

/// Drive one soak run to completion (or to its first violated invariant).
pub fn run_soak(spec: &SoakSpec) -> Result<SoakReport, SoakFailure> {
    let mut rng = TestRng::new(spec.seed ^ 0x50AC);
    let mut case = ConformanceCase::generate_sized(spec.seed, spec.min_units, spec.max_units);
    case.ticks = spec.ticks;
    // Long horizons need churn that does not empty the world: bias strongly
    // towards resurrection (deaths then *move* units instead of removing
    // them); the no-resurrect shrinking-population mode still appears.
    case.resurrect = rng.chance(5, 6);

    let schema = case.world.schema.clone();
    let lattice = config_lattice(&schema);
    let primary_idx = rng.below(lattice.len());
    // The shadow resumes under a *different* configuration (wrapping pick),
    // so every checkpoint also exercises cross-config resume.
    let shadow_idx = (primary_idx + 1 + rng.below(lattice.len() - 1)) % lattice.len();
    let (primary_label, primary_config) = lattice[primary_idx].clone();
    let (shadow_label, shadow_config) = lattice[shadow_idx].clone();

    let mut run = SoakRun {
        case,
        spec: *spec,
        primary_label: primary_label.clone(),
        shadow_label: shadow_label.clone(),
        recorder: TraceRecorder::new(),
    };

    let mut primary = run.case.build(primary_config);
    let initial_population = primary.table().len();
    let mut shadow: Option<Simulation> = None;

    let mut report = SoakReport {
        configs: vec![primary_label, shadow_label],
        ..SoakReport::default()
    };
    let mut prev_population = initial_population;
    let mut prev_served: u64 = 0;
    // Seeded checkpoint schedule: intervals between 4 ticks and ~an eighth
    // of the horizon, re-drawn after every checkpoint.
    let max_interval = (spec.ticks / 8).clamp(4, 250);
    let mut next_checkpoint = rng.in_range(4, max_interval);

    for tick in 0..spec.ticks {
        let tick_report = primary
            .step()
            .map_err(|e| run.fail(tick, format!("primary step failed: {e}")))?;
        run.recorder
            .record(tick_report.tick, primary.table(), tick_report.deaths);
        report.ticks += 1;
        report.deaths += tick_report.deaths;
        report.final_population = tick_report.population;

        // Population accounting.
        let digest = primary.digest();
        if tick_report.population != primary.table().len()
            || digest.population != tick_report.population
        {
            return Err(run.fail(
                tick,
                format!(
                    "population accounting broke: report {} vs table {} vs digest {}",
                    tick_report.population,
                    primary.table().len(),
                    digest.population
                ),
            ));
        }
        if run.case.resurrect {
            if tick_report.population != initial_population {
                return Err(run.fail(
                    tick,
                    format!(
                        "resurrection must keep the population constant: \
                         {} vs initial {initial_population}",
                        tick_report.population
                    ),
                ));
            }
        } else if tick_report.population > prev_population {
            return Err(run.fail(
                tick,
                format!(
                    "population grew without resurrection: {} after {prev_population}",
                    tick_report.population
                ),
            ));
        }
        prev_population = tick_report.population;

        // Stats monotonicity.
        let stats = primary.runtime_stats();
        if stats.ticks != (tick as u64) + 1 {
            return Err(run.fail(
                tick,
                format!(
                    "RuntimeStats.ticks drifted: {} after {} ticks",
                    stats.ticks,
                    tick + 1
                ),
            ));
        }
        let served: u64 = stats
            .calls
            .values()
            .map(|s| s.served_total.iter().sum::<u64>())
            .sum();
        if served < prev_served {
            return Err(run.fail(
                tick,
                format!("cumulative served counters decreased: {served} < {prev_served}"),
            ));
        }
        prev_served = served;

        // Shadow lockstep: a previously resumed shadow must reproduce the
        // primary's trajectory digest for digest.
        if let Some(sh) = shadow.as_mut() {
            let shadow_report = sh
                .step()
                .map_err(|e| run.fail(tick, format!("shadow step failed: {e}")))?;
            if sh.digest() != digest {
                // Re-compare through the trace machinery so the failure
                // message carries both sides' digests, populations and
                // death counts.
                let mut primary_tail = TraceRecorder::new();
                primary_tail.record(tick as u64, primary.table(), tick_report.deaths);
                let mut shadow_tail = TraceRecorder::new();
                shadow_tail.record(tick as u64, sh.table(), shadow_report.deaths);
                let cmp = compare_traces(&primary_tail, &shadow_tail);
                debug_assert!(!matches!(cmp, TraceComparison::Identical));
                return Err(run.fail(
                    tick,
                    format!(
                        "resumed shadow ({}) diverged from primary ({}): {cmp}",
                        run.shadow_label, run.primary_label
                    ),
                ));
            }
            report.shadow_ticks += 1;
        }

        // Seeded checkpoint: serialize the primary, resume a fresh shadow
        // under the other configuration, and check the restored state is
        // digest-identical right away.
        next_checkpoint -= 1;
        if next_checkpoint == 0 && tick + 1 < spec.ticks {
            let bytes = primary.checkpoint().unwrap();
            let mut fresh = run.case.build(shadow_config);
            fresh
                .resume(&bytes, shadow_config)
                .map_err(|e| run.fail(tick, format!("resume failed: {e}")))?;
            if fresh.digest() != digest {
                return Err(run.fail(
                    tick,
                    format!(
                        "checkpoint round trip changed the digest: \
                         {:016x} vs {:016x}",
                        digest.hash,
                        fresh.digest().hash
                    ),
                ));
            }
            if fresh.current_tick() != (tick as u64) + 1 {
                return Err(run.fail(
                    tick,
                    format!(
                        "resumed tick counter {} != {}",
                        fresh.current_tick(),
                        tick + 1
                    ),
                ));
            }
            shadow = Some(fresh);
            report.checkpoints += 1;
            next_checkpoint = rng.in_range(4, max_interval);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_soak_runs_clean_and_checkpoints() {
        let report = run_soak(&SoakSpec {
            seed: 11,
            ticks: 40,
            min_units: 10,
            max_units: 30,
        })
        .unwrap_or_else(|f| panic!("{f}\n{}", f.dump));
        assert_eq!(report.ticks, 40);
        assert!(report.checkpoints >= 1, "{report:?}");
        assert!(report.shadow_ticks >= 1, "{report:?}");
        assert_eq!(report.configs.len(), 2);
        assert_ne!(report.configs[0], report.configs[1]);
    }

    #[test]
    fn soak_runs_are_deterministic() {
        let spec = SoakSpec {
            seed: 23,
            ticks: 24,
            min_units: 8,
            max_units: 20,
        };
        let a = run_soak(&spec).unwrap_or_else(|f| panic!("{}", f.dump));
        let b = run_soak(&spec).unwrap_or_else(|f| panic!("{}", f.dump));
        assert_eq!(a.checkpoints, b.checkpoints);
        assert_eq!(a.deaths, b.deaths);
        assert_eq!(a.final_population, b.final_population);
        assert_eq!(a.configs, b.configs);
    }

    #[test]
    fn failure_dumps_are_complete_reproducers() {
        let spec = SoakSpec::new(5, 10);
        let mut case = ConformanceCase::generate_sized(5, 10, 20);
        case.ticks = 10;
        let run = SoakRun {
            case,
            spec,
            primary_label: "planned/rebuild/layered/serial".into(),
            shadow_label: "naive/2t".into(),
            recorder: TraceRecorder::new(),
        };
        let failure = run.fail(7, "synthetic violation".into());
        assert_eq!(failure.tick, 7);
        for needle in [
            "SOAK FAILURE",
            "synthetic violation",
            "planned/rebuild/layered/serial",
            "naive/2t",
            "script:",
        ] {
            assert!(failure.dump.contains(needle), "missing {needle}");
        }
        assert!(failure.to_string().contains("tick 7"));
    }
}
