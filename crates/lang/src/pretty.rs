//! Pretty-printing of SGL syntax trees (used by `EXPLAIN` output, error
//! messages and the examples).

use std::fmt::Write as _;

use crate::ast::{Action, BinOp, CmpOp, Cond, Script, Term, VarRef};

/// Render a term as SGL source.
pub fn term_to_string(term: &Term) -> String {
    let mut s = String::new();
    write_term(&mut s, term);
    s
}

/// Render a condition as SGL source.
pub fn cond_to_string(cond: &Cond) -> String {
    let mut s = String::new();
    write_cond(&mut s, cond);
    s
}

/// Render an action with indentation.
pub fn action_to_string(action: &Action) -> String {
    let mut s = String::new();
    write_action(&mut s, action, 0);
    s
}

/// Render a whole script.
pub fn script_to_string(script: &Script) -> String {
    let mut s = String::new();
    for f in &script.functions {
        let _ = writeln!(s, "function {}({}) {{", f.name, f.params.join(", "));
        write_action(&mut s, &f.body, 1);
        let _ = writeln!(s, "}}");
    }
    let _ = writeln!(
        s,
        "{}({}) {{",
        script.main.name,
        script.main.params.join(", ")
    );
    write_action(&mut s, &script.main.body, 1);
    let _ = writeln!(s, "}}");
    s
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "mod",
    }
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Term::Var(VarRef::Unit(a)) => {
            let _ = write!(out, "u.{a}");
        }
        Term::Var(VarRef::Row(a)) => {
            let _ = write!(out, "e.{a}");
        }
        Term::Var(VarRef::Name(n)) => {
            let _ = write!(out, "{n}");
        }
        Term::Random(t) => {
            let _ = write!(out, "Random(");
            write_term(out, t);
            let _ = write!(out, ")");
        }
        Term::Agg(call) => {
            let _ = write!(out, "{}(", call.name);
            for (i, a) in call.args.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                write_term(out, a);
            }
            let _ = write!(out, ")");
        }
        Term::Bin { op, left, right } => {
            let _ = write!(out, "(");
            write_term(out, left);
            let _ = write!(out, " {} ", binop_str(*op));
            write_term(out, right);
            let _ = write!(out, ")");
        }
        Term::Neg(t) => {
            let _ = write!(out, "-");
            write_term(out, t);
        }
        Term::Abs(t) => {
            let _ = write!(out, "abs(");
            write_term(out, t);
            let _ = write!(out, ")");
        }
        Term::Sqrt(t) => {
            let _ = write!(out, "sqrt(");
            write_term(out, t);
            let _ = write!(out, ")");
        }
        Term::Field(t, f) => {
            write_term(out, t);
            let _ = write!(out, ".{f}");
        }
        Term::Tuple(items) => {
            let _ = write!(out, "(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                write_term(out, item);
            }
            let _ = write!(out, ")");
        }
    }
}

fn write_cond(out: &mut String, cond: &Cond) {
    match cond {
        Cond::Lit(b) => {
            let _ = write!(out, "{b}");
        }
        Cond::Cmp { op, left, right } => {
            write_term(out, left);
            let _ = write!(out, " {} ", cmpop_str(*op));
            write_term(out, right);
        }
        Cond::And(a, b) => {
            let _ = write!(out, "(");
            write_cond(out, a);
            let _ = write!(out, " and ");
            write_cond(out, b);
            let _ = write!(out, ")");
        }
        Cond::Or(a, b) => {
            let _ = write!(out, "(");
            write_cond(out, a);
            let _ = write!(out, " or ");
            write_cond(out, b);
            let _ = write!(out, ")");
        }
        Cond::Not(c) => {
            let _ = write!(out, "not (");
            write_cond(out, c);
            let _ = write!(out, ")");
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Does a branch need explicit `{ }` when printed in statement position?
///
/// * a `Seq` always does: the parser reads statements one at a time, so an
///   unbraced two-statement branch would leak its tail into the enclosing
///   sequence (and out of a `let`'s scope);
/// * when an `else` follows, any branch that can *end* in an else-less `if`
///   (an `if` or a `let` chain) must be braced, or the dangling `else` would
///   re-attach to the inner `if` on re-parse.
fn branch_needs_braces(action: &Action, else_follows: bool) -> bool {
    match action {
        Action::Seq(_) => true,
        Action::Perform { .. } | Action::Nop => false,
        Action::If { .. } | Action::Let { .. } => else_follows,
    }
}

/// Print a branch/body statement, brace-wrapping it when leaving it bare
/// would re-parse differently (see [`branch_needs_braces`]).
fn write_branch(out: &mut String, action: &Action, level: usize, else_follows: bool) {
    if branch_needs_braces(action, else_follows) {
        indent(out, level);
        let _ = writeln!(out, "{{");
        write_action(out, action, level + 1);
        indent(out, level);
        let _ = writeln!(out, "}}");
    } else {
        write_action(out, action, level);
    }
}

fn write_action(out: &mut String, action: &Action, level: usize) {
    match action {
        Action::Let { name, term, body } => {
            indent(out, level);
            let _ = write!(out, "(let {name} = ");
            write_term(out, term);
            let _ = writeln!(out, ")");
            write_branch(out, body, level, false);
        }
        Action::Seq(items) => {
            for item in items {
                write_action(out, item, level);
            }
        }
        Action::If { cond, then, els } => {
            indent(out, level);
            let _ = write!(out, "if ");
            write_cond(out, cond);
            let _ = writeln!(out, " then");
            write_branch(out, then, level + 1, els.is_some());
            if let Some(e) = els {
                indent(out, level);
                let _ = writeln!(out, "else");
                write_branch(out, e, level + 1, false);
            }
        }
        Action::Perform { name, args } => {
            indent(out, level);
            let _ = write!(out, "perform {name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                write_term(out, a);
            }
            let _ = writeln!(out, ");");
        }
        Action::Nop => {
            indent(out, level);
            let _ = writeln!(out, ";");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_cond, parse_script, parse_term};

    #[test]
    fn terms_round_trip_through_the_parser() {
        for src in [
            "u.posx + 1",
            "(u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)",
            "Random(1) mod 2",
            "abs(u.posx - 3)",
            "sqrt(u.posx * u.posx)",
            "getNearestEnemy(u).key",
            "-u.posy",
            "\"knight\"",
        ] {
            let t = parse_term(src).unwrap();
            let printed = term_to_string(&t);
            let reparsed = parse_term(&printed).unwrap();
            assert_eq!(t, reparsed, "term `{src}` printed as `{printed}`");
        }
    }

    #[test]
    fn conds_round_trip_through_the_parser() {
        for src in [
            "u.health < 5",
            "u.health < 5 and u.cooldown = 0",
            "not (u.health < 5 or u.player != 1)",
            "true",
        ] {
            let c = parse_cond(src).unwrap();
            let printed = cond_to_string(&c);
            let reparsed = parse_cond(&printed).unwrap();
            assert_eq!(c, reparsed, "cond `{src}` printed as `{printed}`");
        }
    }

    #[test]
    fn scripts_round_trip_through_the_parser() {
        let src = r#"
            function Flee(u, dist) {
              perform MoveInDirection(u, u.posx + dist, u.posy);
            }
            main(u) {
              (let c = CountEnemiesInRange(u, u.range))
              if c > 3 then perform Flee(u, 10);
              else perform FireAt(u, getNearestEnemy(u).key);
            }
        "#;
        let script = parse_script(src).unwrap();
        let printed = script_to_string(&script);
        let reparsed = parse_script(&printed).unwrap();
        assert_eq!(script, reparsed);
    }

    /// Regression (found by the sgl-testkit conformance generator): a
    /// multi-statement branch must print with braces — bare, its tail would
    /// leak into the enclosing sequence on re-parse.
    #[test]
    fn seq_branches_round_trip_with_braces() {
        let src = r#"
            main(u) {
              (let n = getNearestEnemy(u))
              if u.health > 3 then {
                perform FireAt(u, n.key);
                perform MoveInDirection(u, u.posx, u.posy);
              }
              else
                perform MoveInDirection(u, 0, 0);
            }
        "#;
        let script = parse_script(src).unwrap();
        assert_eq!(script.main.body.count_performs(), 3);
        let printed = script_to_string(&script);
        let reparsed = parse_script(&printed).unwrap();
        assert_eq!(script, reparsed, "printed as:\n{printed}");
    }

    /// Regression (same sweep): a `let` whose body is a sequence must brace
    /// the body, or the re-parse moves the tail out of the variable's scope.
    #[test]
    fn let_with_seq_body_round_trips() {
        let src = r#"
            main(u) {
              (let n = getNearestEnemy(u)) {
                perform FireAt(u, n.key);
                perform FireAt(u, n.key);
              }
            }
        "#;
        let script = parse_script(src).unwrap();
        let printed = script_to_string(&script);
        let reparsed = parse_script(&printed).unwrap();
        assert_eq!(script, reparsed, "printed as:\n{printed}");
    }

    /// Regression (same sweep): dangling else.  A then-branch ending in an
    /// else-less `if` (possibly under a `let`) must be braced when the outer
    /// `if` has an `else`, or the `else` re-attaches to the inner `if`.
    #[test]
    fn dangling_else_round_trips() {
        use crate::ast::{Action, CmpOp, Cond, Term};
        for inner in [
            Action::If {
                cond: Cond::cmp(CmpOp::Gt, Term::unit("health"), Term::int(5)),
                then: Box::new(Action::Perform {
                    name: "Heal".into(),
                    args: vec![Term::name("u")],
                }),
                els: None,
            },
            Action::Let {
                name: "x".into(),
                term: Term::int(1),
                body: Box::new(Action::If {
                    cond: Cond::cmp(CmpOp::Gt, Term::name("x"), Term::int(0)),
                    then: Box::new(Action::Perform {
                        name: "Heal".into(),
                        args: vec![Term::name("u")],
                    }),
                    els: None,
                }),
            },
        ] {
            let script = Script {
                functions: vec![],
                main: crate::ast::FunctionDef {
                    name: "main".into(),
                    params: vec!["u".into()],
                    body: Action::If {
                        cond: Cond::cmp(CmpOp::Eq, Term::unit("cooldown"), Term::int(0)),
                        then: Box::new(inner),
                        els: Some(Box::new(Action::Perform {
                            name: "Heal".into(),
                            args: vec![Term::name("u")],
                        })),
                    },
                },
            };
            let printed = script_to_string(&script);
            let reparsed = parse_script(&printed).unwrap();
            assert_eq!(script, reparsed, "printed as:\n{printed}");
        }
    }

    #[test]
    fn nop_prints_as_empty_statement() {
        let script = parse_script("main(u) { }").unwrap();
        let printed = script_to_string(&script);
        assert!(printed.contains("main(u)"));
        parse_script(&printed).unwrap();
    }
}
