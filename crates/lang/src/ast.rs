//! Abstract syntax of SGL (paper §4.1).
//!
//! An SGL script is a set of function definitions with a distinguished
//! `main(u)` action function.  Action functions are built from `let`
//! bindings, sequencing, conditionals and `perform` statements; terms are
//! arithmetic over unit attributes, let variables, random numbers and
//! aggregate-function calls; conditions are boolean combinations of term
//! comparisons.

use sgl_env::Value;

/// Comparison operators usable in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on an ordering result.
    pub fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`a < b` ⇔ `!(a >= b)`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Euclidean remainder (`mod`).
    Mod,
}

/// A reference to a variable inside a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VarRef {
    /// `u.attr` — an attribute of the current unit.
    Unit(String),
    /// `e.attr` — an attribute of the candidate row; only legal inside
    /// built-in aggregate and action definitions (the SQL fragments of
    /// Eq. (4)/(5)), never in scripts.
    Row(String),
    /// A bare name: a `let` variable, a function parameter or a game constant.
    Name(String),
}

/// Terms (arithmetic expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Literal constant.
    Const(Value),
    /// Variable reference.
    Var(VarRef),
    /// `Random(i)` — the deterministic per-tick random number.
    Random(Box<Term>),
    /// Call of an aggregate function (`CountEnemiesInRange(u, u.range)`).
    Agg(AggCall),
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Term>,
        /// Right operand.
        right: Box<Term>,
    },
    /// Unary negation.
    Neg(Box<Term>),
    /// Absolute value.
    Abs(Box<Term>),
    /// Square root.
    Sqrt(Box<Term>),
    /// Field access on a record-valued term (`getNearestEnemy(u).key`).
    Field(Box<Term>, String),
    /// A small tuple/point literal such as `(u.posx, u.posy)`.
    Tuple(Vec<Term>),
}

impl Term {
    /// Shortcut for an integer literal.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    /// Shortcut for a float literal.
    pub fn float(v: f64) -> Term {
        Term::Const(Value::Float(v))
    }

    /// Shortcut for `u.attr`.
    pub fn unit(attr: &str) -> Term {
        Term::Var(VarRef::Unit(attr.to_string()))
    }

    /// Shortcut for `e.attr`.
    pub fn row(attr: &str) -> Term {
        Term::Var(VarRef::Row(attr.to_string()))
    }

    /// Shortcut for a bare name.
    pub fn name(n: &str) -> Term {
        Term::Var(VarRef::Name(n.to_string()))
    }

    /// Shortcut for a binary operation.
    pub fn bin(op: BinOp, left: Term, right: Term) -> Term {
        Term::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Does this term (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Term::Agg(_) => true,
            Term::Const(_) | Term::Var(_) => false,
            Term::Random(t) | Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) | Term::Field(t, _) => {
                t.contains_aggregate()
            }
            Term::Bin { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Term::Tuple(items) => items.iter().any(Term::contains_aggregate),
        }
    }

    /// Does this term reference the candidate row (`e.*`)?
    pub fn references_row(&self) -> bool {
        match self {
            Term::Var(VarRef::Row(_)) => true,
            Term::Const(_) | Term::Var(_) => false,
            Term::Agg(call) => call.args.iter().any(Term::references_row),
            Term::Random(t) | Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) | Term::Field(t, _) => {
                t.references_row()
            }
            Term::Bin { left, right, .. } => left.references_row() || right.references_row(),
            Term::Tuple(items) => items.iter().any(Term::references_row),
        }
    }

    /// Collect the names of all referenced bare variables into `out`.
    pub fn collect_names(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(VarRef::Name(n)) => out.push(n.clone()),
            Term::Const(_) | Term::Var(_) => {}
            Term::Agg(call) => call.args.iter().for_each(|a| a.collect_names(out)),
            Term::Random(t) | Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) | Term::Field(t, _) => {
                t.collect_names(out)
            }
            Term::Bin { left, right, .. } => {
                left.collect_names(out);
                right.collect_names(out);
            }
            Term::Tuple(items) => items.iter().for_each(|i| i.collect_names(out)),
        }
    }
}

/// A call to an aggregate function.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Name of the aggregate function (resolved against the registry).
    pub name: String,
    /// Arguments; by convention the first argument is the unit `u`.
    pub args: Vec<Term>,
}

/// Conditions (boolean expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Literal truth value.
    Lit(bool),
    /// Comparison of two terms.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left term.
        left: Term,
        /// Right term.
        right: Term,
    },
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Shortcut for a comparison.
    pub fn cmp(op: CmpOp, left: Term, right: Term) -> Cond {
        Cond::Cmp { op, left, right }
    }

    /// Conjunction helper.
    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }

    /// Disjunction helper.
    pub fn or(a: Cond, b: Cond) -> Cond {
        Cond::Or(Box::new(a), Box::new(b))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(c: Cond) -> Cond {
        Cond::Not(Box::new(c))
    }

    /// Does the condition contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Cond::Lit(_) => false,
            Cond::Cmp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Cond::And(a, b) | Cond::Or(a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Cond::Not(c) => c.contains_aggregate(),
        }
    }

    /// Flatten a conjunctive condition into its conjuncts.  Returns `None` if
    /// the condition contains `Or`/`Not` above the comparison level (i.e. it
    /// is not a conjunctive query in the sense of §5.3).
    pub fn conjuncts(&self) -> Option<Vec<&Cond>> {
        let mut out = Vec::new();
        fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Cond>) -> bool {
            match c {
                Cond::And(a, b) => walk(a, out) && walk(b, out),
                Cond::Lit(true) => true,
                Cond::Cmp { .. } => {
                    out.push(c);
                    true
                }
                _ => false,
            }
        }
        if walk(self, &mut out) {
            Some(out)
        } else {
            None
        }
    }
}

/// Action functions (the body of scripts).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `(let name = term) body` — extend the current unit record.
    Let {
        /// Variable name introduced.
        name: String,
        /// Bound term.
        term: Term,
        /// Body in which the variable is visible.
        body: Box<Action>,
    },
    /// `a1; a2; ...` — all actions are performed (their effects combine by ⊕).
    Seq(Vec<Action>),
    /// Conditional.
    If {
        /// Branch condition.
        cond: Cond,
        /// Action when the condition holds.
        then: Box<Action>,
        /// Optional action when it does not.
        els: Option<Box<Action>>,
    },
    /// `perform F(args)` — invoke a built-in or user-defined action function.
    Perform {
        /// Function name.
        name: String,
        /// Arguments (the unit `u` is passed implicitly as the first one when
        /// written in scripts, e.g. `perform FireAt(u, target)`).
        args: Vec<Term>,
    },
    /// The empty action (does nothing).
    Nop,
}

impl Action {
    /// Count the number of `perform` statements in the action tree.
    pub fn count_performs(&self) -> usize {
        match self {
            Action::Let { body, .. } => body.count_performs(),
            Action::Seq(items) => items.iter().map(Action::count_performs).sum(),
            Action::If { then, els, .. } => {
                then.count_performs() + els.as_ref().map_or(0, |e| e.count_performs())
            }
            Action::Perform { .. } => 1,
            Action::Nop => 0,
        }
    }

    /// Collect every aggregate call appearing anywhere in the action.
    pub fn collect_aggregates<'a>(&'a self, out: &mut Vec<&'a AggCall>) {
        fn term_aggs<'a>(t: &'a Term, out: &mut Vec<&'a AggCall>) {
            match t {
                Term::Agg(call) => {
                    out.push(call);
                    call.args.iter().for_each(|a| term_aggs(a, out));
                }
                Term::Const(_) | Term::Var(_) => {}
                Term::Random(t)
                | Term::Neg(t)
                | Term::Abs(t)
                | Term::Sqrt(t)
                | Term::Field(t, _) => term_aggs(t, out),
                Term::Bin { left, right, .. } => {
                    term_aggs(left, out);
                    term_aggs(right, out);
                }
                Term::Tuple(items) => items.iter().for_each(|i| term_aggs(i, out)),
            }
        }
        fn cond_aggs<'a>(c: &'a Cond, out: &mut Vec<&'a AggCall>) {
            match c {
                Cond::Lit(_) => {}
                Cond::Cmp { left, right, .. } => {
                    term_aggs(left, out);
                    term_aggs(right, out);
                }
                Cond::And(a, b) | Cond::Or(a, b) => {
                    cond_aggs(a, out);
                    cond_aggs(b, out);
                }
                Cond::Not(c) => cond_aggs(c, out),
            }
        }
        match self {
            Action::Let { term, body, .. } => {
                term_aggs(term, out);
                body.collect_aggregates(out);
            }
            Action::Seq(items) => items.iter().for_each(|a| a.collect_aggregates(out)),
            Action::If { cond, then, els } => {
                cond_aggs(cond, out);
                then.collect_aggregates(out);
                if let Some(e) = els {
                    e.collect_aggregates(out);
                }
            }
            Action::Perform { args, .. } => args.iter().for_each(|a| term_aggs(a, out)),
            Action::Nop => {}
        }
    }
}

/// A user-defined action function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Parameter names; the first is conventionally the unit `u`.
    pub params: Vec<String>,
    /// Body.
    pub body: Action,
}

/// A complete SGL script: helper functions plus `main(u)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Helper action functions defined with `function name(params) { ... }`.
    pub functions: Vec<FunctionDef>,
    /// The `main(u)` entry point.
    pub main: FunctionDef,
}

impl Script {
    /// Look up a helper function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.holds(Equal));
        assert!(!CmpOp::Eq.holds(Less));
        assert!(CmpOp::Ne.holds(Greater));
        assert!(CmpOp::Lt.holds(Less));
        assert!(CmpOp::Le.holds(Equal));
        assert!(CmpOp::Gt.holds(Greater));
        assert!(CmpOp::Ge.holds(Equal));
    }

    #[test]
    fn cmp_op_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flipped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Ne.negated(), CmpOp::Eq);
    }

    #[test]
    fn aggregate_detection_in_terms_and_conditions() {
        let agg = Term::Agg(AggCall {
            name: "Count".into(),
            args: vec![Term::unit("range")],
        });
        let t = Term::bin(BinOp::Add, Term::int(1), agg.clone());
        assert!(t.contains_aggregate());
        assert!(!Term::unit("posx").contains_aggregate());
        let c = Cond::cmp(CmpOp::Gt, t, Term::int(3));
        assert!(c.contains_aggregate());
        assert!(!Cond::Lit(true).contains_aggregate());
    }

    #[test]
    fn row_reference_detection() {
        assert!(Term::row("posx").references_row());
        assert!(!Term::unit("posx").references_row());
        let t = Term::bin(BinOp::Sub, Term::row("posx"), Term::unit("posx"));
        assert!(t.references_row());
    }

    #[test]
    fn conjunct_flattening() {
        let c = Cond::and(
            Cond::cmp(CmpOp::Ge, Term::row("posx"), Term::unit("posx")),
            Cond::and(
                Cond::cmp(CmpOp::Le, Term::row("posx"), Term::int(5)),
                Cond::cmp(CmpOp::Ne, Term::row("player"), Term::unit("player")),
            ),
        );
        let conjs = c.conjuncts().unwrap();
        assert_eq!(conjs.len(), 3);

        let not_cq = Cond::or(Cond::Lit(true), Cond::Lit(false));
        assert!(not_cq.conjuncts().is_none());
        let with_not = Cond::not(Cond::Lit(false));
        assert!(with_not.conjuncts().is_none());
    }

    #[test]
    fn perform_counting_and_aggregate_collection() {
        let agg = AggCall {
            name: "CountEnemiesInRange".into(),
            args: vec![Term::unit("range")],
        };
        let action = Action::Let {
            name: "c".into(),
            term: Term::Agg(agg.clone()),
            body: Box::new(Action::If {
                cond: Cond::cmp(CmpOp::Gt, Term::name("c"), Term::int(3)),
                then: Box::new(Action::Perform {
                    name: "Flee".into(),
                    args: vec![],
                }),
                els: Some(Box::new(Action::Seq(vec![
                    Action::Perform {
                        name: "FireAt".into(),
                        args: vec![Term::name("c")],
                    },
                    Action::Nop,
                ]))),
            }),
        };
        assert_eq!(action.count_performs(), 2);
        let mut aggs = Vec::new();
        action.collect_aggregates(&mut aggs);
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].name, "CountEnemiesInRange");
    }

    #[test]
    fn name_collection() {
        let t = Term::bin(
            BinOp::Mul,
            Term::name("away_vector"),
            Term::bin(BinOp::Add, Term::name("_ARROW_DAMAGE"), Term::unit("posx")),
        );
        let mut names = Vec::new();
        t.collect_names(&mut names);
        names.sort();
        assert_eq!(
            names,
            vec!["_ARROW_DAMAGE".to_string(), "away_vector".to_string()]
        );
    }

    #[test]
    fn script_function_lookup() {
        let f = FunctionDef {
            name: "helper".into(),
            params: vec!["u".into()],
            body: Action::Nop,
        };
        let main = FunctionDef {
            name: "main".into(),
            params: vec!["u".into()],
            body: Action::Nop,
        };
        let script = Script {
            functions: vec![f],
            main,
        };
        assert!(script.function("helper").is_some());
        assert!(script.function("nope").is_none());
    }
}
