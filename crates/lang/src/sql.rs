//! SQL front end for built-in aggregate and action definitions.
//!
//! The paper defines its built-ins directly in SQL: aggregate functions have
//! the shape of Eq. (5) and action functions the shape of Eq. (4), and
//! Figures 4 and 5 show their concrete text.  In the data-driven architecture
//! of §2 these definitions are *game content*, authored by designers and
//! modders in data files, not by engine programmers in Rust.  This module
//! closes that loop: it parses the Figure-4/5 syntax into the same
//! [`AggregateDef`] / [`ActionDef`] values that [`crate::builtins`] builds
//! programmatically, so a registry can be assembled (or extended by a mod)
//! entirely from SQL text:
//!
//! ```
//! use sgl_lang::sql::parse_sql_registry;
//!
//! let registry = parse_sql_registry(r#"
//!     constant _SKELETON_PLAYER = 2;
//!
//!     function CountSkeletons(u, range) returns
//!       SELECT Count(*)
//!       FROM E e
//!       WHERE e.posx >= u.posx - range AND e.posx <= u.posx + range
//!         AND e.posy >= u.posy - range AND e.posy <= u.posy + range
//!         AND e.player = _SKELETON_PLAYER;
//! "#).unwrap();
//! assert!(registry.aggregate("CountSkeletons").is_some());
//! ```
//!
//! ## Supported surface syntax
//!
//! * `constant NAME = literal;` — game constants (`_HEAL_AURA`, ...).
//! * `function Name(u, p1, ...) returns SELECT ...;` — one definition.
//! * Aggregate definitions (Eq. (5)): every select item is an SQL aggregate
//!   `Count(*) | Sum(x) | Avg(x) | Min(x) | Max(x) | StdDev(x)`, optionally
//!   `AS name` and `DEFAULT literal`.
//! * Nearest-neighbour style aggregates (§5.3.2) use the standard SQL idiom
//!   `ORDER BY rank ASC|DESC LIMIT 1`: the select items are expressions over
//!   the best row (an *argmin/argmax*, [`AggSpec::ArgBest`]).
//! * Action definitions (Eq. (4)): select items describe the new value of
//!   each effect attribute.  `e.damage + X AS damage` and
//!   `nonsql_max(e.inaura, X) AS inaura` contribute the effect `X`; columns
//!   copied unchanged (`e.posx`, `e.key`, ...) contribute nothing.  Several
//!   `SELECT`s joined by `UNION` become separate effect clauses.
//! * `WHERE` accepts conjunctions, disjunctions and `NOT` over comparisons of
//!   arithmetic terms, exactly like SGL conditions; `e.attr` (or the FROM
//!   alias) refers to the candidate row, `u.attr` (the first parameter) to
//!   the acting unit, bare names to parameters and constants.
//!
//! Names and shapes are validated later against the schema by
//! [`crate::typecheck::check_registry`], identically to Rust-built registries.

use sgl_env::Value;

use crate::ast::{BinOp, CmpOp, Cond, Term, VarRef};
use crate::builtins::{
    ActionDef, AggOutput, AggSpec, AggregateDef, EffectClause, Registry, SimpleAgg,
};
use crate::error::{LangError, Pos, Result};
use crate::lexer::{tokenize, Tok, Token};

/// One parsed SQL definition.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlItem {
    /// A game constant.
    Constant(String, Value),
    /// An aggregate function (Eq. (5)).
    Aggregate(AggregateDef),
    /// An action function (Eq. (4)).
    Action(ActionDef),
}

/// Parse a whole definition file into a fresh [`Registry`].
pub fn parse_sql_registry(src: &str) -> Result<Registry> {
    let mut registry = Registry::new();
    extend_registry_from_sql(&mut registry, src)?;
    Ok(registry)
}

/// Parse a definition file and register everything into an existing registry
/// (this is how a mod layers new behaviour on top of the base game: later
/// definitions replace earlier ones of the same name).
pub fn extend_registry_from_sql(registry: &mut Registry, src: &str) -> Result<()> {
    for item in parse_sql_items(src)? {
        match item {
            SqlItem::Constant(name, value) => registry.set_constant(&name, value),
            SqlItem::Aggregate(def) => registry.register_aggregate(def),
            SqlItem::Action(def) => registry.register_action(def),
        }
    }
    Ok(())
}

/// Parse a definition file into its items without touching a registry.
pub fn parse_sql_items(src: &str) -> Result<Vec<SqlItem>> {
    let tokens = tokenize(src)?;
    let mut parser = SqlParser::new(tokens);
    parser.items()
}

/// Parse a single `function ... returns SELECT ...;` definition.
pub fn parse_sql_function(src: &str) -> Result<SqlItem> {
    let items = parse_sql_items(src)?;
    match items.len() {
        1 => Ok(items.into_iter().next().unwrap()),
        n => Err(LangError::Semantic(format!(
            "expected exactly one definition, found {n}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct SqlParser {
    tokens: Vec<Token>,
    pos: usize,
    /// Name of the acting-unit parameter of the definition being parsed.
    unit_param: String,
    /// FROM alias for the candidate row (`e` by default).
    row_alias: String,
}

impl SqlParser {
    fn new(tokens: Vec<Token>) -> SqlParser {
        SqlParser {
            tokens,
            pos: 0,
            unit_param: "u".into(),
            row_alias: "e".into(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_pos(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(LangError::Parse {
            pos: self.peek_pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    /// Is the current token the given (case-insensitive) keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(name) if name.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ------------------------------------------------------------- top level

    fn items(&mut self) -> Result<Vec<SqlItem>> {
        let mut items = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Semi => {
                    self.bump();
                }
                Tok::Ident(name) if name.eq_ignore_ascii_case("constant") => {
                    self.bump();
                    items.push(self.constant_decl()?);
                }
                Tok::Ident(name) if name.eq_ignore_ascii_case("function") => {
                    self.bump();
                    items.push(self.function_decl()?);
                }
                other => {
                    return self.err(format!(
                        "expected `function` or `constant`, found {other:?}"
                    ))
                }
            }
        }
        Ok(items)
    }

    fn constant_decl(&mut self) -> Result<SqlItem> {
        let name = self.ident()?;
        self.expect(Tok::Eq)?;
        let value = self.literal()?;
        self.expect(Tok::Semi)?;
        Ok(SqlItem::Constant(name, value))
    }

    fn literal(&mut self) -> Result<Value> {
        let negative = if *self.peek() == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        let value = match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Value::Int(if negative { -v } else { v })
            }
            Tok::Float(v) => {
                self.bump();
                Value::Float(if negative { -v } else { v })
            }
            Tok::Str(s) if !negative => {
                self.bump();
                Value::str(s)
            }
            other => return self.err(format!("expected a literal, found {other:?}")),
        };
        Ok(value)
    }

    fn function_decl(&mut self) -> Result<SqlItem> {
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if params.is_empty() {
            return Err(LangError::Semantic(format!(
                "function `{name}` must take the acting unit as its first parameter"
            )));
        }
        self.unit_param = params[0].clone();
        self.expect_keyword("returns")?;

        // One or more SELECT statements joined by UNION.
        let mut selects = Vec::new();
        loop {
            selects.push(self.select()?);
            if !self.eat_keyword("union") {
                break;
            }
        }
        if *self.peek() == Tok::Semi {
            self.bump();
        }

        self.classify(name, params, selects)
    }

    // ---------------------------------------------------------------- SELECT

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("select")?;
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_keyword("from")?;
        let table = self.ident()?;
        if !table.eq_ignore_ascii_case("e") {
            return Err(LangError::Semantic(format!(
                "built-in definitions read the environment table `E`, not `{table}`"
            )));
        }
        // Optional row alias (`FROM E e`); defaults to `e`.
        self.row_alias = "e".into();
        if let Tok::Ident(alias) = self.peek().clone() {
            if !is_sql_keyword(&alias) {
                self.bump();
                self.row_alias = alias;
            }
        }
        let filter = if self.eat_keyword("where") {
            self.cond()?
        } else {
            Cond::Lit(true)
        };
        let order = if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            let rank = self.term()?;
            let minimize = if self.eat_keyword("desc") {
                false
            } else {
                self.eat_keyword("asc");
                true
            };
            self.expect_keyword("limit")?;
            match self.bump() {
                Tok::Int(1) => {}
                other => return self.err(format!("only `LIMIT 1` is supported, found {other:?}")),
            }
            Some((rank, minimize))
        } else {
            None
        };
        Ok(Select {
            items,
            filter,
            order,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // SQL aggregate call?
        if let Tok::Ident(name) = self.peek().clone() {
            if let Some(func) = simple_agg_of(&name) {
                if self.tokens[self.pos + 1].tok == Tok::LParen {
                    self.bump();
                    self.bump();
                    let value = if *self.peek() == Tok::Star {
                        self.bump();
                        Term::int(1)
                    } else {
                        self.term()?
                    };
                    self.expect(Tok::RParen)?;
                    let (alias, default) = self.item_suffix()?;
                    return Ok(SelectItem::Aggregate {
                        func,
                        value,
                        alias,
                        default,
                    });
                }
            }
        }
        let expr = self.term()?;
        let (alias, default) = self.item_suffix()?;
        Ok(SelectItem::Plain {
            expr,
            alias,
            default,
        })
    }

    /// Optional `AS alias` and `DEFAULT literal` suffixes of a select item.
    fn item_suffix(&mut self) -> Result<(Option<String>, Option<Value>)> {
        let alias = if self.eat_keyword("as") {
            Some(self.ident()?)
        } else {
            None
        };
        let default = if self.eat_keyword("default") {
            Some(self.literal()?)
        } else {
            None
        };
        Ok((alias, default))
    }

    // ------------------------------------------------------------ conditions

    fn cond(&mut self) -> Result<Cond> {
        let mut left = self.cond_and()?;
        while self.eat_keyword("or") {
            let right = self.cond_and()?;
            left = Cond::or(left, right);
        }
        Ok(left)
    }

    fn cond_and(&mut self) -> Result<Cond> {
        let mut left = self.cond_not()?;
        while self.eat_keyword("and") {
            let right = self.cond_not()?;
            left = Cond::and(left, right);
        }
        Ok(left)
    }

    fn cond_not(&mut self) -> Result<Cond> {
        if self.eat_keyword("not") {
            return Ok(Cond::not(self.cond_not()?));
        }
        self.cond_primary()
    }

    fn cond_primary(&mut self) -> Result<Cond> {
        if self.at_keyword("true") {
            self.bump();
            return Ok(Cond::Lit(true));
        }
        if self.at_keyword("false") {
            self.bump();
            return Ok(Cond::Lit(false));
        }
        let save = self.pos;
        match self.comparison() {
            Ok(c) => Ok(c),
            Err(first_err) => {
                self.pos = save;
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let inner = self.cond()?;
                    self.expect(Tok::RParen)?;
                    Ok(inner)
                } else {
                    Err(first_err)
                }
            }
        }
    }

    fn comparison(&mut self) -> Result<Cond> {
        let left = self.term()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected a comparison operator, found {other:?}")),
        };
        self.bump();
        let right = self.term()?;
        Ok(Cond::Cmp { op, left, right })
    }

    // ----------------------------------------------------------------- terms

    fn term(&mut self) -> Result<Term> {
        let mut left = self.mul_div()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_div()?;
            left = Term::bin(op, left, right);
        }
        Ok(left)
    }

    fn mul_div(&mut self) -> Result<Term> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Ident(n) if n.eq_ignore_ascii_case("mod") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Term::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Term> {
        if *self.peek() == Tok::Minus {
            self.bump();
            return Ok(Term::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Term> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Term::Const(Value::Int(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Term::Const(Value::Float(v)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Term::Const(Value::str(s)))
            }
            Tok::LParen => {
                self.bump();
                let inner = self.term()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::Ident(name) => {
                self.bump();
                // Function-style calls usable inside definitions.
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.term()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    return self.call(&name, args);
                }
                // Qualified column access (`e.attr`, `E.attr`, `u.attr`).
                if *self.peek() == Tok::Dot {
                    self.bump();
                    let field = self.ident()?;
                    if name == self.unit_param {
                        return Ok(Term::Var(VarRef::Unit(field)));
                    }
                    if name.eq_ignore_ascii_case(&self.row_alias) || name.eq_ignore_ascii_case("e")
                    {
                        return Ok(Term::Var(VarRef::Row(field)));
                    }
                    return Err(LangError::Semantic(format!(
                        "unknown table alias `{name}` (expected `{}` or `{}`)",
                        self.row_alias, self.unit_param
                    )));
                }
                Ok(Term::Var(VarRef::Name(name)))
            }
            other => self.err(format!("expected a term, found {other:?}")),
        }
    }

    fn call(&mut self, name: &str, mut args: Vec<Term>) -> Result<Term> {
        match name.to_ascii_lowercase().as_str() {
            "abs" => {
                if args.len() != 1 {
                    return Err(LangError::Semantic("abs takes exactly one argument".into()));
                }
                Ok(Term::Abs(Box::new(args.pop().unwrap())))
            }
            "sqrt" => {
                if args.len() != 1 {
                    return Err(LangError::Semantic(
                        "sqrt takes exactly one argument".into(),
                    ));
                }
                Ok(Term::Sqrt(Box::new(args.pop().unwrap())))
            }
            "random" => {
                // Figure 5 writes `Random(e, 1)`; the row argument is implicit
                // in our semantics, so accept one or two arguments and keep
                // only the seed.
                match args.len() {
                    1 => Ok(Term::Random(Box::new(args.pop().unwrap()))),
                    2 => Ok(Term::Random(Box::new(args.pop().unwrap()))),
                    n => Err(LangError::Semantic(format!(
                        "Random takes 1 or 2 arguments, found {n}"
                    ))),
                }
            }
            "nonsql_max" => {
                // `nonsql_max(e.attr, X)` — the paper's way of writing a
                // nonstackable effect.  Inside an expression it reads as
                // "the larger of the current value and X"; the effect
                // extraction in `classify` special-cases it.
                if args.len() != 2 {
                    return Err(LangError::Semantic(
                        "nonsql_max takes exactly two arguments".into(),
                    ));
                }
                let second = args.pop().unwrap();
                let first = args.pop().unwrap();
                Ok(Term::Tuple(vec![
                    Term::Var(VarRef::Name("nonsql_max".into())),
                    first,
                    second,
                ]))
            }
            other => Err(LangError::Semantic(format!(
                "unsupported function `{other}` inside a built-in definition"
            ))),
        }
    }

    // --------------------------------------------------------- classification

    fn classify(&self, name: String, params: Vec<String>, selects: Vec<Select>) -> Result<SqlItem> {
        let first = &selects[0];
        let has_sql_aggregate = first
            .items
            .iter()
            .any(|item| matches!(item, SelectItem::Aggregate { .. }));

        if has_sql_aggregate || first.order.is_some() {
            if selects.len() != 1 {
                return Err(LangError::Semantic(format!(
                    "aggregate function `{name}` must consist of a single SELECT"
                )));
            }
            let select = selects.into_iter().next().unwrap();
            let def = if let Some((rank, minimize)) = select.order {
                self.build_argbest(name, params, select.items, select.filter, rank, minimize)?
            } else {
                self.build_simple_aggregate(name, params, select.items, select.filter)?
            };
            Ok(SqlItem::Aggregate(def))
        } else {
            let mut clauses = Vec::with_capacity(selects.len());
            for select in selects {
                clauses.push(self.build_effect_clause(&name, select)?);
            }
            Ok(SqlItem::Action(ActionDef {
                name,
                params,
                clauses,
            }))
        }
    }

    fn build_simple_aggregate(
        &self,
        name: String,
        params: Vec<String>,
        items: Vec<SelectItem>,
        filter: Cond,
    ) -> Result<AggregateDef> {
        let single = items.len() == 1;
        let mut outputs = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            match item {
                SelectItem::Aggregate {
                    func,
                    value,
                    alias,
                    default,
                } => {
                    let name = alias.unwrap_or_else(|| {
                        if single {
                            "value".to_string()
                        } else {
                            format!("col{i}")
                        }
                    });
                    let default = default.unwrap_or(match func {
                        SimpleAgg::Count => Value::Int(0),
                        _ => Value::Float(0.0),
                    });
                    outputs.push(AggOutput {
                        name,
                        func,
                        value,
                        default,
                    });
                }
                SelectItem::Plain { .. } => {
                    return Err(LangError::Semantic(format!(
                        "aggregate function `{name}` mixes aggregated and plain columns; \
                         use ORDER BY ... LIMIT 1 for per-row outputs"
                    )));
                }
            }
        }
        Ok(AggregateDef {
            name,
            params,
            filter,
            spec: AggSpec::Simple { outputs },
        })
    }

    fn build_argbest(
        &self,
        name: String,
        params: Vec<String>,
        items: Vec<SelectItem>,
        filter: Cond,
        rank: Term,
        minimize: bool,
    ) -> Result<AggregateDef> {
        let mut outputs = Vec::with_capacity(items.len());
        for (i, item) in items.into_iter().enumerate() {
            match item {
                SelectItem::Plain {
                    expr,
                    alias,
                    default,
                } => {
                    let out_name = alias.unwrap_or(match &expr {
                        Term::Var(VarRef::Row(attr)) => attr.clone(),
                        _ => format!("col{i}"),
                    });
                    let default = default.unwrap_or(match &expr {
                        // Key-like outputs default to the sentinel "no unit".
                        Term::Var(VarRef::Row(attr)) if attr == "key" => Value::Int(-1),
                        _ => Value::Float(0.0),
                    });
                    outputs.push((out_name, expr, default));
                }
                SelectItem::Aggregate { .. } => {
                    return Err(LangError::Semantic(format!(
                        "`{name}`: ORDER BY ... LIMIT 1 definitions select plain expressions, not aggregates"
                    )));
                }
            }
        }
        Ok(AggregateDef {
            name,
            params,
            filter,
            spec: AggSpec::ArgBest {
                minimize,
                rank,
                outputs,
            },
        })
    }

    fn build_effect_clause(&self, fn_name: &str, select: Select) -> Result<EffectClause> {
        let mut effects = Vec::new();
        for (i, item) in select.items.into_iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Plain {
                    expr,
                    alias,
                    default: None,
                } => (expr, alias),
                SelectItem::Plain {
                    default: Some(_), ..
                } => {
                    return Err(LangError::Semantic(format!(
                        "`{fn_name}`: DEFAULT is only meaningful for aggregate outputs"
                    )));
                }
                SelectItem::Aggregate { .. } => {
                    return Err(LangError::Semantic(format!(
                        "`{fn_name}`: action definitions cannot contain SQL aggregates"
                    )));
                }
            };
            let target = match (&alias, &expr) {
                (Some(name), _) => name.clone(),
                (None, Term::Var(VarRef::Row(attr))) => attr.clone(),
                _ => {
                    return Err(LangError::Semantic(format!(
                        "`{fn_name}`: select item {i} needs an `AS attribute` alias"
                    )));
                }
            };
            if let Some(effect) = extract_effect(&target, &expr) {
                effects.push((target, effect));
            }
        }
        if effects.is_empty() {
            return Err(LangError::Semantic(format!(
                "action `{fn_name}` has a clause with no effect columns"
            )));
        }
        Ok(EffectClause {
            filter: select.filter,
            effects,
        })
    }
}

/// Extract the effect contributed to `target` by a select expression, or
/// `None` when the column is just copied through unchanged.
///
/// * `e.target`                         → no effect;
/// * `e.target + X` / `X + e.target`    → effect `X` (stackable increment);
/// * `e.target - X`                     → effect `-X`;
/// * `nonsql_max(e.target, X)`          → effect `X` (nonstackable, combined
///   by the attribute's `max` tag);
/// * anything else                      → the whole expression is the effect.
fn extract_effect(target: &str, expr: &Term) -> Option<Term> {
    let is_current = |t: &Term| matches!(t, Term::Var(VarRef::Row(attr)) if attr == target);
    if is_current(expr) {
        return None;
    }
    if let Term::Bin { op, left, right } = expr {
        match op {
            BinOp::Add if is_current(left) => return Some((**right).clone()),
            BinOp::Add if is_current(right) => return Some((**left).clone()),
            BinOp::Sub if is_current(left) => return Some(Term::Neg(Box::new((**right).clone()))),
            _ => {}
        }
    }
    if let Term::Tuple(items) = expr {
        if items.len() == 3 {
            if let Term::Var(VarRef::Name(marker)) = &items[0] {
                if marker == "nonsql_max" && is_current(&items[1]) {
                    return Some(items[2].clone());
                }
            }
        }
    }
    Some(expr.clone())
}

fn simple_agg_of(name: &str) -> Option<SimpleAgg> {
    match name.to_ascii_lowercase().as_str() {
        "count" => Some(SimpleAgg::Count),
        "sum" => Some(SimpleAgg::Sum),
        "avg" => Some(SimpleAgg::Avg),
        "min" => Some(SimpleAgg::Min),
        "max" => Some(SimpleAgg::Max),
        "stddev" | "std_dev" => Some(SimpleAgg::StdDev),
        _ => None,
    }
}

fn is_sql_keyword(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "select"
            | "from"
            | "where"
            | "and"
            | "or"
            | "not"
            | "as"
            | "order"
            | "by"
            | "asc"
            | "desc"
            | "limit"
            | "union"
            | "default"
            | "returns"
            | "function"
            | "constant"
            | "group"
    )
}

#[derive(Debug, Clone)]
struct Select {
    items: Vec<SelectItem>,
    filter: Cond,
    order: Option<(Term, bool)>,
}

#[derive(Debug, Clone)]
enum SelectItem {
    Aggregate {
        func: SimpleAgg,
        value: Term,
        alias: Option<String>,
        default: Option<Value>,
    },
    Plain {
        expr: Term,
        alias: Option<String>,
        default: Option<Value>,
    },
}

// ---------------------------------------------------------------------------
// Pretty printer (round trip back to Figure-4/5 style SQL)
// ---------------------------------------------------------------------------

/// Render an aggregate definition in the style of Figure 4.
pub fn aggregate_to_sql(def: &AggregateDef) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "function {}({}) returns\n",
        def.name,
        def.params.join(", ")
    ));
    match &def.spec {
        AggSpec::Simple { outputs } => {
            let items: Vec<String> = outputs
                .iter()
                .map(|o| {
                    let call = match o.func {
                        SimpleAgg::Count => "Count(*)".to_string(),
                        _ => format!("{}({})", agg_name(o.func), term_to_sql(&o.value)),
                    };
                    format!("{call} AS {} DEFAULT {}", o.name, value_to_sql(&o.default))
                })
                .collect();
            out.push_str(&format!("  SELECT {}\n", items.join(", ")));
            out.push_str("  FROM E e\n");
            out.push_str(&format!("  WHERE {};", cond_to_sql(&def.filter)));
        }
        AggSpec::ArgBest {
            minimize,
            rank,
            outputs,
        } => {
            let items: Vec<String> = outputs
                .iter()
                .map(|(name, expr, default)| {
                    format!(
                        "{} AS {} DEFAULT {}",
                        term_to_sql(expr),
                        name,
                        value_to_sql(default)
                    )
                })
                .collect();
            out.push_str(&format!("  SELECT {}\n", items.join(", ")));
            out.push_str("  FROM E e\n");
            out.push_str(&format!("  WHERE {}\n", cond_to_sql(&def.filter)));
            out.push_str(&format!(
                "  ORDER BY {} {} LIMIT 1;",
                term_to_sql(rank),
                if *minimize { "ASC" } else { "DESC" }
            ));
        }
    }
    out
}

/// Render an action definition in the style of Figure 5 (effect columns only;
/// pass-through columns are implied by Eq. (4)).
pub fn action_to_sql(def: &ActionDef) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "function {}({}) returns\n",
        def.name,
        def.params.join(", ")
    ));
    let clauses: Vec<String> = def
        .clauses
        .iter()
        .map(|clause| {
            let items: Vec<String> = clause
                .effects
                .iter()
                .map(|(attr, effect)| format!("e.{attr} + {} AS {attr}", term_to_sql(effect)))
                .collect();
            format!(
                "  SELECT e.key, {}\n  FROM E e\n  WHERE {}",
                items.join(", "),
                cond_to_sql(&clause.filter)
            )
        })
        .collect();
    out.push_str(&clauses.join("\n  UNION\n"));
    out.push(';');
    out
}

fn agg_name(func: SimpleAgg) -> &'static str {
    match func {
        SimpleAgg::Count => "Count",
        SimpleAgg::Sum => "Sum",
        SimpleAgg::Avg => "Avg",
        SimpleAgg::Min => "Min",
        SimpleAgg::Max => "Max",
        SimpleAgg::StdDev => "StdDev",
    }
}

fn value_to_sql(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("\"{s}\""),
        other => format!("{other}"),
    }
}

fn term_to_sql(t: &Term) -> String {
    match t {
        Term::Const(v) => value_to_sql(v),
        Term::Var(VarRef::Unit(a)) => format!("u.{a}"),
        Term::Var(VarRef::Row(a)) => format!("e.{a}"),
        Term::Var(VarRef::Name(n)) => n.clone(),
        Term::Random(seed) => format!("Random(e, {})", term_to_sql(seed)),
        Term::Agg(call) => {
            let args: Vec<String> = call.args.iter().map(term_to_sql).collect();
            format!("{}({})", call.name, args.join(", "))
        }
        Term::Bin { op, left, right } => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "mod",
            };
            format!("({} {} {})", term_to_sql(left), op, term_to_sql(right))
        }
        Term::Neg(inner) => format!("(-{})", term_to_sql(inner)),
        Term::Abs(inner) => format!("abs({})", term_to_sql(inner)),
        Term::Sqrt(inner) => format!("sqrt({})", term_to_sql(inner)),
        Term::Field(inner, field) => format!("{}.{field}", term_to_sql(inner)),
        Term::Tuple(items) => {
            // The nonsql_max marker tuple renders back to its surface form.
            if items.len() == 3 {
                if let Term::Var(VarRef::Name(marker)) = &items[0] {
                    if marker == "nonsql_max" {
                        return format!(
                            "nonsql_max({}, {})",
                            term_to_sql(&items[1]),
                            term_to_sql(&items[2])
                        );
                    }
                }
            }
            let rendered: Vec<String> = items.iter().map(term_to_sql).collect();
            format!("({})", rendered.join(", "))
        }
    }
}

fn cond_to_sql(c: &Cond) -> String {
    match c {
        Cond::Lit(true) => "true".to_string(),
        Cond::Lit(false) => "false".to_string(),
        Cond::Cmp { op, left, right } => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {} {}", term_to_sql(left), op, term_to_sql(right))
        }
        Cond::And(a, b) => format!("{} AND {}", cond_to_sql(a), cond_to_sql(b)),
        Cond::Or(a, b) => format!("({} OR {})", cond_to_sql(a), cond_to_sql(b)),
        Cond::Not(inner) => format!("NOT ({})", cond_to_sql(inner)),
    }
}

// ---------------------------------------------------------------------------
// The paper's definition file
// ---------------------------------------------------------------------------

/// The built-in definitions of Figures 4 and 5 written as an SQL definition
/// file over the paper schema of Eq. (1).  Parsing this produces a registry
/// equivalent to [`crate::builtins::paper_registry`]; the equivalence is
/// checked by tests and by the `sql_modding` integration test.
pub const PAPER_DEFINITIONS_SQL: &str = r#"
constant _ARROW_HIT_DAMAGE = 6;
constant _ARMOR = 2;
constant _HEAL_AURA = 4;
constant _HEALER_RANGE = 8.0;
constant _TIME_RELOAD = 3;
constant _WALK_DIST_PER_TICK = 1.0;

# Figure 4: aggregate functions.
function CountEnemiesInRange(u, range) returns
  SELECT Count(*)
  FROM E e
  WHERE e.posx >= u.posx - range AND e.posx <= u.posx + range
    AND e.posy >= u.posy - range AND e.posy <= u.posy + range
    AND e.player <> u.player;

function CentroidOfEnemyUnits(u, range) returns
  SELECT Avg(e.posx) AS x, Avg(e.posy) AS y
  FROM E e
  WHERE e.posx >= u.posx - range AND e.posx <= u.posx + range
    AND e.posy >= u.posy - range AND e.posy <= u.posy + range
    AND e.player <> u.player;

# Nearest-neighbour aggregate of the Figure 3 script (a spatial aggregate in
# the sense of section 5.3.2, written with the ORDER BY ... LIMIT 1 idiom).
function getNearestEnemy(u) returns
  SELECT e.key DEFAULT -1, e.posx DEFAULT 0.0, e.posy DEFAULT 0.0
  FROM E e
  WHERE e.player <> u.player
  ORDER BY (e.posx - u.posx) * (e.posx - u.posx) + (e.posy - u.posy) * (e.posy - u.posy) ASC
  LIMIT 1;

# Figure 5: action functions.
function FireAt(u, target_key) returns
  SELECT e.key,
         e.damage + (_ARROW_HIT_DAMAGE - _ARMOR) * (Random(e, 1) mod 2) AS damage
  FROM E e
  WHERE e.key = target_key
  UNION
  SELECT e.key, e.weaponused + 1 AS weaponused
  FROM E e
  WHERE e.key = u.key;

function MoveInDirection(u, x, y) returns
  SELECT e.key,
         x - e.posx AS movevect_x,
         y - e.posy AS movevect_y
  FROM E e
  WHERE e.key = u.key;

function Heal(u) returns
  SELECT e.key, nonsql_max(e.inaura, _HEAL_AURA) AS inaura
  FROM E e
  WHERE u.player = e.player
    AND e.posx >= u.posx - _HEALER_RANGE AND e.posx <= u.posx + _HEALER_RANGE
    AND e.posy >= u.posy - _HEALER_RANGE AND e.posy <= u.posy + _HEALER_RANGE;
"#;

/// Parse [`PAPER_DEFINITIONS_SQL`] into a registry (the SQL-sourced
/// counterpart of [`crate::builtins::paper_registry`]).
pub fn paper_registry_from_sql() -> Registry {
    parse_sql_registry(PAPER_DEFINITIONS_SQL).expect("the bundled paper definitions parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::paper_registry;
    use crate::typecheck::check_registry;
    use sgl_env::schema::paper_schema;

    #[test]
    fn constants_parse_with_signs_and_types() {
        let reg = parse_sql_registry(
            "constant _A = 3; constant _B = -2; constant _C = 1.5; constant _D = \"skeleton\";",
        )
        .unwrap();
        assert_eq!(reg.constant("_A"), Some(&Value::Int(3)));
        assert_eq!(reg.constant("_B"), Some(&Value::Int(-2)));
        assert_eq!(reg.constant("_C"), Some(&Value::Float(1.5)));
        assert_eq!(reg.constant("_D").unwrap().as_str(), Some("skeleton"));
    }

    #[test]
    fn figure_4_count_parses_to_a_divisible_aggregate() {
        let item = parse_sql_function(
            r#"
            function CountEnemiesInRange(u, range) returns
              SELECT Count(*)
              FROM E e
              WHERE e.posx >= u.posx - range AND e.posx <= u.posx + range
                AND e.posy >= u.posy - range AND e.posy <= u.posy + range
                AND e.player <> u.player;
            "#,
        )
        .unwrap();
        let SqlItem::Aggregate(def) = item else {
            panic!("expected an aggregate")
        };
        assert_eq!(def.name, "CountEnemiesInRange");
        assert_eq!(def.params, vec!["u".to_string(), "range".to_string()]);
        assert!(def.is_divisible());
        assert_eq!(def.output_names(), vec!["value"]);
        assert_eq!(def.filter.conjuncts().unwrap().len(), 5);
    }

    #[test]
    fn figure_4_centroid_has_two_avg_outputs() {
        let item = parse_sql_function(
            r#"
            function Centroid(u, range) returns
              SELECT Avg(e.posx) AS x, Avg(e.posy) AS y
              FROM E e
              WHERE e.player <> u.player;
            "#,
        )
        .unwrap();
        let SqlItem::Aggregate(def) = item else {
            panic!("expected an aggregate")
        };
        assert_eq!(def.output_names(), vec!["x", "y"]);
        assert!(def.is_divisible());
        match def.spec {
            AggSpec::Simple { outputs } => {
                assert!(outputs.iter().all(|o| o.func == SimpleAgg::Avg));
                assert_eq!(outputs[0].value, Term::row("posx"));
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn order_by_limit_one_becomes_argbest() {
        let item = parse_sql_function(
            r#"
            function getNearestEnemy(u) returns
              SELECT e.key, e.posx, e.posy
              FROM E e
              WHERE e.player <> u.player
              ORDER BY (e.posx - u.posx) * (e.posx - u.posx) + (e.posy - u.posy) * (e.posy - u.posy)
              LIMIT 1;
            "#,
        )
        .unwrap();
        let SqlItem::Aggregate(def) = item else {
            panic!("expected an aggregate")
        };
        assert!(!def.is_divisible());
        match &def.spec {
            AggSpec::ArgBest {
                minimize, outputs, ..
            } => {
                assert!(*minimize);
                assert_eq!(outputs.len(), 3);
                assert_eq!(outputs[0].0, "key");
                assert_eq!(outputs[0].2, Value::Int(-1));
                assert_eq!(outputs[1].2, Value::Float(0.0));
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn order_by_desc_maximizes() {
        let item = parse_sql_function(
            "function StrongestEnemy(u) returns SELECT e.key FROM E e WHERE e.player <> u.player ORDER BY e.health DESC LIMIT 1;",
        )
        .unwrap();
        let SqlItem::Aggregate(def) = item else {
            panic!("expected an aggregate")
        };
        match def.spec {
            AggSpec::ArgBest { minimize, .. } => assert!(!minimize),
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn figure_5_heal_becomes_a_nonstackable_effect() {
        let item = parse_sql_function(
            r#"
            function Heal(u) returns
              SELECT e.key, nonsql_max(e.inaura, _HEAL_AURA) AS inaura
              FROM E e
              WHERE u.player = e.player
                AND e.posx >= u.posx - _HEALER_RANGE AND e.posx <= u.posx + _HEALER_RANGE
                AND e.posy >= u.posy - _HEALER_RANGE AND e.posy <= u.posy + _HEALER_RANGE;
            "#,
        )
        .unwrap();
        let SqlItem::Action(def) = item else {
            panic!("expected an action")
        };
        assert_eq!(def.clauses.len(), 1);
        let clause = &def.clauses[0];
        assert_eq!(clause.effects.len(), 1);
        assert_eq!(clause.effects[0].0, "inaura");
        assert_eq!(clause.effects[0].1, Term::name("_HEAL_AURA"));
    }

    #[test]
    fn union_produces_multiple_effect_clauses() {
        let item = parse_sql_function(
            r#"
            function FireAt(u, target_key) returns
              SELECT e.key, e.damage + (_ARROW_HIT_DAMAGE - _ARMOR) * (Random(e, 1) mod 2) AS damage
              FROM E e
              WHERE e.key = target_key
              UNION
              SELECT e.key, e.weaponused + 1 AS weaponused
              FROM E e
              WHERE e.key = u.key;
            "#,
        )
        .unwrap();
        let SqlItem::Action(def) = item else {
            panic!("expected an action")
        };
        assert_eq!(def.clauses.len(), 2);
        assert_eq!(def.clauses[0].effects[0].0, "damage");
        assert!(matches!(
            def.clauses[0].effects[0].1,
            Term::Bin { op: BinOp::Mul, .. }
        ));
        assert_eq!(def.clauses[1].effects[0].0, "weaponused");
        assert_eq!(def.clauses[1].effects[0].1, Term::int(1));
    }

    #[test]
    fn pass_through_columns_contribute_no_effects() {
        let item = parse_sql_function(
            r#"
            function Mark(u) returns
              SELECT e.key, e.player, e.posx, e.posy, e.damage + 1 AS damage
              FROM E e
              WHERE e.key = u.key;
            "#,
        )
        .unwrap();
        let SqlItem::Action(def) = item else {
            panic!("expected an action")
        };
        assert_eq!(def.clauses[0].effects.len(), 1);
        assert_eq!(def.clauses[0].effects[0].0, "damage");
    }

    #[test]
    fn effect_extraction_rules() {
        let current = Term::row("damage");
        assert_eq!(extract_effect("damage", &current), None);
        let add = Term::bin(BinOp::Add, Term::row("damage"), Term::int(5));
        assert_eq!(extract_effect("damage", &add), Some(Term::int(5)));
        let add_flipped = Term::bin(BinOp::Add, Term::int(5), Term::row("damage"));
        assert_eq!(extract_effect("damage", &add_flipped), Some(Term::int(5)));
        let sub = Term::bin(BinOp::Sub, Term::row("damage"), Term::int(5));
        assert_eq!(
            extract_effect("damage", &sub),
            Some(Term::Neg(Box::new(Term::int(5))))
        );
        let unrelated = Term::bin(BinOp::Sub, Term::name("x"), Term::row("posx"));
        assert_eq!(
            extract_effect("movevect_x", &unrelated),
            Some(unrelated.clone())
        );
    }

    #[test]
    fn paper_definitions_type_check_against_the_paper_schema() {
        let schema = paper_schema();
        let registry = paper_registry_from_sql();
        check_registry(&registry, &schema).unwrap();
        assert_eq!(
            registry.aggregate_names(),
            paper_registry().aggregate_names()
        );
        assert_eq!(registry.action_names(), paper_registry().action_names());
        for name in [
            "_ARROW_HIT_DAMAGE",
            "_ARMOR",
            "_HEAL_AURA",
            "_HEALER_RANGE",
            "_TIME_RELOAD",
        ] {
            assert_eq!(
                registry.constant(name),
                paper_registry().constant(name),
                "constant {name}"
            );
        }
    }

    #[test]
    fn sql_and_rust_registries_agree_on_structure() {
        let from_sql = paper_registry_from_sql();
        let from_rust = paper_registry();
        for name in [
            "CountEnemiesInRange",
            "CentroidOfEnemyUnits",
            "getNearestEnemy",
        ] {
            let a = from_sql.aggregate(name).unwrap();
            let b = from_rust.aggregate(name).unwrap();
            assert_eq!(a.params, b.params, "{name} params");
            assert_eq!(a.output_names(), b.output_names(), "{name} outputs");
            assert_eq!(a.is_divisible(), b.is_divisible(), "{name} divisibility");
            assert_eq!(
                a.filter.conjuncts().map(|c| c.len()),
                b.filter.conjuncts().map(|c| c.len()),
                "{name} filter conjuncts"
            );
        }
        for name in ["FireAt", "MoveInDirection", "Heal"] {
            let a = from_sql.action(name).unwrap();
            let b = from_rust.action(name).unwrap();
            assert_eq!(a.params, b.params, "{name} params");
            assert_eq!(a.clauses.len(), b.clauses.len(), "{name} clauses");
            for (ca, cb) in a.clauses.iter().zip(&b.clauses) {
                let names_a: Vec<&String> = ca.effects.iter().map(|(n, _)| n).collect();
                let names_b: Vec<&String> = cb.effects.iter().map(|(n, _)| n).collect();
                assert_eq!(names_a, names_b, "{name} effect attributes");
            }
        }
    }

    #[test]
    fn round_trip_through_the_pretty_printer() {
        let registry = paper_registry_from_sql();
        for name in registry.aggregate_names() {
            let def = registry.aggregate(name).unwrap();
            let sql = aggregate_to_sql(def);
            let reparsed = parse_sql_function(&sql).unwrap();
            let SqlItem::Aggregate(def2) = reparsed else {
                panic!("expected aggregate")
            };
            assert_eq!(def2.name, def.name);
            assert_eq!(def2.params, def.params);
            assert_eq!(def2.output_names(), def.output_names());
            assert_eq!(def2.is_divisible(), def.is_divisible());
        }
        for name in registry.action_names() {
            let def = registry.action(name).unwrap();
            let sql = action_to_sql(def);
            let reparsed = parse_sql_function(&sql).unwrap();
            let SqlItem::Action(def2) = reparsed else {
                panic!("expected action")
            };
            assert_eq!(def2.name, def.name);
            assert_eq!(def2.clauses.len(), def.clauses.len());
        }
    }

    #[test]
    fn mods_can_replace_existing_definitions() {
        let mut registry = paper_registry();
        extend_registry_from_sql(
            &mut registry,
            r#"
            constant _ARROW_HIT_DAMAGE = 12;
            function CountEnemiesInRange(u, range) returns
              SELECT Count(*) FROM E e WHERE e.player <> u.player;
            "#,
        )
        .unwrap();
        assert_eq!(
            registry.constant("_ARROW_HIT_DAMAGE"),
            Some(&Value::Int(12))
        );
        let def = registry.aggregate("CountEnemiesInRange").unwrap();
        assert_eq!(def.filter.conjuncts().unwrap().len(), 1);
        // Untouched definitions survive.
        assert!(registry.action("Heal").is_some());
    }

    #[test]
    fn errors_are_reported() {
        // No parameters.
        assert!(parse_sql_items("function F() returns SELECT Count(*) FROM E e;").is_err());
        // Unknown table.
        assert!(parse_sql_items("function F(u) returns SELECT Count(*) FROM Other o;").is_err());
        // Mixed aggregate and plain columns.
        assert!(parse_sql_items(
            "function F(u) returns SELECT Count(*), e.posx FROM E e WHERE e.player <> u.player;"
        )
        .is_err());
        // LIMIT other than 1.
        assert!(parse_sql_items(
            "function F(u) returns SELECT e.key FROM E e ORDER BY e.health LIMIT 2;"
        )
        .is_err());
        // Action column without a name.
        assert!(parse_sql_items("function F(u) returns SELECT e.posx + 1 FROM E e;").is_err());
        // Action with no effects at all.
        assert!(parse_sql_items("function F(u) returns SELECT e.key FROM E e;").is_err());
        // Unknown scalar function.
        assert!(
            parse_sql_items("function F(u) returns SELECT Median(e.health) FROM E e;").is_err()
        );
        // Unknown alias.
        assert!(
            parse_sql_items("function F(u) returns SELECT Count(*) FROM E e WHERE x.key = 1;")
                .is_err()
        );
        // Garbage at the top level.
        assert!(parse_sql_items("select 1;").is_err());
        // Two definitions passed to the single-definition entry point.
        assert!(parse_sql_function(
            "constant _A = 1; function F(u) returns SELECT Count(*) FROM E e;"
        )
        .is_err());
    }

    #[test]
    fn where_clause_supports_boolean_structure() {
        let item = parse_sql_function(
            r#"
            function Wounded(u) returns
              SELECT Count(*)
              FROM E e
              WHERE (e.health < 10 OR e.health < u.health) AND NOT e.player = u.player;
            "#,
        )
        .unwrap();
        let SqlItem::Aggregate(def) = item else {
            panic!("expected aggregate")
        };
        // Not a conjunctive query (contains OR / NOT): conjuncts() refuses.
        assert!(def.filter.conjuncts().is_none());
    }

    #[test]
    fn abs_sqrt_and_random_in_definitions() {
        let item = parse_sql_function(
            r#"
            function Jitter(u) returns
              SELECT e.key, e.damage + abs(sqrt(Random(e, 3)) - 1) AS damage
              FROM E e
              WHERE e.key = u.key;
            "#,
        )
        .unwrap();
        let SqlItem::Action(def) = item else {
            panic!("expected action")
        };
        let effect = &def.clauses[0].effects[0].1;
        assert!(matches!(effect, Term::Abs(_)));
    }
}
