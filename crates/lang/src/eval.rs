//! Term and condition evaluation — the semantics functions `[[·]]term` and
//! `[[·]]cond` of §4.3.
//!
//! Evaluation is parameterised over an [`AggregateProvider`] so that the same
//! interpreter serves the naive executor (which computes aggregates by
//! scanning `E`) and the indexed executor (which answers them from per-tick
//! index structures).

use std::fmt;

use rustc_hash::FxHashMap;

use sgl_env::{AttrId, RowRef, Schema, TickRandom, Value};

use crate::ast::{AggCall, BinOp, Cond, Term, VarRef};
use crate::error::{LangError, Result};

/// A value produced by evaluating a term: either a scalar or a small named
/// record (the result of a multi-output aggregate such as a centroid).
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptValue {
    /// A single scalar value.
    Scalar(Value),
    /// A record of named scalar components, in declaration order.
    Record(Vec<(String, Value)>),
}

impl ScriptValue {
    /// Wrap a scalar.
    pub fn scalar(v: impl Into<Value>) -> ScriptValue {
        ScriptValue::Scalar(v.into())
    }

    /// Build a record value.
    pub fn record(fields: Vec<(String, Value)>) -> ScriptValue {
        ScriptValue::Record(fields)
    }

    /// View as a scalar. Single-field records coerce to their only field.
    pub fn as_scalar(&self) -> Result<&Value> {
        match self {
            ScriptValue::Scalar(v) => Ok(v),
            ScriptValue::Record(fields) if fields.len() == 1 => Ok(&fields[0].1),
            ScriptValue::Record(_) => Err(LangError::Semantic(
                "expected a scalar but found a record value".into(),
            )),
        }
    }

    /// Access a named field of a record.
    pub fn field(&self, name: &str) -> Result<&Value> {
        match self {
            ScriptValue::Record(fields) => fields
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .ok_or_else(|| LangError::Semantic(format!("record has no field `{name}`"))),
            ScriptValue::Scalar(_) => Err(LangError::Semantic(format!(
                "cannot access field `{name}` of a scalar value"
            ))),
        }
    }

    /// Flatten into positional scalar components (records expand in order).
    pub fn components(&self) -> Vec<Value> {
        match self {
            ScriptValue::Scalar(v) => vec![v.clone()],
            ScriptValue::Record(fields) => fields.iter().map(|(_, v)| v.clone()).collect(),
        }
    }

    /// Apply a binary operator to two values: scalars combine directly,
    /// multi-component values combine pointwise with the field-name
    /// preference rule below.  This is the one shared implementation of the
    /// `[[·]]term` binary-operation semantics — the tree-walking evaluator
    /// ([`eval_term`]) and the bytecode VM of `sgl-exec` both call it, so
    /// they cannot drift apart.
    pub fn zip_binop(op: BinOp, a: &ScriptValue, b: &ScriptValue) -> Result<ScriptValue> {
        let av = a.components();
        let bv = b.components();
        if av.len() == 1 && bv.len() == 1 {
            return Ok(ScriptValue::Scalar(apply_binop(op, &av[0], &bv[0])?));
        }
        if av.len() != bv.len() {
            return Err(LangError::Semantic(format!(
                "cannot combine values with {} and {} components",
                av.len(),
                bv.len()
            )));
        }
        // Pointwise operation; preserve field names from whichever side has
        // *meaningful* names (tuple literals only carry `_0`, `_1`, ...
        // placeholders, so a named record on the other side wins).
        let named = |v: &ScriptValue| -> Option<Vec<String>> {
            match v {
                ScriptValue::Record(fields) if fields.iter().any(|(n, _)| !n.starts_with('_')) => {
                    Some(fields.iter().map(|(n, _)| n.clone()).collect())
                }
                _ => None,
            }
        };
        let placeholder = |v: &ScriptValue| -> Option<Vec<String>> {
            match v {
                ScriptValue::Record(fields) => {
                    Some(fields.iter().map(|(n, _)| n.clone()).collect())
                }
                _ => None,
            }
        };
        let names: Vec<String> = named(a)
            .or_else(|| named(b))
            .or_else(|| placeholder(a))
            .or_else(|| placeholder(b))
            .unwrap_or_else(|| (0..av.len()).map(|i| format!("_{i}")).collect());
        let mut out = Vec::with_capacity(av.len());
        for i in 0..av.len() {
            out.push((names[i].clone(), apply_binop(op, &av[i], &bv[i])?));
        }
        Ok(ScriptValue::Record(out))
    }
}

impl fmt::Display for ScriptValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptValue::Scalar(v) => write!(f, "{v}"),
            ScriptValue::Record(fields) => {
                write!(f, "{{")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Apply a binary arithmetic operator to two scalars.
pub fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    Ok(match op {
        BinOp::Add => a.add(b)?,
        BinOp::Sub => a.sub(b)?,
        BinOp::Mul => a.mul(b)?,
        BinOp::Div => a.div(b)?,
        BinOp::Mod => a.rem(b)?,
    })
}

/// Answers aggregate-function calls during evaluation.
pub trait AggregateProvider {
    /// Evaluate the aggregate call for the unit described by `ctx`.
    fn evaluate(&mut self, call: &AggCall, ctx: &EvalContext<'_>) -> Result<ScriptValue>;
}

/// Provider that rejects every aggregate — used for contexts where aggregates
/// cannot occur (normalised scripts evaluate them through explicit `let`s).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAggregates;

impl AggregateProvider for NoAggregates {
    fn evaluate(&mut self, call: &AggCall, _ctx: &EvalContext<'_>) -> Result<ScriptValue> {
        Err(LangError::Semantic(format!(
            "aggregate `{}` cannot be evaluated in this context (script not normalised?)",
            call.name
        )))
    }
}

/// Evaluation context for a single unit (and optionally a candidate row when
/// evaluating built-in definitions).
pub struct EvalContext<'a> {
    /// Schema of the environment.
    pub schema: &'a Schema,
    /// The current unit `u` (a columnar row cursor or a standalone tuple).
    pub unit: RowRef<'a>,
    /// Key of the current unit (pre-extracted for the random function).
    pub unit_key: i64,
    /// The candidate row `e`, when evaluating built-in filter/effect terms.
    pub row: Option<RowRef<'a>>,
    /// Per-tick random function.
    pub rng: &'a TickRandom,
    /// Game constants (from the registry).
    pub constants: &'a FxHashMap<String, Value>,
    /// `let` variables and bound parameters.
    pub bindings: FxHashMap<String, ScriptValue>,
}

impl<'a> EvalContext<'a> {
    /// Create a context for evaluating script terms for one unit.
    pub fn new(
        schema: &'a Schema,
        unit: impl Into<RowRef<'a>>,
        rng: &'a TickRandom,
        constants: &'a FxHashMap<String, Value>,
    ) -> EvalContext<'a> {
        let unit = unit.into();
        let unit_key = unit.key(schema);
        EvalContext {
            schema,
            unit,
            unit_key,
            row: None,
            rng,
            constants,
            bindings: FxHashMap::default(),
        }
    }

    /// Derive a context that additionally exposes a candidate row `e`.
    pub fn with_row(&self, row: impl Into<RowRef<'a>>) -> EvalContext<'a> {
        let row = row.into();
        EvalContext {
            schema: self.schema,
            unit: self.unit,
            unit_key: self.unit_key,
            row: Some(row),
            rng: self.rng,
            constants: self.constants,
            bindings: self.bindings.clone(),
        }
    }

    /// Bind a variable (let variable or parameter).
    pub fn bind(&mut self, name: &str, value: ScriptValue) {
        self.bindings.insert(name.to_string(), value);
    }

    fn attr(&self, name: &str) -> Result<AttrId> {
        self.schema
            .attr_id(name)
            .ok_or_else(|| LangError::Unresolved(format!("u.{name}")))
    }
}

/// Evaluate a term in the given context.
pub fn eval_term(
    term: &Term,
    ctx: &EvalContext<'_>,
    aggs: &mut dyn AggregateProvider,
) -> Result<ScriptValue> {
    match term {
        Term::Const(v) => Ok(ScriptValue::Scalar(v.clone())),
        Term::Var(VarRef::Unit(attr)) => {
            let id = ctx.attr(attr)?;
            Ok(ScriptValue::Scalar(ctx.unit.get(id)))
        }
        Term::Var(VarRef::Row(attr)) => {
            let row = ctx.row.ok_or_else(|| {
                LangError::Semantic(format!(
                    "`e.{attr}` referenced outside a built-in definition"
                ))
            })?;
            let id = ctx.attr(attr)?;
            Ok(ScriptValue::Scalar(row.get(id)))
        }
        Term::Var(VarRef::Name(name)) => {
            if let Some(v) = ctx.bindings.get(name) {
                return Ok(v.clone());
            }
            if let Some(v) = ctx.constants.get(name) {
                return Ok(ScriptValue::Scalar(v.clone()));
            }
            Err(LangError::Unresolved(name.clone()))
        }
        Term::Random(seed) => {
            let i = eval_term(seed, ctx, aggs)?.as_scalar()?.as_i64()?;
            Ok(ScriptValue::Scalar(Value::Int(
                ctx.rng.value(ctx.unit_key, i),
            )))
        }
        Term::Agg(call) => aggs.evaluate(call, ctx),
        Term::Bin { op, left, right } => {
            let l = eval_term(left, ctx, aggs)?;
            let r = eval_term(right, ctx, aggs)?;
            ScriptValue::zip_binop(*op, &l, &r)
        }
        Term::Neg(t) => {
            let v = eval_term(t, ctx, aggs)?;
            match v {
                ScriptValue::Scalar(v) => Ok(ScriptValue::Scalar(v.neg()?)),
                ScriptValue::Record(fields) => Ok(ScriptValue::Record(
                    fields
                        .into_iter()
                        .map(|(n, v)| Ok((n, v.neg()?)))
                        .collect::<Result<Vec<_>>>()?,
                )),
            }
        }
        Term::Abs(t) => Ok(ScriptValue::Scalar(
            eval_term(t, ctx, aggs)?.as_scalar()?.abs()?,
        )),
        Term::Sqrt(t) => Ok(ScriptValue::Scalar(
            eval_term(t, ctx, aggs)?.as_scalar()?.sqrt()?,
        )),
        Term::Field(t, field) => {
            let v = eval_term(t, ctx, aggs)?;
            Ok(ScriptValue::Scalar(v.field(field)?.clone()))
        }
        Term::Tuple(items) => {
            let mut fields = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let v = eval_term(item, ctx, aggs)?;
                fields.push((format!("_{i}"), v.as_scalar()?.clone()));
            }
            Ok(ScriptValue::Record(fields))
        }
    }
}

/// Evaluate a condition in the given context.
pub fn eval_cond(
    cond: &Cond,
    ctx: &EvalContext<'_>,
    aggs: &mut dyn AggregateProvider,
) -> Result<bool> {
    match cond {
        Cond::Lit(b) => Ok(*b),
        Cond::Cmp { op, left, right } => {
            let l = eval_term(left, ctx, aggs)?;
            let r = eval_term(right, ctx, aggs)?;
            let ls = l.as_scalar()?;
            let rs = r.as_scalar()?;
            if matches!(op, crate::ast::CmpOp::Eq) {
                return Ok(ls.loose_eq(rs));
            }
            if matches!(op, crate::ast::CmpOp::Ne) {
                return Ok(!ls.loose_eq(rs));
            }
            let ord = ls.compare(rs)?;
            Ok(op.holds(ord))
        }
        Cond::And(a, b) => Ok(eval_cond(a, ctx, aggs)? && eval_cond(b, ctx, aggs)?),
        Cond::Or(a, b) => Ok(eval_cond(a, ctx, aggs)? || eval_cond(b, ctx, aggs)?),
        Cond::Not(c) => Ok(!eval_cond(c, ctx, aggs)?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::parser::{parse_cond, parse_term};
    use sgl_env::{schema::paper_schema, GameRng, TupleBuilder};

    struct FixedAgg(ScriptValue);

    impl AggregateProvider for FixedAgg {
        fn evaluate(&mut self, _call: &AggCall, _ctx: &EvalContext<'_>) -> Result<ScriptValue> {
            Ok(self.0.clone())
        }
    }

    fn fixture() -> (
        sgl_env::Schema,
        sgl_env::Tuple,
        TickRandom,
        FxHashMap<String, Value>,
    ) {
        let schema = paper_schema();
        let unit = TupleBuilder::new(&schema)
            .set("key", 7i64)
            .unwrap()
            .set("player", 1i64)
            .unwrap()
            .set("posx", 3.0)
            .unwrap()
            .set("posy", 4.0)
            .unwrap()
            .set("health", 20i64)
            .unwrap()
            .set("cooldown", 0i64)
            .unwrap()
            .build();
        let rng = GameRng::new(1).for_tick(0);
        let mut constants = FxHashMap::default();
        constants.insert("_ARMOR".to_string(), Value::Int(2));
        (schema, unit, rng, constants)
    }

    #[test]
    fn unit_attributes_and_constants_resolve() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let mut aggs = NoAggregates;
        let v = eval_term(&parse_term("u.posx + 1").unwrap(), &ctx, &mut aggs).unwrap();
        assert_eq!(v, ScriptValue::Scalar(Value::Float(4.0)));
        let v = eval_term(&parse_term("_ARMOR * 3").unwrap(), &ctx, &mut aggs).unwrap();
        assert_eq!(v, ScriptValue::Scalar(Value::Int(6)));
        assert!(eval_term(&parse_term("missing_var").unwrap(), &ctx, &mut aggs).is_err());
    }

    #[test]
    fn let_bindings_shadow_constants() {
        let (schema, unit, rng, constants) = fixture();
        let mut ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        ctx.bind("_ARMOR", ScriptValue::scalar(100i64));
        let mut aggs = NoAggregates;
        let v = eval_term(&parse_term("_ARMOR").unwrap(), &ctx, &mut aggs).unwrap();
        assert_eq!(v, ScriptValue::Scalar(Value::Int(100)));
    }

    #[test]
    fn row_attributes_require_a_row() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let mut aggs = NoAggregates;
        assert!(eval_term(&parse_term("e.posx").unwrap(), &ctx, &mut aggs).is_err());

        let other = TupleBuilder::new(&schema)
            .set("key", 9i64)
            .unwrap()
            .set("posx", 8.0)
            .unwrap()
            .build();
        let ctx2 = ctx.with_row(&other);
        let v = eval_term(&parse_term("e.posx - u.posx").unwrap(), &ctx2, &mut aggs).unwrap();
        assert_eq!(v, ScriptValue::Scalar(Value::Float(5.0)));
    }

    #[test]
    fn random_is_deterministic_within_tick() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let mut aggs = NoAggregates;
        let t = parse_term("Random(1) mod 2").unwrap();
        let a = eval_term(&t, &ctx, &mut aggs).unwrap();
        let b = eval_term(&t, &ctx, &mut aggs).unwrap();
        assert_eq!(a, b);
        let v = a.as_scalar().unwrap().as_i64().unwrap();
        assert!(v == 0 || v == 1);
    }

    #[test]
    fn records_combine_pointwise() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let centroid = ScriptValue::record(vec![
            ("x".into(), Value::Float(1.0)),
            ("y".into(), Value::Float(2.0)),
        ]);
        let mut aggs = FixedAgg(centroid);
        let t = parse_term("(u.posx, u.posy) - SomeCentroid(u)").unwrap();
        let v = eval_term(&t, &ctx, &mut aggs).unwrap();
        match v {
            ScriptValue::Record(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].1, Value::Float(2.0));
                assert_eq!(fields[1].1, Value::Float(2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn record_component_mismatch_is_an_error() {
        let a = ScriptValue::record(vec![
            ("x".into(), Value::Int(1)),
            ("y".into(), Value::Int(2)),
        ]);
        let b = ScriptValue::record(vec![("x".into(), Value::Int(1))]);
        assert!(ScriptValue::zip_binop(BinOp::Add, &a, &b).is_err());
    }

    #[test]
    fn field_access_on_aggregate_results() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let record = ScriptValue::record(vec![
            ("key".into(), Value::Int(42)),
            ("posx".into(), Value::Float(0.0)),
        ]);
        let mut aggs = FixedAgg(record);
        let t = parse_term("getNearestEnemy(u).key").unwrap();
        let v = eval_term(&t, &ctx, &mut aggs).unwrap();
        assert_eq!(v, ScriptValue::Scalar(Value::Int(42)));
        // Unknown field errors.
        let t = parse_term("getNearestEnemy(u).wrong").unwrap();
        assert!(eval_term(&t, &ctx, &mut aggs).is_err());
    }

    #[test]
    fn conditions_evaluate() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let mut aggs = NoAggregates;
        assert!(eval_cond(
            &parse_cond("u.health = 20 and u.cooldown = 0").unwrap(),
            &ctx,
            &mut aggs
        )
        .unwrap());
        assert!(eval_cond(&parse_cond("u.health != 3").unwrap(), &ctx, &mut aggs).unwrap());
        assert!(!eval_cond(&parse_cond("u.health < 3").unwrap(), &ctx, &mut aggs).unwrap());
        assert!(eval_cond(
            &parse_cond("u.health < 3 or true").unwrap(),
            &ctx,
            &mut aggs
        )
        .unwrap());
        assert!(eval_cond(&parse_cond("not (u.health < 3)").unwrap(), &ctx, &mut aggs).unwrap());
    }

    #[test]
    fn no_aggregates_provider_rejects() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let mut aggs = NoAggregates;
        let t = parse_term("CountEnemiesInRange(u, 5)").unwrap();
        assert!(eval_term(&t, &ctx, &mut aggs).is_err());
    }

    #[test]
    fn scalar_record_coercions() {
        let single = ScriptValue::record(vec![("value".into(), Value::Int(3))]);
        assert_eq!(single.as_scalar().unwrap(), &Value::Int(3));
        let multi = ScriptValue::record(vec![
            ("x".into(), Value::Int(1)),
            ("y".into(), Value::Int(2)),
        ]);
        assert!(multi.as_scalar().is_err());
        assert_eq!(multi.components().len(), 2);
        assert!(ScriptValue::scalar(1i64).field("x").is_err());
        assert_eq!(format!("{multi}"), "{x: 1, y: 2}");
        assert_eq!(format!("{}", ScriptValue::scalar(5i64)), "5");
    }

    #[test]
    fn comparison_operators_all_work() {
        let (schema, unit, rng, constants) = fixture();
        let ctx = EvalContext::new(&schema, &unit, &rng, &constants);
        let mut aggs = NoAggregates;
        for (src, expected) in [
            ("1 < 2", true),
            ("2 <= 2", true),
            ("3 > 2", true),
            ("2 >= 3", false),
            ("2 = 2", true),
            ("2 != 2", false),
        ] {
            assert_eq!(
                eval_cond(&parse_cond(src).unwrap(), &ctx, &mut aggs).unwrap(),
                expected,
                "{src}"
            );
        }
        let _ = CmpOp::Eq;
    }
}
