//! Built-in aggregate and action functions (paper §4.3, Figures 4 and 5).
//!
//! The paper restricts built-ins to two SQL shapes: aggregate functions of the
//! form of Eq. (5) (`SELECT a1(h1), ..., ak(hk) FROM E e WHERE φ(u, e, r)`) and
//! action functions of the form of Eq. (4) (`SELECT e.K, h1 AS A1, ... FROM E e
//! WHERE φ(u, e, r)`).  This module represents those shapes declaratively so
//! that the optimizer and the index planner can analyse the filter `φ` and the
//! aggregate functions, and the executors can evaluate them either naively or
//! through indexes.

use rustc_hash::FxHashMap;

use sgl_env::Value;

use crate::ast::{CmpOp, Cond, Term};

/// SQL aggregate functions supported inside built-in aggregate definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimpleAgg {
    /// `COUNT(*)` — number of matching rows.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// Population standard deviation of `expr` (a "statistical moment" in the
    /// paper's terminology; divisible like sum and count).
    StdDev,
}

impl SimpleAgg {
    /// Is this aggregate divisible in the sense of Definition 5.1?
    /// (`agg(A \ B)` computable from `agg(A)` and `agg(B)`.)
    pub fn is_divisible(self) -> bool {
        !matches!(self, SimpleAgg::Min | SimpleAgg::Max)
    }
}

/// One output column of an aggregate definition.
#[derive(Debug, Clone, PartialEq)]
pub struct AggOutput {
    /// Column name (`x`, `y`, `value`, `key`, ...).
    pub name: String,
    /// Aggregate function applied.
    pub func: SimpleAgg,
    /// Value expression over the candidate row `e.*` (and `u.*`/parameters).
    pub value: Term,
    /// Result when no row matches the filter.
    pub default: Value,
}

/// The aggregate shape: either a tuple of SQL aggregates over the same filter
/// or an *argmin/argmax* ("return attributes of the best row") aggregate such
/// as `getNearestEnemy`.
#[derive(Debug, Clone, PartialEq)]
pub enum AggSpec {
    /// Plain SQL aggregates (Eq. (5)).
    Simple {
        /// Output columns.
        outputs: Vec<AggOutput>,
    },
    /// Return expressions of the row minimising (or maximising) a rank term.
    ArgBest {
        /// True → argmin, false → argmax.
        minimize: bool,
        /// Ranking expression over `e.*` and `u.*` (e.g. squared distance).
        rank: Term,
        /// Output columns: `(name, expression over the best row, default)`.
        outputs: Vec<(String, Term, Value)>,
    },
}

/// A built-in aggregate function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateDef {
    /// Name used in scripts.
    pub name: String,
    /// Parameter names; the first is always the acting unit `u`.
    pub params: Vec<String>,
    /// The selection `φ(u, e, r)` deciding which rows participate.
    pub filter: Cond,
    /// The aggregate outputs.
    pub spec: AggSpec,
}

impl AggregateDef {
    /// Names of the output columns in order.
    pub fn output_names(&self) -> Vec<&str> {
        match &self.spec {
            AggSpec::Simple { outputs } => outputs.iter().map(|o| o.name.as_str()).collect(),
            AggSpec::ArgBest { outputs, .. } => {
                outputs.iter().map(|(n, _, _)| n.as_str()).collect()
            }
        }
    }

    /// True when every output is a divisible aggregate (count/sum/avg/stddev).
    pub fn is_divisible(&self) -> bool {
        match &self.spec {
            AggSpec::Simple { outputs } => outputs.iter().all(|o| o.func.is_divisible()),
            AggSpec::ArgBest { .. } => false,
        }
    }
}

/// One effect clause of an action: a filter selecting affected rows plus the
/// effect-attribute assignments applied to each of them.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectClause {
    /// Which rows `e` are affected.
    pub filter: Cond,
    /// `(effect attribute, value expression over u.*, e.*, parameters, Random)`.
    pub effects: Vec<(String, Term)>,
}

/// A built-in action function definition (Eq. (4), possibly with several
/// clauses — e.g. `FireAt` damages the target *and* marks the shooter's weapon
/// as used).
#[derive(Debug, Clone, PartialEq)]
pub struct ActionDef {
    /// Name used in `perform` statements.
    pub name: String,
    /// Parameter names; the first is always the acting unit `u`.
    pub params: Vec<String>,
    /// Effect clauses.
    pub clauses: Vec<EffectClause>,
}

/// Registry of built-ins and game constants available to scripts.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    aggregates: FxHashMap<String, AggregateDef>,
    actions: FxHashMap<String, ActionDef>,
    constants: FxHashMap<String, Value>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register an aggregate definition, replacing any previous one.
    pub fn register_aggregate(&mut self, def: AggregateDef) {
        self.aggregates.insert(def.name.clone(), def);
    }

    /// Register an action definition, replacing any previous one.
    pub fn register_action(&mut self, def: ActionDef) {
        self.actions.insert(def.name.clone(), def);
    }

    /// Define a game constant (e.g. `_ARROW_HIT_DAMAGE`).
    pub fn set_constant(&mut self, name: &str, value: impl Into<Value>) {
        self.constants.insert(name.to_string(), value.into());
    }

    /// Look up an aggregate by name.
    pub fn aggregate(&self, name: &str) -> Option<&AggregateDef> {
        self.aggregates.get(name)
    }

    /// Look up an action by name.
    pub fn action(&self, name: &str) -> Option<&ActionDef> {
        self.actions.get(name)
    }

    /// Look up a constant by name.
    pub fn constant(&self, name: &str) -> Option<&Value> {
        self.constants.get(name)
    }

    /// All constants (used to seed evaluation contexts).
    pub fn constants(&self) -> &FxHashMap<String, Value> {
        &self.constants
    }

    /// Iterate over registered aggregate names (sorted, for stable output).
    pub fn aggregate_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.aggregates.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Iterate over registered aggregates as `(name, def)` pairs, sorted by
    /// name — name and definition come from the same map entry, so callers
    /// never need a second fallible look-up.
    pub fn aggregates(&self) -> Vec<(&str, &AggregateDef)> {
        let mut defs: Vec<(&str, &AggregateDef)> = self
            .aggregates
            .iter()
            .map(|(name, def)| (name.as_str(), def))
            .collect();
        defs.sort_unstable_by_key(|(name, _)| *name);
        defs
    }

    /// Iterate over registered action names (sorted).
    pub fn action_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.actions.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// Helper: the standard rectangular "in range" filter used throughout the
/// paper (Figure 4): `e.posx ∈ [u.posx ± range] ∧ e.posy ∈ [u.posy ± range]`.
pub fn rect_range_filter(range: Term) -> Cond {
    let lo_x = Term::bin(crate::ast::BinOp::Sub, Term::unit("posx"), range.clone());
    let hi_x = Term::bin(crate::ast::BinOp::Add, Term::unit("posx"), range.clone());
    let lo_y = Term::bin(crate::ast::BinOp::Sub, Term::unit("posy"), range.clone());
    let hi_y = Term::bin(crate::ast::BinOp::Add, Term::unit("posy"), range);
    Cond::and(
        Cond::and(
            Cond::cmp(CmpOp::Ge, Term::row("posx"), lo_x),
            Cond::cmp(CmpOp::Le, Term::row("posx"), hi_x),
        ),
        Cond::and(
            Cond::cmp(CmpOp::Ge, Term::row("posy"), lo_y),
            Cond::cmp(CmpOp::Le, Term::row("posy"), hi_y),
        ),
    )
}

/// Helper: `e.player <> u.player` (enemy rows).
pub fn enemy_filter() -> Cond {
    Cond::cmp(CmpOp::Ne, Term::row("player"), Term::unit("player"))
}

/// Helper: `e.player = u.player` (friendly rows).
pub fn ally_filter() -> Cond {
    Cond::cmp(CmpOp::Eq, Term::row("player"), Term::unit("player"))
}

/// Squared Euclidean distance between the candidate row and the current unit.
pub fn squared_distance() -> Term {
    use crate::ast::BinOp::*;
    let dx = Term::bin(Sub, Term::row("posx"), Term::unit("posx"));
    let dy = Term::bin(Sub, Term::row("posy"), Term::unit("posy"));
    Term::bin(
        Add,
        Term::bin(Mul, dx.clone(), dx),
        Term::bin(Mul, dy.clone(), dy),
    )
}

/// Build the registry containing exactly the built-ins used by the paper's
/// example script (Figure 3) and its SQL definitions (Figures 4 and 5),
/// against the paper schema of Eq. (1).
///
/// The constants mirror the `_ARROW_HIT_DAMAGE`, `_ARMOR`, `_HEAL_AURA`,
/// `_HEALER_RANGE` and `_TIME_RELOAD` placeholders of the paper.
pub fn paper_registry() -> Registry {
    let mut reg = Registry::new();
    reg.set_constant("_ARROW_HIT_DAMAGE", 6i64);
    reg.set_constant("_ARMOR", 2i64);
    reg.set_constant("_HEAL_AURA", 4i64);
    reg.set_constant("_HEALER_RANGE", 8.0f64);
    reg.set_constant("_TIME_RELOAD", 3i64);
    reg.set_constant("_WALK_DIST_PER_TICK", 1.0f64);

    // CountEnemiesInRange(u, range): Figure 4, first definition.
    reg.register_aggregate(AggregateDef {
        name: "CountEnemiesInRange".into(),
        params: vec!["u".into(), "range".into()],
        filter: Cond::and(rect_range_filter(Term::name("range")), enemy_filter()),
        spec: AggSpec::Simple {
            outputs: vec![AggOutput {
                name: "value".into(),
                func: SimpleAgg::Count,
                value: Term::int(1),
                default: Value::Int(0),
            }],
        },
    });

    // CentroidOfEnemyUnits(u, range): Figure 4, second definition.
    reg.register_aggregate(AggregateDef {
        name: "CentroidOfEnemyUnits".into(),
        params: vec!["u".into(), "range".into()],
        filter: Cond::and(rect_range_filter(Term::name("range")), enemy_filter()),
        spec: AggSpec::Simple {
            outputs: vec![
                AggOutput {
                    name: "x".into(),
                    func: SimpleAgg::Avg,
                    value: Term::row("posx"),
                    default: Value::Float(0.0),
                },
                AggOutput {
                    name: "y".into(),
                    func: SimpleAgg::Avg,
                    value: Term::row("posy"),
                    default: Value::Float(0.0),
                },
            ],
        },
    });

    // getNearestEnemy(u): nearest-neighbour spatial aggregate (§5.3.2).
    reg.register_aggregate(AggregateDef {
        name: "getNearestEnemy".into(),
        params: vec!["u".into()],
        filter: enemy_filter(),
        spec: AggSpec::ArgBest {
            minimize: true,
            rank: squared_distance(),
            outputs: vec![
                ("key".into(), Term::row("key"), Value::Int(-1)),
                ("posx".into(), Term::row("posx"), Value::Float(0.0)),
                ("posy".into(), Term::row("posy"), Value::Float(0.0)),
            ],
        },
    });

    // FireAt(u, target_key): Figure 5, damages the target and marks the
    // shooter's weapon as used.
    reg.register_action(ActionDef {
        name: "FireAt".into(),
        params: vec!["u".into(), "target_key".into()],
        clauses: vec![
            EffectClause {
                filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::name("target_key")),
                effects: vec![(
                    "damage".into(),
                    Term::bin(
                        crate::ast::BinOp::Mul,
                        Term::bin(
                            crate::ast::BinOp::Sub,
                            Term::name("_ARROW_HIT_DAMAGE"),
                            Term::name("_ARMOR"),
                        ),
                        Term::bin(
                            crate::ast::BinOp::Mod,
                            Term::Random(Box::new(Term::int(1))),
                            Term::int(2),
                        ),
                    ),
                )],
            },
            EffectClause {
                filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::unit("key")),
                effects: vec![("weaponused".into(), Term::int(1))],
            },
        ],
    });

    // MoveInDirection(u, x, y): Figure 5, sets the movement vector of the
    // acting unit towards the point (x, y).
    reg.register_action(ActionDef {
        name: "MoveInDirection".into(),
        params: vec!["u".into(), "x".into(), "y".into()],
        clauses: vec![EffectClause {
            filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::unit("key")),
            effects: vec![
                (
                    "movevect_x".into(),
                    Term::bin(crate::ast::BinOp::Sub, Term::name("x"), Term::row("posx")),
                ),
                (
                    "movevect_y".into(),
                    Term::bin(crate::ast::BinOp::Sub, Term::name("y"), Term::row("posy")),
                ),
            ],
        }],
    });

    // Heal(u): Figure 5, a nonstackable healing aura applied to every friendly
    // unit within the healer's range (an area-of-effect action, §5.4).  The
    // paper's `abs(u.posx - e.posx) < _HEALER_RANGE` is expressed in the
    // equivalent orthogonal-range form (§5.3.1 notes games use rectangles for
    // areas of effect) so the filter analysis can index it.
    reg.register_action(ActionDef {
        name: "Heal".into(),
        params: vec!["u".into()],
        clauses: vec![EffectClause {
            filter: Cond::and(
                ally_filter(),
                rect_range_filter(Term::name("_HEALER_RANGE")),
            ),
            effects: vec![("inaura".into(), Term::name("_HEAL_AURA"))],
        }],
    });

    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisibility_classification() {
        assert!(SimpleAgg::Count.is_divisible());
        assert!(SimpleAgg::Sum.is_divisible());
        assert!(SimpleAgg::Avg.is_divisible());
        assert!(SimpleAgg::StdDev.is_divisible());
        assert!(!SimpleAgg::Min.is_divisible());
        assert!(!SimpleAgg::Max.is_divisible());
    }

    #[test]
    fn paper_registry_contains_figure_definitions() {
        let reg = paper_registry();
        assert!(reg.aggregate("CountEnemiesInRange").is_some());
        assert!(reg.aggregate("CentroidOfEnemyUnits").is_some());
        assert!(reg.aggregate("getNearestEnemy").is_some());
        assert!(reg.action("FireAt").is_some());
        assert!(reg.action("MoveInDirection").is_some());
        assert!(reg.action("Heal").is_some());
        assert!(reg.aggregate("Nope").is_none());
        assert!(reg.action("Nope").is_none());
        assert_eq!(reg.aggregate_names().len(), 3);
        assert_eq!(reg.action_names().len(), 3);
    }

    #[test]
    fn constants_are_available() {
        let reg = paper_registry();
        assert_eq!(reg.constant("_ARMOR"), Some(&Value::Int(2)));
        assert_eq!(reg.constant("_MISSING"), None);
        assert!(reg.constants().len() >= 5);
    }

    #[test]
    fn aggregate_metadata() {
        let reg = paper_registry();
        let count = reg.aggregate("CountEnemiesInRange").unwrap();
        assert!(count.is_divisible());
        assert_eq!(count.output_names(), vec!["value"]);
        let centroid = reg.aggregate("CentroidOfEnemyUnits").unwrap();
        assert!(centroid.is_divisible());
        assert_eq!(centroid.output_names(), vec!["x", "y"]);
        let nearest = reg.aggregate("getNearestEnemy").unwrap();
        assert!(!nearest.is_divisible());
        assert_eq!(nearest.output_names(), vec!["key", "posx", "posy"]);
    }

    #[test]
    fn range_filter_is_a_conjunctive_query() {
        let f = Cond::and(rect_range_filter(Term::name("range")), enemy_filter());
        let conjuncts = f.conjuncts().unwrap();
        assert_eq!(conjuncts.len(), 5);
    }

    #[test]
    fn fire_at_has_two_clauses() {
        let reg = paper_registry();
        let fire = reg.action("FireAt").unwrap();
        assert_eq!(fire.clauses.len(), 2);
        assert_eq!(fire.params, vec!["u".to_string(), "target_key".to_string()]);
    }

    #[test]
    fn registry_replaces_on_reregistration() {
        let mut reg = paper_registry();
        let original = reg.aggregate("CountEnemiesInRange").unwrap().clone();
        let mut modified = original.clone();
        modified.params.push("extra".into());
        reg.register_aggregate(modified);
        assert_eq!(
            reg.aggregate("CountEnemiesInRange").unwrap().params.len(),
            original.params.len() + 1
        );
    }
}
