//! Errors for lexing, parsing, normalisation and type checking of SGL.

use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced by the SGL front end.
#[derive(Debug, Clone, PartialEq)]
pub enum LangError {
    /// Unexpected character during lexing.
    Lex {
        /// Position of the offending character.
        pos: Pos,
        /// Explanation.
        message: String,
    },
    /// Parse error.
    Parse {
        /// Position where parsing failed.
        pos: Pos,
        /// Explanation.
        message: String,
    },
    /// Semantic / type error (unknown attribute, wrong arity, ...).
    Semantic(String),
    /// A name (aggregate, action, variable) could not be resolved.
    Unresolved(String),
    /// Errors from the environment layer bubbled up during evaluation.
    Env(sgl_env::EnvError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            LangError::Unresolved(name) => write!(f, "unresolved name `{name}`"),
            LangError::Env(e) => write!(f, "environment error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<sgl_env::EnvError> for LangError {
    fn from(e: sgl_env::EnvError) -> Self {
        LangError::Env(e)
    }
}

/// Result alias for the SGL front end.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_positions_and_messages() {
        let e = LangError::Parse {
            pos: Pos { line: 3, col: 7 },
            message: "expected `)`".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("expected"));
        assert!(LangError::Unresolved("Foo".into())
            .to_string()
            .contains("Foo"));
        assert!(LangError::Semantic("bad".into())
            .to_string()
            .contains("bad"));
        assert!(LangError::Lex {
            pos: Pos::default(),
            message: "x".into()
        }
        .to_string()
        .contains("lex"));
    }

    #[test]
    fn env_errors_convert() {
        let e: LangError = sgl_env::EnvError::MissingKey.into();
        assert!(matches!(e, LangError::Env(_)));
        assert!(e.to_string().contains("key"));
    }
}
