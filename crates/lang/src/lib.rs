//! # sgl-lang — the SGL scripting language
//!
//! SGL (Scalable Games Language, §4 of *Scaling Games to Epic Proportions*)
//! is a purely functional scripting language for per-unit game AI.  A script
//! computes aggregate values about the environment (`let`), branches on them
//! (`if ... then ... else`) and issues effects through `perform` statements.
//! Because every built-in aggregate and action is restricted to the SQL
//! shapes of Eq. (4)/(5), whole populations of scripts can be compiled into
//! set-at-a-time query plans by the `sgl-algebra` and `sgl-exec` crates.
//!
//! This crate provides the front end:
//!
//! * [`lexer`] / [`parser`] — concrete syntax → [`ast`];
//! * [`mod@normalize`] — helper-function inlining and aggregate hoisting into the
//!   normal form assumed by the optimizer (§5.1);
//! * [`typecheck`] — attribute, arity and scoping checks for scripts and for
//!   built-in definitions;
//! * [`builtins`] — declarative definitions of built-in aggregate and action
//!   functions (Figures 4 and 5), plus game constants;
//! * [`eval`] — the single-unit semantics `[[·]]term` / `[[·]]cond` used by the
//!   naive executor and by built-in evaluation;
//! * [`pretty`] — printing ASTs back to SGL source.
//!
//! ```
//! use sgl_lang::parser::parse_script;
//! use sgl_lang::normalize::normalize;
//! use sgl_lang::builtins::paper_registry;
//!
//! let script = parse_script(
//!     "main(u) { if CountEnemiesInRange(u, 5) > 3 then perform MoveInDirection(u, 0, 0); }",
//! ).unwrap();
//! let normal = normalize(&script, &paper_registry()).unwrap();
//! assert!(sgl_lang::normalize::is_normal_form(&normal.body));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod pretty;
pub mod sql;
pub mod typecheck;

pub use ast::{Action, AggCall, BinOp, CmpOp, Cond, FunctionDef, Script, Term, VarRef};
pub use builtins::{ActionDef, AggSpec, AggregateDef, EffectClause, Registry, SimpleAgg};
pub use error::{LangError, Result};
pub use eval::{AggregateProvider, EvalContext, NoAggregates, ScriptValue};
pub use normalize::{normalize, NormalScript};
pub use parser::{parse_cond, parse_script, parse_term};
pub use sql::{extend_registry_from_sql, parse_sql_registry, SqlItem};
pub use typecheck::{check_registry, check_script, CheckReport};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_front_end_pipeline() {
        let schema = sgl_env::schema::paper_schema();
        let registry = builtins::paper_registry();
        let script = parse_script(
            r#"
            main(u) {
              (let c = CountEnemiesInRange(u, 12))
              if c > 0 and u.cooldown = 0 then
                (let target = getNearestEnemy(u).key)
                  perform FireAt(u, target);
            }
            "#,
        )
        .unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let report = check_script(&normal, &schema, &registry).unwrap();
        assert_eq!(report.aggregate_calls, 2);
        assert_eq!(report.performs, 1);
        check_registry(&registry, &schema).unwrap();
    }
}
