//! Normalisation of SGL scripts (paper §5.1).
//!
//! The optimizer assumes scripts are in a *normal form* in which aggregate
//! functions occur only as the right-hand side of `let` statements, never
//! nested inside larger terms, conditions or `perform` arguments.  The paper
//! notes this is without loss of generality; this module performs the
//! rewriting:
//!
//! 1. user-defined helper functions are inlined into `main` (binding their
//!    parameters with `let`s);
//! 2. every aggregate call that is not already the entire RHS of a `let` is
//!    hoisted into a fresh `let __aggN = ...` directly above its use.

use crate::ast::{Action, AggCall, Cond, FunctionDef, Script, Term, VarRef};
use crate::builtins::Registry;
use crate::error::{LangError, Result};

/// Maximum depth of helper-function inlining before we assume recursion.
const MAX_INLINE_DEPTH: usize = 32;

/// A normalised script: a single action tree in aggregate normal form.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalScript {
    /// Name of the unit parameter of `main` (usually `u`).
    pub unit_param: String,
    /// The normalised body.
    pub body: Action,
}

/// Normalise a parsed script against a registry (needed to tell aggregate
/// calls apart from calls to user-defined helper action functions).
pub fn normalize(script: &Script, registry: &Registry) -> Result<NormalScript> {
    let inlined = inline_functions(&script.main, script, registry, 0)?;
    let mut counter = 0usize;
    let body = hoist_action(inlined, &mut counter);
    Ok(NormalScript {
        unit_param: script
            .main
            .params
            .first()
            .cloned()
            .unwrap_or_else(|| "u".into()),
        body,
    })
}

/// Inline calls to user-defined helper functions.  `perform Helper(args)`
/// becomes the helper body with its parameters bound by `let`s (the first
/// parameter, the unit, needs no binding: the callee sees the same unit).
fn inline_functions(
    def: &FunctionDef,
    script: &Script,
    registry: &Registry,
    depth: usize,
) -> Result<Action> {
    if depth > MAX_INLINE_DEPTH {
        return Err(LangError::Semantic(format!(
            "helper functions nest deeper than {MAX_INLINE_DEPTH} levels; recursive scripts are not supported"
        )));
    }
    inline_in_action(&def.body, script, registry, depth)
}

fn inline_in_action(
    action: &Action,
    script: &Script,
    registry: &Registry,
    depth: usize,
) -> Result<Action> {
    Ok(match action {
        Action::Let { name, term, body } => Action::Let {
            name: name.clone(),
            term: term.clone(),
            body: Box::new(inline_in_action(body, script, registry, depth)?),
        },
        Action::Seq(items) => Action::Seq(
            items
                .iter()
                .map(|a| inline_in_action(a, script, registry, depth))
                .collect::<Result<Vec<_>>>()?,
        ),
        Action::If { cond, then, els } => Action::If {
            cond: cond.clone(),
            then: Box::new(inline_in_action(then, script, registry, depth)?),
            els: match els {
                Some(e) => Some(Box::new(inline_in_action(e, script, registry, depth)?)),
                None => None,
            },
        },
        Action::Perform { name, args } => {
            if registry.action(name).is_some() {
                // A built-in action: leave as is.
                Action::Perform {
                    name: name.clone(),
                    args: args.clone(),
                }
            } else if let Some(helper) = script.function(name) {
                // Bind parameters (skipping the unit parameter) and inline.
                let expected = helper.params.len();
                if args.len() != expected {
                    return Err(LangError::Semantic(format!(
                        "call to `{name}` passes {} arguments but it declares {expected} parameters",
                        args.len()
                    )));
                }
                let mut body = inline_functions(helper, script, registry, depth + 1)?;
                // Wrap in lets, innermost parameter first so that earlier
                // parameters are visible to later bindings if ever needed.
                for (param, arg) in helper
                    .params
                    .iter()
                    .zip(args.iter())
                    .skip(1)
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                {
                    body = Action::Let {
                        name: param.clone(),
                        term: arg.clone(),
                        body: Box::new(body),
                    };
                }
                body
            } else {
                // Unknown name: leave it; the type checker reports it with a
                // better message.
                Action::Perform {
                    name: name.clone(),
                    args: args.clone(),
                }
            }
        }
        Action::Nop => Action::Nop,
    })
}

/// Hoist nested aggregate calls out of terms/conditions into fresh `let`s.
fn hoist_action(action: Action, counter: &mut usize) -> Action {
    match action {
        Action::Let { name, term, body } => {
            let body = Box::new(hoist_action(*body, counter));
            // If the RHS is exactly an aggregate call it is already in normal
            // form; otherwise extract any nested aggregates first.
            if matches!(term, Term::Agg(_)) {
                return Action::Let { name, term, body };
            }
            let (new_term, hoisted) = hoist_term(term, counter);
            wrap_lets(
                hoisted,
                Action::Let {
                    name,
                    term: new_term,
                    body,
                },
            )
        }
        Action::Seq(items) => Action::Seq(
            items
                .into_iter()
                .map(|a| hoist_action(a, counter))
                .collect(),
        ),
        Action::If { cond, then, els } => {
            let (new_cond, hoisted) = hoist_cond(cond, counter);
            let inner = Action::If {
                cond: new_cond,
                then: Box::new(hoist_action(*then, counter)),
                els: els.map(|e| Box::new(hoist_action(*e, counter))),
            };
            wrap_lets(hoisted, inner)
        }
        Action::Perform { name, args } => {
            let mut all_hoisted = Vec::new();
            let mut new_args = Vec::with_capacity(args.len());
            for arg in args {
                let (t, hoisted) = hoist_term(arg, counter);
                all_hoisted.extend(hoisted);
                new_args.push(t);
            }
            wrap_lets(
                all_hoisted,
                Action::Perform {
                    name,
                    args: new_args,
                },
            )
        }
        Action::Nop => Action::Nop,
    }
}

fn wrap_lets(hoisted: Vec<(String, AggCall)>, inner: Action) -> Action {
    let mut action = inner;
    for (name, call) in hoisted.into_iter().rev() {
        action = Action::Let {
            name,
            term: Term::Agg(call),
            body: Box::new(action),
        };
    }
    action
}

/// Replace nested aggregate calls in a term by fresh variables; returns the
/// rewritten term and the extracted `(variable, call)` pairs in occurrence
/// order.
fn hoist_term(term: Term, counter: &mut usize) -> (Term, Vec<(String, AggCall)>) {
    let mut hoisted = Vec::new();
    let new_term = hoist_term_inner(term, counter, &mut hoisted);
    (new_term, hoisted)
}

fn fresh_name(counter: &mut usize) -> String {
    let name = format!("__agg{counter}");
    *counter += 1;
    name
}

fn hoist_term_inner(term: Term, counter: &mut usize, out: &mut Vec<(String, AggCall)>) -> Term {
    match term {
        Term::Agg(call) => {
            // Arguments of aggregates are scalar terms over `u`; nested
            // aggregates inside them are hoisted too (rare but legal).
            let args = call
                .args
                .into_iter()
                .map(|a| hoist_term_inner(a, counter, out))
                .collect();
            let name = fresh_name(counter);
            out.push((
                name.clone(),
                AggCall {
                    name: call.name,
                    args,
                },
            ));
            Term::Var(VarRef::Name(name))
        }
        Term::Const(_) | Term::Var(_) => term,
        Term::Random(t) => Term::Random(Box::new(hoist_term_inner(*t, counter, out))),
        Term::Neg(t) => Term::Neg(Box::new(hoist_term_inner(*t, counter, out))),
        Term::Abs(t) => Term::Abs(Box::new(hoist_term_inner(*t, counter, out))),
        Term::Sqrt(t) => Term::Sqrt(Box::new(hoist_term_inner(*t, counter, out))),
        Term::Field(t, field) => Term::Field(Box::new(hoist_term_inner(*t, counter, out)), field),
        Term::Bin { op, left, right } => Term::Bin {
            op,
            left: Box::new(hoist_term_inner(*left, counter, out)),
            right: Box::new(hoist_term_inner(*right, counter, out)),
        },
        Term::Tuple(items) => Term::Tuple(
            items
                .into_iter()
                .map(|i| hoist_term_inner(i, counter, out))
                .collect(),
        ),
    }
}

fn hoist_cond(cond: Cond, counter: &mut usize) -> (Cond, Vec<(String, AggCall)>) {
    let mut out = Vec::new();
    let c = hoist_cond_inner(cond, counter, &mut out);
    (c, out)
}

fn hoist_cond_inner(cond: Cond, counter: &mut usize, out: &mut Vec<(String, AggCall)>) -> Cond {
    match cond {
        Cond::Lit(b) => Cond::Lit(b),
        Cond::Cmp { op, left, right } => Cond::Cmp {
            op,
            left: hoist_term_inner(left, counter, out),
            right: hoist_term_inner(right, counter, out),
        },
        Cond::And(a, b) => Cond::And(
            Box::new(hoist_cond_inner(*a, counter, out)),
            Box::new(hoist_cond_inner(*b, counter, out)),
        ),
        Cond::Or(a, b) => Cond::Or(
            Box::new(hoist_cond_inner(*a, counter, out)),
            Box::new(hoist_cond_inner(*b, counter, out)),
        ),
        Cond::Not(c) => Cond::Not(Box::new(hoist_cond_inner(*c, counter, out))),
    }
}

/// Check that an action is in aggregate normal form: aggregates appear only
/// as the entire RHS of `let` statements.
pub fn is_normal_form(action: &Action) -> bool {
    fn term_clean(t: &Term) -> bool {
        !t.contains_aggregate()
    }
    fn cond_clean(c: &Cond) -> bool {
        !c.contains_aggregate()
    }
    match action {
        Action::Let { term, body, .. } => {
            let rhs_ok = match term {
                Term::Agg(call) => call.args.iter().all(term_clean),
                other => term_clean(other),
            };
            rhs_ok && is_normal_form(body)
        }
        Action::Seq(items) => items.iter().all(is_normal_form),
        Action::If { cond, then, els } => {
            cond_clean(cond)
                && is_normal_form(then)
                && els.as_ref().is_none_or(|e| is_normal_form(e))
        }
        Action::Perform { args, .. } => args.iter().all(term_clean),
        Action::Nop => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::paper_registry;
    use crate::parser::parse_script;

    const FIGURE_3: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, u.range))
          (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
            if (c > u.morale) then
              perform MoveInDirection(u, away_vector);
            else if (c > 0 and u.cooldown = 0) then
              (let target_key = getNearestEnemy(u).key) {
                perform FireAt(u, target_key);
              }
          }
        }
    "#;

    #[test]
    fn figure_three_normalises_to_normal_form() {
        let script = parse_script(FIGURE_3).unwrap();
        let reg = paper_registry();
        assert!(
            !is_normal_form(&script.main.body),
            "figure 3 nests aggregates inside terms"
        );
        let normal = normalize(&script, &reg).unwrap();
        assert!(is_normal_form(&normal.body));
        assert_eq!(normal.unit_param, "u");
        // All three aggregate calls survive.
        let mut aggs = Vec::new();
        normal.body.collect_aggregates(&mut aggs);
        assert_eq!(aggs.len(), 3);
        // And the same number of performs.
        assert_eq!(normal.body.count_performs(), 2);
    }

    #[test]
    fn aggregates_in_conditions_are_hoisted() {
        let src = r#"
            main(u) {
              if CountEnemiesInRange(u, 5) > 3 then perform MoveInDirection(u, 0, 0);
            }
        "#;
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        assert!(is_normal_form(&normal.body));
        match &normal.body {
            Action::Let { name, term, .. } => {
                assert!(name.starts_with("__agg"));
                assert!(matches!(term, Term::Agg(_)));
            }
            other => panic!("expected hoisted let, got {other:?}"),
        }
    }

    #[test]
    fn aggregates_in_perform_args_are_hoisted() {
        let src = r#"
            main(u) {
              perform MoveInDirection(u, CentroidOfEnemyUnits(u, 10).x, 0);
            }
        "#;
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        assert!(is_normal_form(&normal.body));
    }

    #[test]
    fn helper_functions_are_inlined() {
        let src = r#"
            function Flee(u, dist) {
              perform MoveInDirection(u, u.posx + dist, u.posy);
            }
            main(u) {
              if u.health < 5 then perform Flee(u, 10);
            }
        "#;
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        // The perform of Flee has been replaced by a let + MoveInDirection.
        assert_eq!(normal.body.count_performs(), 1);
        fn find_perform(a: &Action) -> Option<&str> {
            match a {
                Action::Let { body, .. } => find_perform(body),
                Action::Seq(items) => items.iter().find_map(find_perform),
                Action::If { then, els, .. } => {
                    find_perform(then).or_else(|| els.as_ref().and_then(|e| find_perform(e)))
                }
                Action::Perform { name, .. } => Some(name),
                Action::Nop => None,
            }
        }
        assert_eq!(find_perform(&normal.body), Some("MoveInDirection"));
    }

    #[test]
    fn wrong_arity_helper_call_is_an_error() {
        let src = r#"
            function Flee(u, dist) { perform MoveInDirection(u, dist, 0); }
            main(u) { perform Flee(u); }
        "#;
        let script = parse_script(src).unwrap();
        assert!(normalize(&script, &paper_registry()).is_err());
    }

    #[test]
    fn recursive_helpers_are_rejected() {
        let src = r#"
            function Loop(u) { perform Loop(u); }
            main(u) { perform Loop(u); }
        "#;
        let script = parse_script(src).unwrap();
        let err = normalize(&script, &paper_registry()).unwrap_err();
        assert!(matches!(err, LangError::Semantic(_)));
    }

    #[test]
    fn unknown_actions_are_left_for_the_type_checker() {
        let src = "main(u) { perform Mystery(u); }";
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        assert_eq!(normal.body.count_performs(), 1);
    }

    #[test]
    fn already_normal_scripts_are_unchanged_in_shape() {
        let src = r#"
            main(u) {
              (let c = CountEnemiesInRange(u, 5))
              if c > 0 then perform MoveInDirection(u, 0, 0);
            }
        "#;
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        assert!(is_normal_form(&normal.body));
        match &normal.body {
            Action::Let { name, .. } => assert_eq!(name, "c"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let src = r#"
            main(u) {
              if CountEnemiesInRange(u, 5) > CountEnemiesInRange(u, 10) then
                perform MoveInDirection(u, 0, 0);
            }
        "#;
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        assert!(is_normal_form(&normal.body));
        // Two hoisted lets with distinct names.
        fn collect_let_names(a: &Action, out: &mut Vec<String>) {
            match a {
                Action::Let { name, body, .. } => {
                    out.push(name.clone());
                    collect_let_names(body, out);
                }
                Action::Seq(items) => items.iter().for_each(|i| collect_let_names(i, out)),
                Action::If { then, els, .. } => {
                    collect_let_names(then, out);
                    if let Some(e) = els {
                        collect_let_names(e, out);
                    }
                }
                _ => {}
            }
        }
        let mut names = Vec::new();
        collect_let_names(&normal.body, &mut names);
        let hoisted: Vec<&String> = names.iter().filter(|n| n.starts_with("__agg")).collect();
        assert_eq!(hoisted.len(), 2);
        assert_ne!(hoisted[0], hoisted[1]);
    }
}
