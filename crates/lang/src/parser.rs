//! Recursive-descent parser for SGL scripts.
//!
//! The concrete syntax follows the grammar of §4.1 and the example script of
//! Figure 3: scripts consist of helper `function` definitions and a `main(u)`
//! entry point; statements are `let` bindings, conditionals, `perform`
//! statements, blocks and the empty statement.

use sgl_env::Value;

use crate::ast::{Action, AggCall, BinOp, CmpOp, Cond, FunctionDef, Script, Term, VarRef};
use crate::error::{LangError, Pos, Result};
use crate::lexer::{tokenize, Tok, Token};

/// Parse a complete SGL script.
pub fn parse_script(src: &str) -> Result<Script> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        unit_param: "u".to_string(),
    };
    p.script()
}

/// Parse a single term (used by tests and by programmatic builders).
pub fn parse_term(src: &str) -> Result<Term> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        unit_param: "u".to_string(),
    };
    let t = p.term()?;
    p.expect_eof()?;
    Ok(t)
}

/// Parse a single condition.
pub fn parse_cond(src: &str) -> Result<Cond> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        unit_param: "u".to_string(),
    };
    let c = p.cond()?;
    p.expect_eof()?;
    Ok(c)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    unit_param: String,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek_pos(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(LangError::Parse {
            pos: self.peek_pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(LangError::Parse {
                pos: self.peek_pos(),
                message: format!("unexpected trailing input {:?}", self.peek()),
            })
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn is_keyword(name: &str) -> bool {
        matches!(
            name,
            "let"
                | "if"
                | "then"
                | "else"
                | "perform"
                | "function"
                | "and"
                | "or"
                | "not"
                | "true"
                | "false"
                | "mod"
        )
    }

    // ---------------------------------------------------------------- script

    fn script(&mut self) -> Result<Script> {
        let mut functions = Vec::new();
        let mut main = None;
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(name) if name == "function" => {
                    self.bump();
                    functions.push(self.function_def()?);
                }
                Tok::Ident(name) if name == "main" => {
                    self.bump();
                    let def = self.function_body("main".to_string())?;
                    if main.is_some() {
                        return self.err("duplicate main function");
                    }
                    main = Some(def);
                }
                other => {
                    return self.err(format!("expected `function` or `main`, found {other:?}"))
                }
            }
        }
        let main = main.ok_or(LangError::Semantic("script has no main(u) function".into()))?;
        Ok(Script { functions, main })
    }

    fn function_def(&mut self) -> Result<FunctionDef> {
        let name = self.ident()?;
        if Self::is_keyword(&name) {
            return self.err(format!("`{name}` cannot be used as a function name"));
        }
        self.function_body(name)
    }

    fn function_body(&mut self, name: String) -> Result<FunctionDef> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if let Some(first) = params.first() {
            self.unit_param = first.clone();
        }
        self.expect(Tok::LBrace)?;
        let body = self.statement_sequence(Tok::RBrace)?;
        self.expect(Tok::RBrace)?;
        Ok(FunctionDef { name, params, body })
    }

    // -------------------------------------------------------------- actions

    fn statement_sequence(&mut self, terminator: Tok) -> Result<Action> {
        let mut items = Vec::new();
        while *self.peek() != terminator && *self.peek() != Tok::Eof {
            let stmt = self.statement()?;
            if stmt != Action::Nop {
                items.push(stmt);
            }
        }
        Ok(match items.len() {
            0 => Action::Nop,
            1 => items.pop().unwrap(),
            _ => Action::Seq(items),
        })
    }

    fn statement(&mut self) -> Result<Action> {
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                Ok(Action::Nop)
            }
            Tok::LBrace => {
                self.bump();
                let seq = self.statement_sequence(Tok::RBrace)?;
                self.expect(Tok::RBrace)?;
                Ok(seq)
            }
            Tok::LParen if matches!(self.peek2(), Tok::Ident(n) if n == "let") => {
                self.bump(); // (
                self.bump(); // let
                let name = self.ident()?;
                self.expect(Tok::Eq)?;
                let term = self.term()?;
                self.expect(Tok::RParen)?;
                let body = self.statement()?;
                Ok(Action::Let {
                    name,
                    term,
                    body: Box::new(body),
                })
            }
            Tok::Ident(name) if name == "if" => {
                self.bump();
                let cond = self.cond()?;
                match self.peek().clone() {
                    Tok::Ident(t) if t == "then" => {
                        self.bump();
                    }
                    _ => return self.err("expected `then` after if condition"),
                }
                let then = self.statement()?;
                let els = match self.peek().clone() {
                    Tok::Ident(e) if e == "else" => {
                        self.bump();
                        Some(Box::new(self.statement()?))
                    }
                    _ => None,
                };
                Ok(Action::If {
                    cond,
                    then: Box::new(then),
                    els,
                })
            }
            Tok::Ident(name) if name == "perform" => {
                self.bump();
                let fname = self.ident()?;
                self.expect(Tok::LParen)?;
                let args = self.arg_list()?;
                self.expect(Tok::RParen)?;
                if *self.peek() == Tok::Semi {
                    self.bump();
                }
                Ok(Action::Perform { name: fname, args })
            }
            other => self.err(format!("expected a statement, found {other:?}")),
        }
    }

    fn arg_list(&mut self) -> Result<Vec<Term>> {
        let mut args = Vec::new();
        if *self.peek() == Tok::RParen {
            return Ok(args);
        }
        loop {
            args.push(self.term()?);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(args)
    }

    // ----------------------------------------------------------- conditions

    fn cond(&mut self) -> Result<Cond> {
        self.cond_or()
    }

    fn cond_or(&mut self) -> Result<Cond> {
        let mut left = self.cond_and()?;
        loop {
            match self.peek().clone() {
                Tok::Ident(n) if n == "or" => {
                    self.bump();
                    let right = self.cond_and()?;
                    left = Cond::or(left, right);
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn cond_and(&mut self) -> Result<Cond> {
        let mut left = self.cond_not()?;
        loop {
            match self.peek().clone() {
                Tok::Ident(n) if n == "and" => {
                    self.bump();
                    let right = self.cond_not()?;
                    left = Cond::and(left, right);
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn cond_not(&mut self) -> Result<Cond> {
        match self.peek().clone() {
            Tok::Ident(n) if n == "not" => {
                self.bump();
                Ok(Cond::not(self.cond_not()?))
            }
            _ => self.cond_primary(),
        }
    }

    fn cond_primary(&mut self) -> Result<Cond> {
        match self.peek().clone() {
            Tok::Ident(n) if n == "true" => {
                self.bump();
                return Ok(Cond::Lit(true));
            }
            Tok::Ident(n) if n == "false" => {
                self.bump();
                return Ok(Cond::Lit(false));
            }
            _ => {}
        }
        // Try `term cmp term` first; fall back to a parenthesised condition.
        let save = self.pos;
        match self.comparison() {
            Ok(c) => Ok(c),
            Err(first_err) => {
                self.pos = save;
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let inner = self.cond()?;
                    self.expect(Tok::RParen)?;
                    Ok(inner)
                } else {
                    Err(first_err)
                }
            }
        }
    }

    fn comparison(&mut self) -> Result<Cond> {
        let left = self.term()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected a comparison operator, found {other:?}")),
        };
        self.bump();
        let right = self.term()?;
        Ok(Cond::Cmp { op, left, right })
    }

    // ---------------------------------------------------------------- terms

    fn term(&mut self) -> Result<Term> {
        self.add_sub()
    }

    fn add_sub(&mut self) -> Result<Term> {
        let mut left = self.mul_div()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_div()?;
            left = Term::bin(op, left, right);
        }
        Ok(left)
    }

    fn mul_div(&mut self) -> Result<Term> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Ident(n) if n == "mod" => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Term::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Term> {
        if *self.peek() == Tok::Minus {
            self.bump();
            return Ok(Term::Neg(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Term> {
        let mut t = self.primary()?;
        while *self.peek() == Tok::Dot {
            // `.field` on a non-variable primary (e.g. an aggregate call).
            // Variable field access is resolved in `primary` already.
            self.bump();
            let field = self.ident()?;
            t = Term::Field(Box::new(t), field);
        }
        Ok(t)
    }

    fn primary(&mut self) -> Result<Term> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Term::Const(Value::Int(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Term::Const(Value::Float(v)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Term::Const(Value::str(s)))
            }
            Tok::LParen => {
                self.bump();
                let first = self.term()?;
                if *self.peek() == Tok::Comma {
                    let mut items = vec![first];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        items.push(self.term()?);
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Term::Tuple(items))
                } else {
                    self.expect(Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::Ident(name) => {
                if Self::is_keyword(&name) {
                    return self.err(format!("unexpected keyword `{name}` in a term"));
                }
                self.bump();
                // Function call?
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let args = self.arg_list()?;
                    self.expect(Tok::RParen)?;
                    if name == "Random" {
                        if args.len() != 1 {
                            return self.err("Random takes exactly one argument");
                        }
                        return Ok(Term::Random(Box::new(args.into_iter().next().unwrap())));
                    }
                    if name == "abs" {
                        if args.len() != 1 {
                            return self.err("abs takes exactly one argument");
                        }
                        return Ok(Term::Abs(Box::new(args.into_iter().next().unwrap())));
                    }
                    if name == "sqrt" {
                        if args.len() != 1 {
                            return self.err("sqrt takes exactly one argument");
                        }
                        return Ok(Term::Sqrt(Box::new(args.into_iter().next().unwrap())));
                    }
                    return Ok(Term::Agg(AggCall { name, args }));
                }
                // Attribute access `u.attr` / `e.attr` / `var.field`.
                if *self.peek() == Tok::Dot {
                    if let Tok::Ident(field) = self.peek2().clone() {
                        self.bump(); // .
                        self.bump(); // field
                        if name == self.unit_param {
                            return Ok(Term::Var(VarRef::Unit(field)));
                        }
                        if name == "e" {
                            return Ok(Term::Var(VarRef::Row(field)));
                        }
                        return Ok(Term::Field(Box::new(Term::Var(VarRef::Name(name))), field));
                    }
                }
                Ok(Term::Var(VarRef::Name(name)))
            }
            other => self.err(format!("expected a term, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_3: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, u.range))
          (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
            if (c > u.morale) then
              perform MoveInDirection(u, away_vector);
            else if (c > 0 and u.cooldown = 0) then
              (let target_key = getNearestEnemy(u).key) {
                perform FireAt(u, target_key);
              }
          }
        }
    "#;

    #[test]
    fn figure_three_parses() {
        let script = parse_script(FIGURE_3).unwrap();
        assert_eq!(script.main.name, "main");
        assert_eq!(script.main.params, vec!["u".to_string()]);
        // Outer structure: let c = ... (let away_vector = ... (if ...))
        match &script.main.body {
            Action::Let { name, term, body } => {
                assert_eq!(name, "c");
                assert!(matches!(term, Term::Agg(_)));
                match body.as_ref() {
                    Action::Let { name, body, .. } => {
                        assert_eq!(name, "away_vector");
                        assert!(matches!(body.as_ref(), Action::If { .. }));
                    }
                    other => panic!("expected nested let, got {other:?}"),
                }
            }
            other => panic!("expected let, got {other:?}"),
        }
        let mut aggs = Vec::new();
        script.main.body.collect_aggregates(&mut aggs);
        assert_eq!(aggs.len(), 3);
        assert_eq!(script.main.body.count_performs(), 2);
    }

    #[test]
    fn terms_parse_with_precedence() {
        let t = parse_term("1 + 2 * 3").unwrap();
        match t {
            Term::Bin {
                op: BinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(*right, Term::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        let t = parse_term("(1 + 2) * 3").unwrap();
        assert!(matches!(t, Term::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn unit_and_row_attributes() {
        assert_eq!(parse_term("u.posx").unwrap(), Term::unit("posx"));
        assert_eq!(parse_term("e.posx").unwrap(), Term::row("posx"));
        assert_eq!(
            parse_term("nearest.key").unwrap(),
            Term::Field(Box::new(Term::name("nearest")), "key".into())
        );
    }

    #[test]
    fn random_abs_sqrt_and_mod() {
        assert!(matches!(parse_term("Random(1)").unwrap(), Term::Random(_)));
        assert!(matches!(parse_term("abs(u.posx)").unwrap(), Term::Abs(_)));
        assert!(matches!(parse_term("sqrt(2)").unwrap(), Term::Sqrt(_)));
        assert!(matches!(
            parse_term("Random(1) mod 2").unwrap(),
            Term::Bin { op: BinOp::Mod, .. }
        ));
        assert!(parse_term("Random(1, 2)").is_err());
        assert!(parse_term("abs(1, 2)").is_err());
        assert!(parse_term("sqrt()").is_err());
    }

    #[test]
    fn tuples_and_field_access_on_calls() {
        let t = parse_term("(u.posx, u.posy)").unwrap();
        assert!(matches!(t, Term::Tuple(ref items) if items.len() == 2));
        let t = parse_term("getNearestEnemy(u).key").unwrap();
        match t {
            Term::Field(inner, field) => {
                assert_eq!(field, "key");
                assert!(matches!(*inner, Term::Agg(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_numbers() {
        assert!(matches!(parse_term("-5").unwrap(), Term::Neg(_)));
        assert!(matches!(
            parse_term("3 - -2").unwrap(),
            Term::Bin { op: BinOp::Sub, .. }
        ));
    }

    #[test]
    fn conditions_with_boolean_connectives() {
        let c = parse_cond("c > 0 and u.cooldown = 0").unwrap();
        assert!(matches!(c, Cond::And(_, _)));
        let c = parse_cond("not (a = 1 or b < 2)").unwrap();
        assert!(matches!(c, Cond::Not(_)));
        let c = parse_cond("true").unwrap();
        assert_eq!(c, Cond::Lit(true));
        let c = parse_cond("(x = 1)").unwrap();
        assert!(matches!(c, Cond::Cmp { op: CmpOp::Eq, .. }));
    }

    #[test]
    fn string_literals_in_terms() {
        let c = parse_cond("u.unittype = \"knight\"").unwrap();
        match c {
            Cond::Cmp {
                right: Term::Const(v),
                ..
            } => assert_eq!(v.as_str(), Some("knight")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn helper_functions_parse() {
        let src = r#"
            function Flee(u, dist) {
              perform MoveInDirection(u, dist, 0);
            }
            main(u) {
              if u.health < 5 then perform Flee(u, 10);
            }
        "#;
        let script = parse_script(src).unwrap();
        assert_eq!(script.functions.len(), 1);
        assert_eq!(
            script.functions[0].params,
            vec!["u".to_string(), "dist".to_string()]
        );
        assert!(script.function("Flee").is_some());
    }

    #[test]
    fn sequencing_inside_blocks() {
        let src = r#"
            main(u) {
              perform A(u);
              perform B(u);
              perform C(u);
            }
        "#;
        let script = parse_script(src).unwrap();
        match &script.main.body {
            Action::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("expected sequence, got {other:?}"),
        }
    }

    #[test]
    fn empty_main_is_nop() {
        let script = parse_script("main(u) { }").unwrap();
        assert_eq!(script.main.body, Action::Nop);
        let script = parse_script("main(u) { ; ; }").unwrap();
        assert_eq!(script.main.body, Action::Nop);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_script("main(u) { perform }").is_err());
        assert!(parse_script("main(u) { if then perform A(u); }").is_err());
        assert!(parse_script("main(u) { (let = 3) ; }").is_err());
        assert!(parse_script("function f(u) { }").is_err()); // no main
        assert!(parse_script("main(u) { } main(u) { }").is_err());
        assert!(parse_script("banana(u) { }").is_err());
        assert!(parse_term("1 +").is_err());
        assert!(parse_cond("1 ++ 2").is_err());
    }

    #[test]
    fn custom_unit_parameter_name() {
        let src = "main(self) { if self.health < 3 then perform Flee(self); }";
        let script = parse_script(src).unwrap();
        match &script.main.body {
            Action::If { cond, .. } => match cond {
                Cond::Cmp { left, .. } => assert_eq!(left, &Term::unit("health")),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            main(u) {
              if u.health < 3 then perform Flee(u);
              else if u.health < 10 then perform Hold(u);
              else perform Charge(u);
            }
        "#;
        let script = parse_script(src).unwrap();
        match &script.main.body {
            Action::If { els: Some(els), .. } => {
                assert!(matches!(els.as_ref(), Action::If { els: Some(_), .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
