//! Lexer for SGL source text.

use crate::error::{LangError, Pos, Result};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword candidate.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (double quoted).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind.
    pub tok: Tok,
    /// Position of the first character.
    pub pos: Pos,
}

/// Tokenize SGL source text.
///
/// Comments run from `#` or `//` to the end of the line.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let pos_of = |line: u32, col: u32| Pos { line, col };

    while i < chars.len() {
        let c = chars[i];
        let start = pos_of(line, col);
        macro_rules! advance {
            () => {{
                if chars[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }};
        }
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance!();
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            '(' => {
                tokens.push(Token {
                    tok: Tok::LParen,
                    pos: start,
                });
                advance!();
            }
            ')' => {
                tokens.push(Token {
                    tok: Tok::RParen,
                    pos: start,
                });
                advance!();
            }
            '{' => {
                tokens.push(Token {
                    tok: Tok::LBrace,
                    pos: start,
                });
                advance!();
            }
            '}' => {
                tokens.push(Token {
                    tok: Tok::RBrace,
                    pos: start,
                });
                advance!();
            }
            ',' => {
                tokens.push(Token {
                    tok: Tok::Comma,
                    pos: start,
                });
                advance!();
            }
            ';' => {
                tokens.push(Token {
                    tok: Tok::Semi,
                    pos: start,
                });
                advance!();
            }
            '.' => {
                tokens.push(Token {
                    tok: Tok::Dot,
                    pos: start,
                });
                advance!();
            }
            '+' => {
                tokens.push(Token {
                    tok: Tok::Plus,
                    pos: start,
                });
                advance!();
            }
            '-' => {
                tokens.push(Token {
                    tok: Tok::Minus,
                    pos: start,
                });
                advance!();
            }
            '*' => {
                tokens.push(Token {
                    tok: Tok::Star,
                    pos: start,
                });
                advance!();
            }
            '/' => {
                tokens.push(Token {
                    tok: Tok::Slash,
                    pos: start,
                });
                advance!();
            }
            '=' => {
                advance!();
                if i < chars.len() && chars[i] == '=' {
                    advance!();
                }
                tokens.push(Token {
                    tok: Tok::Eq,
                    pos: start,
                });
            }
            '!' => {
                advance!();
                if i < chars.len() && chars[i] == '=' {
                    advance!();
                    tokens.push(Token {
                        tok: Tok::Ne,
                        pos: start,
                    });
                } else {
                    return Err(LangError::Lex {
                        pos: start,
                        message: "expected `=` after `!`".into(),
                    });
                }
            }
            '<' => {
                advance!();
                if i < chars.len() && chars[i] == '=' {
                    advance!();
                    tokens.push(Token {
                        tok: Tok::Le,
                        pos: start,
                    });
                } else if i < chars.len() && chars[i] == '>' {
                    advance!();
                    tokens.push(Token {
                        tok: Tok::Ne,
                        pos: start,
                    });
                } else {
                    tokens.push(Token {
                        tok: Tok::Lt,
                        pos: start,
                    });
                }
            }
            '>' => {
                advance!();
                if i < chars.len() && chars[i] == '=' {
                    advance!();
                    tokens.push(Token {
                        tok: Tok::Ge,
                        pos: start,
                    });
                } else {
                    tokens.push(Token {
                        tok: Tok::Gt,
                        pos: start,
                    });
                }
            }
            '"' => {
                advance!();
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == '"' {
                        advance!();
                        closed = true;
                        break;
                    }
                    s.push(chars[i]);
                    advance!();
                }
                if !closed {
                    return Err(LangError::Lex {
                        pos: start,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    // A `.` not followed by a digit is a field access, not a decimal point.
                    if chars[i] == '.' {
                        if i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() {
                            break;
                        }
                        is_float = true;
                    }
                    text.push(chars[i]);
                    advance!();
                }
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LangError::Lex {
                        pos: start,
                        message: format!("invalid float literal `{text}`"),
                    })?;
                    tokens.push(Token {
                        tok: Tok::Float(v),
                        pos: start,
                    });
                } else {
                    let v: i64 = text.parse().map_err(|_| LangError::Lex {
                        pos: start,
                        message: format!("invalid integer literal `{text}`"),
                    })?;
                    tokens.push(Token {
                        tok: Tok::Int(v),
                        pos: start,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    advance!();
                }
                tokens.push(Token {
                    tok: Tok::Ident(text),
                    pos: start,
                });
            }
            other => {
                return Err(LangError::Lex {
                    pos: start,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        pos: pos_of(line, col),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            kinds("( ) { } , ; . + - * / = != < <= > >= <>"),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Comma,
                Tok::Semi,
                Tok::Dot,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_identifiers_and_field_access() {
        assert_eq!(
            kinds("42 3.5 u.posx _HEAL_AURA getNearestEnemy"),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Ident("u".into()),
                Tok::Dot,
                Tok::Ident("posx".into()),
                Tok::Ident("_HEAL_AURA".into()),
                Tok::Ident("getNearestEnemy".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn number_followed_by_dot_field_is_not_a_float() {
        // `2.key` lexes as Int(2), Dot, Ident(key) — field access on a tuple.
        assert_eq!(
            kinds("2.key"),
            vec![Tok::Int(2), Tok::Dot, Tok::Ident("key".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 # a comment\n2 // another\n3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            kinds("\"knight\""),
            vec![Tok::Str("knight".into()), Tok::Eof]
        );
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn double_equals_accepted() {
        assert_eq!(
            kinds("a == b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_characters_error_with_position() {
        let err = tokenize("a $ b").unwrap_err();
        match err {
            LangError::Lex { pos, .. } => assert_eq!(pos, Pos { line: 1, col: 3 }),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(tokenize("!x").is_err());
    }

    #[test]
    fn figure_three_script_lexes() {
        let src = r#"
            main(u) {
              (let c = CountEnemiesInRange(u, u.range))
              (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
                if (c > u.morale) then
                  perform MoveInDirection(u, away_vector);
                else if (c > 0 and u.cooldown = 0) then
                  (let target_key = getNearestEnemy(u).key) {
                    perform FireAt(u, target_key);
                  }
              }
            }
        "#;
        let toks = tokenize(src).unwrap();
        assert!(toks.len() > 50);
        assert_eq!(toks.last().unwrap().tok, Tok::Eof);
    }
}
