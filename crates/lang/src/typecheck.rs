//! Static checks on SGL scripts and built-in definitions.
//!
//! The checker validates a normalised script against an environment schema
//! and a registry of built-ins:
//!
//! * every `u.attr` references an existing attribute;
//! * `e.attr` never appears in scripts (only in built-in definitions);
//! * every bare name resolves to a `let` variable, the unit parameter, or a
//!   registered constant;
//! * every aggregate call and `perform` target is registered and called with
//!   the right number of arguments;
//! * built-in definitions themselves only reference existing attributes, and
//!   action effects only target effect (non-`const`) attributes.

use rustc_hash::FxHashMap;

use sgl_env::{CombineKind, Schema};

use crate::ast::{Action, AggCall, Cond, Term, VarRef};
use crate::builtins::{ActionDef, AggSpec, AggregateDef, Registry};
use crate::error::{LangError, Result};
use crate::normalize::NormalScript;

/// Summary of a successful script check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of aggregate call sites in the script.
    pub aggregate_calls: usize,
    /// Number of `perform` statements.
    pub performs: usize,
    /// Maximum `let` nesting depth.
    pub max_depth: usize,
}

struct Checker<'a> {
    schema: &'a Schema,
    registry: &'a Registry,
    report: CheckReport,
}

/// Check a normalised script. Returns statistics useful for diagnostics.
pub fn check_script(
    script: &NormalScript,
    schema: &Schema,
    registry: &Registry,
) -> Result<CheckReport> {
    let mut checker = Checker {
        schema,
        registry,
        report: CheckReport::default(),
    };
    let mut scope: FxHashMap<String, ()> = FxHashMap::default();
    scope.insert(script.unit_param.clone(), ());
    checker.action(&script.body, &mut scope, 0)?;
    Ok(checker.report)
}

impl<'a> Checker<'a> {
    fn action(
        &mut self,
        action: &Action,
        scope: &mut FxHashMap<String, ()>,
        depth: usize,
    ) -> Result<()> {
        self.report.max_depth = self.report.max_depth.max(depth);
        match action {
            Action::Let { name, term, body } => {
                self.term(term, scope, true)?;
                let shadowed = scope.insert(name.clone(), ());
                self.action(body, scope, depth + 1)?;
                if shadowed.is_none() {
                    scope.remove(name);
                }
                Ok(())
            }
            Action::Seq(items) => {
                for item in items {
                    self.action(item, scope, depth)?;
                }
                Ok(())
            }
            Action::If { cond, then, els } => {
                self.cond(cond, scope)?;
                self.action(then, scope, depth + 1)?;
                if let Some(e) = els {
                    self.action(e, scope, depth + 1)?;
                }
                Ok(())
            }
            Action::Perform { name, args } => {
                self.report.performs += 1;
                let def = self
                    .registry
                    .action(name)
                    .ok_or_else(|| LangError::Unresolved(format!("action `{name}`")))?;
                if args.len() != def.params.len() {
                    return Err(LangError::Semantic(format!(
                        "action `{name}` expects {} arguments, got {}",
                        def.params.len(),
                        args.len()
                    )));
                }
                for arg in args {
                    self.term(arg, scope, false)?;
                }
                Ok(())
            }
            Action::Nop => Ok(()),
        }
    }

    fn cond(&mut self, cond: &Cond, scope: &FxHashMap<String, ()>) -> Result<()> {
        match cond {
            Cond::Lit(_) => Ok(()),
            Cond::Cmp { left, right, .. } => {
                self.term(left, scope, false)?;
                self.term(right, scope, false)
            }
            Cond::And(a, b) | Cond::Or(a, b) => {
                self.cond(a, scope)?;
                self.cond(b, scope)
            }
            Cond::Not(c) => self.cond(c, scope),
        }
    }

    fn term(
        &mut self,
        term: &Term,
        scope: &FxHashMap<String, ()>,
        allow_aggregate: bool,
    ) -> Result<()> {
        match term {
            Term::Const(_) => Ok(()),
            Term::Var(VarRef::Unit(attr)) => self
                .schema
                .attr_id(attr)
                .map(|_| ())
                .ok_or_else(|| LangError::Unresolved(format!("u.{attr}"))),
            Term::Var(VarRef::Row(attr)) => Err(LangError::Semantic(format!(
                "`e.{attr}` may only appear inside built-in definitions, not in scripts"
            ))),
            Term::Var(VarRef::Name(name)) => {
                if scope.contains_key(name) || self.registry.constant(name).is_some() {
                    Ok(())
                } else {
                    Err(LangError::Unresolved(name.clone()))
                }
            }
            Term::Random(t) | Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) => {
                self.term(t, scope, false)
            }
            Term::Field(t, _field) => self.term(t, scope, allow_aggregate),
            Term::Bin { left, right, .. } => {
                self.term(left, scope, false)?;
                self.term(right, scope, false)
            }
            Term::Tuple(items) => {
                for item in items {
                    self.term(item, scope, false)?;
                }
                Ok(())
            }
            Term::Agg(call) => {
                if !allow_aggregate {
                    return Err(LangError::Semantic(format!(
                        "aggregate `{}` must be bound by a let (script not in normal form)",
                        call.name
                    )));
                }
                self.aggregate_call(call, scope)
            }
        }
    }

    fn aggregate_call(&mut self, call: &AggCall, scope: &FxHashMap<String, ()>) -> Result<()> {
        self.report.aggregate_calls += 1;
        let def = self
            .registry
            .aggregate(&call.name)
            .ok_or_else(|| LangError::Unresolved(format!("aggregate `{}`", call.name)))?;
        if call.args.len() != def.params.len() {
            return Err(LangError::Semantic(format!(
                "aggregate `{}` expects {} arguments, got {}",
                call.name,
                def.params.len(),
                call.args.len()
            )));
        }
        for arg in &call.args {
            self.term(arg, scope, false)?;
        }
        Ok(())
    }
}

/// Validate every built-in definition in a registry against a schema.
pub fn check_registry(registry: &Registry, schema: &Schema) -> Result<()> {
    for name in registry.aggregate_names() {
        let def = registry.aggregate(name).expect("listed name resolves");
        check_aggregate_def(def, schema)?;
    }
    for name in registry.action_names() {
        let def = registry.action(name).expect("listed name resolves");
        check_action_def(def, schema)?;
    }
    Ok(())
}

fn check_builtin_term(
    term: &Term,
    def_name: &str,
    params: &[String],
    schema: &Schema,
) -> Result<()> {
    match term {
        Term::Const(_) => Ok(()),
        Term::Var(VarRef::Unit(attr)) | Term::Var(VarRef::Row(attr)) => {
            schema.attr_id(attr).map(|_| ()).ok_or_else(|| {
                LangError::Semantic(format!(
                    "builtin `{def_name}` references unknown attribute `{attr}`"
                ))
            })
        }
        Term::Var(VarRef::Name(name)) => {
            // Parameters or constants (constants are resolved at evaluation
            // time from the same registry; we cannot see them here, so accept
            // any `_UPPERCASE` style name).
            if params.contains(name) || name.starts_with('_') {
                Ok(())
            } else {
                Err(LangError::Semantic(format!(
                    "builtin `{def_name}` references unknown name `{name}`"
                )))
            }
        }
        Term::Random(t) | Term::Neg(t) | Term::Abs(t) | Term::Sqrt(t) | Term::Field(t, _) => {
            check_builtin_term(t, def_name, params, schema)
        }
        Term::Bin { left, right, .. } => {
            check_builtin_term(left, def_name, params, schema)?;
            check_builtin_term(right, def_name, params, schema)
        }
        Term::Tuple(items) => {
            for item in items {
                check_builtin_term(item, def_name, params, schema)?;
            }
            Ok(())
        }
        Term::Agg(_) => Err(LangError::Semantic(format!(
            "builtin `{def_name}` must not call other aggregates"
        ))),
    }
}

fn check_builtin_cond(
    cond: &Cond,
    def_name: &str,
    params: &[String],
    schema: &Schema,
) -> Result<()> {
    match cond {
        Cond::Lit(_) => Ok(()),
        Cond::Cmp { left, right, .. } => {
            check_builtin_term(left, def_name, params, schema)?;
            check_builtin_term(right, def_name, params, schema)
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            check_builtin_cond(a, def_name, params, schema)?;
            check_builtin_cond(b, def_name, params, schema)
        }
        Cond::Not(c) => check_builtin_cond(c, def_name, params, schema),
    }
}

fn check_aggregate_def(def: &AggregateDef, schema: &Schema) -> Result<()> {
    check_builtin_cond(&def.filter, &def.name, &def.params, schema)?;
    match &def.spec {
        AggSpec::Simple { outputs } => {
            if outputs.is_empty() {
                return Err(LangError::Semantic(format!(
                    "aggregate `{}` has no outputs",
                    def.name
                )));
            }
            for o in outputs {
                check_builtin_term(&o.value, &def.name, &def.params, schema)?;
            }
        }
        AggSpec::ArgBest { rank, outputs, .. } => {
            if outputs.is_empty() {
                return Err(LangError::Semantic(format!(
                    "aggregate `{}` has no outputs",
                    def.name
                )));
            }
            check_builtin_term(rank, &def.name, &def.params, schema)?;
            for (_, t, _) in outputs {
                check_builtin_term(t, &def.name, &def.params, schema)?;
            }
        }
    }
    Ok(())
}

fn check_action_def(def: &ActionDef, schema: &Schema) -> Result<()> {
    if def.clauses.is_empty() {
        return Err(LangError::Semantic(format!(
            "action `{}` has no effect clauses",
            def.name
        )));
    }
    for clause in &def.clauses {
        check_builtin_cond(&clause.filter, &def.name, &def.params, schema)?;
        if clause.effects.is_empty() {
            return Err(LangError::Semantic(format!(
                "action `{}` has a clause with no effects",
                def.name
            )));
        }
        for (attr, term) in &clause.effects {
            let id = schema.attr_id(attr).ok_or_else(|| {
                LangError::Semantic(format!(
                    "action `{}` targets unknown attribute `{attr}`",
                    def.name
                ))
            })?;
            if schema.attr(id).kind == CombineKind::Const {
                return Err(LangError::Semantic(format!(
                    "action `{}` targets const attribute `{attr}`; only effect attributes can be updated",
                    def.name
                )));
            }
            check_builtin_term(term, &def.name, &def.params, schema)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::builtins::{paper_registry, AggOutput, EffectClause, SimpleAgg};
    use crate::normalize::normalize;
    use crate::parser::parse_script;
    use sgl_env::schema::paper_schema;
    use sgl_env::Value;

    fn check_src(src: &str) -> Result<CheckReport> {
        let schema = paper_schema();
        let registry = paper_registry();
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &registry)?;
        check_script(&normal, &schema, &registry)
    }

    #[test]
    fn figure_three_checks_with_extended_schema() {
        // Figure 3 references u.range and u.morale which are not in the paper
        // schema of Eq. (1); extend it the way the battle simulation does.
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("player", 0i64)
            .const_attr("posx", 0.0)
            .const_attr("posy", 0.0)
            .const_attr("health", 0i64)
            .const_attr("cooldown", 0i64)
            .const_attr("range", 10.0)
            .const_attr("morale", 5i64)
            .sum_attr("weaponused", 0i64)
            .sum_attr("movevect_x", 0.0)
            .sum_attr("movevect_y", 0.0)
            .sum_attr("damage", 0i64)
            .max_attr("inaura", 0i64);
        let schema = b.build().unwrap();
        let registry = paper_registry();
        let script = parse_script(
            r#"
            main(u) {
              (let c = CountEnemiesInRange(u, u.range))
              (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
                if (c > u.morale) then
                  perform MoveInDirection(u, u.posx + away_vector.x, u.posy + away_vector.y);
                else if (c > 0 and u.cooldown = 0) then
                  (let target_key = getNearestEnemy(u).key) {
                    perform FireAt(u, target_key);
                  }
              }
            }
        "#,
        )
        .unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let report = check_script(&normal, &schema, &registry).unwrap();
        assert_eq!(report.aggregate_calls, 3);
        assert_eq!(report.performs, 2);
        assert!(report.max_depth >= 2);
    }

    #[test]
    fn unknown_unit_attribute_is_rejected() {
        let err = check_src("main(u) { if u.mana > 3 then perform Heal(u); }").unwrap_err();
        assert!(matches!(err, LangError::Unresolved(_)), "{err}");
    }

    #[test]
    fn unknown_action_is_rejected() {
        let err = check_src("main(u) { perform Teleport(u); }").unwrap_err();
        assert!(err.to_string().contains("Teleport"));
    }

    #[test]
    fn unknown_aggregate_is_rejected() {
        let err = check_src("main(u) { (let x = CountDragons(u)) perform Heal(u); }").unwrap_err();
        assert!(err.to_string().contains("CountDragons"));
    }

    #[test]
    fn wrong_action_arity_is_rejected() {
        let err = check_src("main(u) { perform FireAt(u); }").unwrap_err();
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn wrong_aggregate_arity_is_rejected() {
        let err =
            check_src("main(u) { (let c = CountEnemiesInRange(u)) perform Heal(u); }").unwrap_err();
        assert!(err.to_string().contains("expects 2"));
    }

    #[test]
    fn unbound_names_are_rejected_and_let_scoping_works() {
        assert!(check_src("main(u) { perform MoveInDirection(u, unknown, 0); }").is_err());
        assert!(check_src("main(u) { (let a = 3) perform MoveInDirection(u, a, 0); }").is_ok());
        // `a` is out of scope after its let body.
        let err = check_src(
            "main(u) { { (let a = 3) perform MoveInDirection(u, a, 0); perform MoveInDirection(u, a, 0); } }",
        )
        .unwrap_err();
        assert!(matches!(err, LangError::Unresolved(_)));
    }

    #[test]
    fn row_references_in_scripts_are_rejected() {
        let err = check_src("main(u) { if e.health > 0 then perform Heal(u); }").unwrap_err();
        assert!(err.to_string().contains("e.health"));
    }

    #[test]
    fn constants_resolve() {
        assert!(check_src("main(u) { perform MoveInDirection(u, _HEALER_RANGE, 0); }").is_ok());
    }

    #[test]
    fn paper_registry_validates_against_paper_schema() {
        let schema = paper_schema();
        check_registry(&paper_registry(), &schema).unwrap();
    }

    #[test]
    fn action_targeting_const_attribute_is_rejected() {
        let schema = paper_schema();
        let mut registry = paper_registry();
        registry.register_action(crate::builtins::ActionDef {
            name: "Cheat".into(),
            params: vec!["u".into()],
            clauses: vec![EffectClause {
                filter: Cond::cmp(CmpOp::Eq, Term::row("key"), Term::unit("key")),
                effects: vec![("health".into(), Term::int(100))],
            }],
        });
        let err = check_registry(&registry, &schema).unwrap_err();
        assert!(err.to_string().contains("const"));
    }

    #[test]
    fn aggregate_with_unknown_attribute_is_rejected() {
        let schema = paper_schema();
        let mut registry = Registry::new();
        registry.register_aggregate(AggregateDef {
            name: "BadAgg".into(),
            params: vec!["u".into()],
            filter: Cond::cmp(CmpOp::Eq, Term::row("mana"), Term::int(3)),
            spec: AggSpec::Simple {
                outputs: vec![AggOutput {
                    name: "value".into(),
                    func: SimpleAgg::Count,
                    value: Term::int(1),
                    default: Value::Int(0),
                }],
            },
        });
        assert!(check_registry(&registry, &schema).is_err());
    }

    #[test]
    fn empty_outputs_or_clauses_are_rejected() {
        let schema = paper_schema();
        let mut registry = Registry::new();
        registry.register_action(ActionDef {
            name: "Noop".into(),
            params: vec!["u".into()],
            clauses: vec![],
        });
        assert!(check_registry(&registry, &schema).is_err());

        let mut registry = Registry::new();
        registry.register_aggregate(AggregateDef {
            name: "Empty".into(),
            params: vec!["u".into()],
            filter: Cond::Lit(true),
            spec: AggSpec::Simple { outputs: vec![] },
        });
        assert!(check_registry(&registry, &schema).is_err());
    }
}
