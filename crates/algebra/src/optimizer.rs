//! The rule-driven plan optimizer and its cost model.
//!
//! The optimizer applies the rewrite rules of [`crate::rules`] in a fixed
//! order (they are confluent on SGL plans) and reports simple statistics that
//! the benchmarks and the EXPLAIN output use to show what the optimization
//! bought: chiefly the number of aggregate-extension nodes and an estimate of
//! how many per-unit aggregate evaluations a tick would perform.

use sgl_lang::builtins::Registry;

use crate::plan::LogicalPlan;
use crate::rules::{
    eliminate_dead_columns, eliminate_env_combine, flatten_combines, pull_up_extensions,
};

/// Options controlling which rules run (used by the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Remove extensions whose column is never used.
    pub dead_column_elimination: bool,
    /// Evaluate extensions after selections that do not reference them.
    pub extension_pull_up: bool,
    /// Flatten nested combines.
    pub combine_flattening: bool,
    /// Drop the final `⊕ E` when provably redundant.
    pub env_combine_elimination: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            dead_column_elimination: true,
            extension_pull_up: true,
            combine_flattening: true,
            env_combine_elimination: true,
        }
    }
}

impl OptimizerOptions {
    /// All rules disabled (the plan is only translated, never rewritten).
    pub fn none() -> OptimizerOptions {
        OptimizerOptions {
            dead_column_elimination: false,
            extension_pull_up: false,
            combine_flattening: false,
            env_combine_elimination: false,
        }
    }
}

/// Statistics about a plan, produced before and after optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Number of plan nodes.
    pub nodes: usize,
    /// Number of aggregate-extension nodes.
    pub aggregate_nodes: usize,
    /// Number of action applications.
    pub apply_nodes: usize,
    /// Number of *distinct* aggregate calls — the unit of work after
    /// multi-query sharing (identical calls share one index / one result).
    pub distinct_aggregates: usize,
    /// Plan depth.
    pub depth: usize,
}

/// Compute statistics for a plan.
pub fn plan_stats(plan: &LogicalPlan) -> PlanStats {
    let calls = plan.aggregate_calls();
    let mut distinct: Vec<String> = calls.iter().map(|c| format!("{c:?}")).collect();
    distinct.sort();
    distinct.dedup();
    PlanStats {
        nodes: plan.node_count(),
        aggregate_nodes: plan.count_agg_nodes(),
        apply_nodes: plan.count_apply_nodes(),
        distinct_aggregates: distinct.len(),
        depth: plan.depth(),
    }
}

/// Result of optimizing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The rewritten plan.
    pub plan: LogicalPlan,
    /// Statistics before rewriting.
    pub before: PlanStats,
    /// Statistics after rewriting.
    pub after: PlanStats,
}

/// Optimize a plan with the default rule set.
pub fn optimize(plan: LogicalPlan, registry: &Registry) -> Optimized {
    optimize_with(plan, registry, OptimizerOptions::default())
}

/// Optimize a plan with an explicit rule selection.
pub fn optimize_with(
    plan: LogicalPlan,
    registry: &Registry,
    options: OptimizerOptions,
) -> Optimized {
    let before = plan_stats(&plan);
    let mut current = plan;
    if options.combine_flattening {
        current = flatten_combines(current);
    }
    if options.dead_column_elimination {
        current = eliminate_dead_columns(current);
    }
    if options.extension_pull_up {
        current = pull_up_extensions(current);
    }
    if options.dead_column_elimination {
        // Pull-up can expose further dead columns (and vice versa); one more
        // pass reaches the fixpoint for SGL-shaped plans.
        current = eliminate_dead_columns(current);
    }
    if options.env_combine_elimination {
        current = eliminate_env_combine(current, registry);
    }
    if options.combine_flattening {
        current = flatten_combines(current);
    }
    let after = plan_stats(&current);
    Optimized {
        plan: current,
        before,
        after,
    }
}

/// A crude per-tick cost estimate (in "aggregate row visits") used to compare
/// plans in tests and in the optimizer ablation benchmark.
///
/// * In naive execution every aggregate-extension node scans all `n` units
///   for each of the units flowing into it, so it costs `flow · n`.
/// * In indexed execution each *distinct* aggregate builds one index
///   (`n · log n`) and answers each probe in `log n`.
///
/// `selectivity` is the assumed fraction of units that survive each
/// selection on the path from the scan to the node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated cost of evaluating the plan naively (row visits).
    pub naive: f64,
    /// Estimated cost of evaluating the plan with per-aggregate indexes.
    pub indexed: f64,
}

/// Estimate plan cost for an environment of `n` units.
pub fn estimate_cost(plan: &LogicalPlan, n: usize, selectivity: f64) -> CostEstimate {
    let n_f = n.max(1) as f64;
    let log_n = n_f.log2().max(1.0);
    let mut naive = 0.0;
    let mut probe_cost = 0.0;
    fn walk(
        plan: &LogicalPlan,
        flow: f64,
        n_f: f64,
        log_n: f64,
        selectivity: f64,
        naive: &mut f64,
        probe: &mut f64,
    ) {
        match plan {
            LogicalPlan::Scan | LogicalPlan::Empty => {}
            LogicalPlan::Select { input, .. } => {
                // Children below the selection see the full flow; the
                // selection itself reduces the flow for operators above it,
                // which is modelled by the caller passing `flow` downward
                // (plans grow top-down from the root, so we multiply here).
                walk(
                    input,
                    flow / selectivity.max(f64::EPSILON),
                    n_f,
                    log_n,
                    selectivity,
                    naive,
                    probe,
                );
            }
            LogicalPlan::ExtendAgg { input, .. } => {
                *naive += flow * n_f;
                *probe += flow * log_n;
                walk(input, flow, n_f, log_n, selectivity, naive, probe);
            }
            LogicalPlan::ExtendExpr { input, .. } => {
                *naive += flow;
                *probe += flow;
                walk(input, flow, n_f, log_n, selectivity, naive, probe);
            }
            LogicalPlan::Apply { input, .. } => {
                *naive += flow;
                *probe += flow;
                walk(input, flow, n_f, log_n, selectivity, naive, probe);
            }
            LogicalPlan::Combine { inputs } => {
                for i in inputs {
                    walk(i, flow, n_f, log_n, selectivity, naive, probe);
                }
            }
            LogicalPlan::CombineWithEnv { input } => {
                *naive += n_f;
                *probe += n_f;
                walk(input, flow, n_f, log_n, selectivity, naive, probe);
            }
        }
    }
    // Walk top-down: the flow at the root is n·(product of selectivities of
    // selections above each node).  We approximate by walking from the root
    // with flow = n·selectivity^depth_of_selections, implemented by dividing
    // back out as we descend through selections (see Select arm).
    let selections = count_selections_on_spine(plan);
    let root_flow = n_f * selectivity.powi(selections as i32);
    walk(
        plan,
        root_flow,
        n_f,
        log_n,
        selectivity,
        &mut naive,
        &mut probe_cost,
    );
    let distinct = plan_stats(plan).distinct_aggregates as f64;
    let build_cost = distinct * n_f * log_n;
    CostEstimate {
        naive,
        indexed: build_cost + probe_cost,
    }
}

fn count_selections_on_spine(plan: &LogicalPlan) -> usize {
    let own = usize::from(matches!(plan, LogicalPlan::Select { .. }));
    own + plan
        .children()
        .iter()
        .map(|c| count_selections_on_spine(c))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parser::parse_script;

    const FIGURE_3: &str = r#"
        main(u) {
          (let c = CountEnemiesInRange(u, 12))
          (let away = (u.posx, u.posy) - CentroidOfEnemyUnits(u, 12)) {
            if (c > 4) then
              perform MoveInDirection(u, u.posx + away.x, u.posy + away.y);
            else if (c > 0 and u.cooldown = 0) then
              (let target_key = getNearestEnemy(u).key) {
                perform FireAt(u, target_key);
              }
          }
        }
    "#;

    fn figure_three_plan() -> LogicalPlan {
        let script = parse_script(FIGURE_3).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        translate(&normal)
    }

    #[test]
    fn optimization_reduces_aggregate_nodes_for_figure_3() {
        let registry = paper_registry();
        let plan = figure_three_plan();
        let optimized = optimize(plan, &registry);
        // Before: count + centroid duplicated in both branches + nearest = 5.
        assert_eq!(optimized.before.aggregate_nodes, 5);
        // After: the centroid is dead in the else branch (away_vector unused
        // there), so 4 aggregate nodes remain — exactly Figure 6 (a)→(b).
        assert_eq!(optimized.after.aggregate_nodes, 4);
        // Multi-query sharing leaves only 3 distinct aggregate computations.
        assert_eq!(optimized.after.distinct_aggregates, 3);
        assert!(optimized.after.nodes <= optimized.before.nodes);
    }

    #[test]
    fn env_combine_is_removed_for_a_partitioning_if_else() {
        // A two-way if/else whose branches partition E and whose actions both
        // write onto the acting unit: the final ⊕E goes away (Figure 6 c→d).
        let registry = paper_registry();
        let script = parse_script(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 12))
                if c > 4 then perform MoveInDirection(u, 0, 0);
                else perform FireAt(u, getNearestEnemy(u).key);
            }"#,
        )
        .unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        let optimized = optimize(translate(&normal), &registry);
        assert!(
            !matches!(optimized.plan, LogicalPlan::CombineWithEnv { .. }),
            "the final ⊕E should be eliminated as in Figure 6(d)"
        );
    }

    #[test]
    fn env_combine_is_kept_for_figure_3s_nested_else_if() {
        // Figure 3 has an else-if: units failing both conditions take no
        // action, so the conservative optimizer keeps the ⊕E marker (the
        // paper's plan (d) likewise keeps a per-branch ⊕ on the FireAt side).
        let registry = paper_registry();
        let optimized = optimize(figure_three_plan(), &registry);
        assert!(matches!(optimized.plan, LogicalPlan::CombineWithEnv { .. }));
    }

    #[test]
    fn disabled_rules_leave_the_plan_unchanged() {
        let registry = paper_registry();
        let plan = figure_three_plan();
        let optimized = optimize_with(plan.clone(), &registry, OptimizerOptions::none());
        assert_eq!(optimized.plan, plan);
        assert_eq!(optimized.before, optimized.after);
    }

    #[test]
    fn cost_model_prefers_indexed_execution_at_scale() {
        let plan = figure_three_plan();
        let small = estimate_cost(&plan, 32, 0.5);
        let large = estimate_cost(&plan, 10_000, 0.5);
        // At scale the naive cost must dominate the indexed cost by a wide margin.
        assert!(large.naive > 10.0 * large.indexed, "{large:?}");
        // And the gap grows with n.
        assert!(large.naive / large.indexed > small.naive / small.indexed);
    }

    #[test]
    fn cost_model_rewards_optimization() {
        let registry = paper_registry();
        let plan = figure_three_plan();
        let before = estimate_cost(&plan, 5_000, 0.5);
        let optimized = optimize(plan, &registry);
        let after = estimate_cost(&optimized.plan, 5_000, 0.5);
        assert!(after.naive <= before.naive);
        assert!(after.indexed <= before.indexed);
    }

    #[test]
    fn stats_count_distinct_aggregates() {
        let plan = figure_three_plan();
        let stats = plan_stats(&plan);
        assert_eq!(stats.aggregate_nodes, 5);
        assert_eq!(stats.distinct_aggregates, 3);
        assert_eq!(stats.apply_nodes, 2);
        assert!(stats.depth > 3);
    }
}
