//! # sgl-algebra — bag algebra, translation and query optimization for SGL
//!
//! This crate implements §5.1–5.2 of *Scaling Games to Epic Proportions*:
//!
//! * [`plan`] — a bag algebra over extended environment relations with the
//!   combination operator `⊕` ([`plan::LogicalPlan`]);
//! * [`mod@translate`] — the compositional translation from normalised SGL
//!   scripts to plans (`[[f1; f2]]⊕`, `[[if φ then f]]⊕`, `[[let]]⊕`, Eq. (6));
//! * [`rules`] — the rewrite rules of Figure 7 / Example 5.1: dead-column
//!   elimination, extension pull-up past selections, `⊕` flattening and
//!   elimination of the final `⊕ E`;
//! * [`optimizer`] — the rule driver, plan statistics and a simple cost model
//!   comparing naive and index-based evaluation;
//! * [`mod@explain`] — Figure-6-style rendering of plans, optionally
//!   annotated with the physical choices of the cost-based planner;
//! * [`mod@cost`] — the physical cost model pricing scan / layered-tree /
//!   quadtree / maintained-grid / sweep / kD alternatives per aggregate call
//!   site from runtime statistics.
//!
//! The physical counterpart (per-aggregate index selection and set-at-a-time
//! evaluation) lives in `sgl-exec`.

#![warn(missing_docs)]

pub mod cost;
pub mod explain;
pub mod optimizer;
pub mod plan;
pub mod rules;
pub mod translate;

pub use cost::{
    best_alternative, price_alternatives, CallSiteInputs, CostConstants, CostedAlternative,
    MaintenanceChoice, PhysicalBackend, StrategyClass,
};
pub use explain::{explain, explain_optimized, explain_with_costs, CostAnnotation};
pub use optimizer::{
    estimate_cost, optimize, optimize_with, plan_stats, CostEstimate, Optimized, OptimizerOptions,
    PlanStats,
};
pub use plan::LogicalPlan;
pub use rules::RuleKind;
pub use translate::{translate, translate_action};

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parser::parse_script;

    #[test]
    fn end_to_end_compile_to_optimized_plan() {
        let registry = paper_registry();
        let script = parse_script(
            "main(u) { (let c = CountEnemiesInRange(u, 8)) if c > 2 then perform Heal(u); }",
        )
        .unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let optimized = optimize(translate(&normal), &registry);
        assert_eq!(optimized.after.distinct_aggregates, 1);
        assert!(explain(&optimized.plan).contains("Heal"));
    }
}
