//! The bag-algebra plan language (paper §5.1).
//!
//! Plans operate on *extended environment relations*: the environment `E`
//! extended by the columns introduced through `let` statements.  The leaves
//! are scans of `E`; unary operators select units, extend them with computed
//! or aggregate columns, or apply built-in actions turning a unit relation
//! into an *effect relation*; the combination operator `⊕` merges effect
//! relations (and, at the root, merges with `E` itself so every unit appears
//! in the tick output).

use sgl_lang::ast::{AggCall, Cond, Term};

/// A logical query plan for one SGL script.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// The environment relation `E` (one row per unit).
    Scan,
    /// `σ_pred` — keep the units satisfying the predicate.
    Select {
        /// Input relation.
        input: Box<LogicalPlan>,
        /// Per-unit predicate over `u.*` and extended columns.
        predicate: Cond,
    },
    /// `π_{*, agg(*) AS name}` — extend every unit with the result of an
    /// aggregate function (evaluated against the full environment `E`).
    ExtendAgg {
        /// Input relation.
        input: Box<LogicalPlan>,
        /// Name of the new column (record-valued for multi-output aggregates).
        name: String,
        /// The aggregate call.
        call: AggCall,
    },
    /// `π_{*, f(*) AS name}` — extend every unit with a computed expression.
    ExtendExpr {
        /// Input relation.
        input: Box<LogicalPlan>,
        /// Name of the new column.
        name: String,
        /// The expression.
        term: Term,
    },
    /// `act⊕` — apply a built-in action function for every unit flowing in,
    /// producing a (already per-action combined) effect relation.
    Apply {
        /// Input relation (the acting units).
        input: Box<LogicalPlan>,
        /// Name of the built-in action.
        action: String,
        /// Argument terms (over `u.*` and extended columns).
        args: Vec<Term>,
    },
    /// `⊕` of several effect relations.
    Combine {
        /// The effect relations being combined.
        inputs: Vec<LogicalPlan>,
    },
    /// `⊕ E` — combine an effect relation with the environment itself so that
    /// every unit is present in the tick output (Eq. (6)).
    CombineWithEnv {
        /// The effect relation.
        input: Box<LogicalPlan>,
    },
    /// The empty effect relation (produced by the empty action).
    Empty,
}

impl LogicalPlan {
    /// Wrap in a selection.
    pub fn select(self, predicate: Cond) -> LogicalPlan {
        LogicalPlan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wrap in an aggregate extension.
    pub fn extend_agg(self, name: impl Into<String>, call: AggCall) -> LogicalPlan {
        LogicalPlan::ExtendAgg {
            input: Box::new(self),
            name: name.into(),
            call,
        }
    }

    /// Wrap in an expression extension.
    pub fn extend_expr(self, name: impl Into<String>, term: Term) -> LogicalPlan {
        LogicalPlan::ExtendExpr {
            input: Box::new(self),
            name: name.into(),
            term,
        }
    }

    /// Wrap in an action application.
    pub fn apply(self, action: impl Into<String>, args: Vec<Term>) -> LogicalPlan {
        LogicalPlan::Apply {
            input: Box::new(self),
            action: action.into(),
            args,
        }
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            LogicalPlan::Scan | LogicalPlan::Empty => 0,
            LogicalPlan::Select { input, .. }
            | LogicalPlan::ExtendAgg { input, .. }
            | LogicalPlan::ExtendExpr { input, .. }
            | LogicalPlan::Apply { input, .. }
            | LogicalPlan::CombineWithEnv { input } => input.node_count(),
            LogicalPlan::Combine { inputs } => inputs.iter().map(LogicalPlan::node_count).sum(),
        }
    }

    /// Children of this node (for generic traversals).
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan | LogicalPlan::Empty => Vec::new(),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::ExtendAgg { input, .. }
            | LogicalPlan::ExtendExpr { input, .. }
            | LogicalPlan::Apply { input, .. }
            | LogicalPlan::CombineWithEnv { input } => vec![input],
            LogicalPlan::Combine { inputs } => inputs.iter().collect(),
        }
    }

    /// Count the aggregate-extension nodes in the plan.
    pub fn count_agg_nodes(&self) -> usize {
        let own = usize::from(matches!(self, LogicalPlan::ExtendAgg { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.count_agg_nodes())
            .sum::<usize>()
    }

    /// Count the action-application nodes in the plan.
    pub fn count_apply_nodes(&self) -> usize {
        let own = usize::from(matches!(self, LogicalPlan::Apply { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.count_apply_nodes())
            .sum::<usize>()
    }

    /// Collect every aggregate call in the plan (with duplicates).
    pub fn aggregate_calls(&self) -> Vec<&AggCall> {
        let mut out = Vec::new();
        fn walk<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a AggCall>) {
            if let LogicalPlan::ExtendAgg { call, .. } = plan {
                out.push(call);
            }
            for c in plan.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Collect the names of all actions applied in the plan.
    pub fn action_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(plan: &'a LogicalPlan, out: &mut Vec<&'a str>) {
            if let LogicalPlan::Apply { action, .. } = plan {
                out.push(action.as_str());
            }
            for c in plan.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Depth of the plan tree.
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_lang::ast::CmpOp;

    fn sample_plan() -> LogicalPlan {
        let count = AggCall {
            name: "CountEnemiesInRange".into(),
            args: vec![Term::unit("range")],
        };
        let branch1 = LogicalPlan::Scan
            .extend_agg("c", count.clone())
            .select(Cond::cmp(CmpOp::Gt, Term::name("c"), Term::int(3)))
            .apply("MoveInDirection", vec![Term::int(0), Term::int(0)]);
        let branch2 = LogicalPlan::Scan
            .extend_agg("c", count)
            .select(Cond::cmp(CmpOp::Le, Term::name("c"), Term::int(3)))
            .apply("FireAt", vec![Term::name("target")]);
        LogicalPlan::CombineWithEnv {
            input: Box::new(LogicalPlan::Combine {
                inputs: vec![branch1, branch2],
            }),
        }
    }

    #[test]
    fn node_and_agg_counting() {
        let plan = sample_plan();
        assert_eq!(plan.count_agg_nodes(), 2);
        assert_eq!(plan.count_apply_nodes(), 2);
        assert_eq!(plan.aggregate_calls().len(), 2);
        assert_eq!(plan.action_names(), vec!["MoveInDirection", "FireAt"]);
        assert!(plan.node_count() >= 10);
        assert!(plan.depth() >= 5);
    }

    #[test]
    fn builders_nest_correctly() {
        let plan = LogicalPlan::Scan
            .select(Cond::Lit(true))
            .extend_expr("x", Term::int(1));
        match plan {
            LogicalPlan::ExtendExpr { input, name, .. } => {
                assert_eq!(name, "x");
                assert!(matches!(*input, LogicalPlan::Select { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn children_of_leaves_are_empty() {
        assert!(LogicalPlan::Scan.children().is_empty());
        assert!(LogicalPlan::Empty.children().is_empty());
        assert_eq!(LogicalPlan::Scan.node_count(), 1);
        assert_eq!(LogicalPlan::Empty.depth(), 1);
    }
}
