//! Translation from normalised SGL scripts to logical plans (paper §5.1).
//!
//! The translation follows the equations
//!
//! ```text
//! [[f1; f2]]⊕(E)          = [[f1]]⊕(E) ⊕ [[f2]]⊕(E)
//! [[if φ then f]]⊕(E)     = [[f]]⊕(σφ(E))
//! [[(let A = a) f]]⊕(E)   = [[f]]⊕(π∗,a(∗) AS A(E))
//! [[perform H(args)]]⊕(E) = H⊕(E)
//! tick(E)                 = main⊕(E) ⊕ E
//! ```
//!
//! `if φ then f1 else f2` is treated as the shortcut
//! `if φ then f1; if ¬φ then f2`, which is why an `If` with an `else` branch
//! becomes a `Combine` of two complementary selections.

use sgl_lang::ast::{Action, Cond, Term};
use sgl_lang::normalize::NormalScript;

use crate::plan::LogicalPlan;

/// Translate a normalised script into a logical plan for one tick.
///
/// The returned plan computes `main⊕(E) ⊕ E` (Eq. (6)); the executors
/// interpret it set-at-a-time.
pub fn translate(script: &NormalScript) -> LogicalPlan {
    let body = translate_action(&script.body, LogicalPlan::Scan);
    LogicalPlan::CombineWithEnv {
        input: Box::new(body),
    }
}

/// Translate an action given the plan computing its input relation.
pub fn translate_action(action: &Action, input: LogicalPlan) -> LogicalPlan {
    match action {
        Action::Nop => LogicalPlan::Empty,
        Action::Let { name, term, body } => {
            let extended = match term {
                Term::Agg(call) => input.extend_agg(name.clone(), call.clone()),
                other => input.extend_expr(name.clone(), other.clone()),
            };
            translate_action(body, extended)
        }
        Action::Seq(items) => {
            let inputs: Vec<LogicalPlan> = items
                .iter()
                .map(|a| translate_action(a, input.clone()))
                .filter(|p| !matches!(p, LogicalPlan::Empty))
                .collect();
            match inputs.len() {
                0 => LogicalPlan::Empty,
                1 => inputs.into_iter().next().expect("length checked"),
                _ => LogicalPlan::Combine { inputs },
            }
        }
        Action::If { cond, then, els } => {
            let then_plan = translate_action(then, input.clone().select(cond.clone()));
            match els {
                None => then_plan,
                Some(e) => {
                    let else_plan = translate_action(e, input.select(Cond::not(cond.clone())));
                    match (
                        matches!(then_plan, LogicalPlan::Empty),
                        matches!(else_plan, LogicalPlan::Empty),
                    ) {
                        (true, true) => LogicalPlan::Empty,
                        (true, false) => else_plan,
                        (false, true) => then_plan,
                        (false, false) => LogicalPlan::Combine {
                            inputs: vec![then_plan, else_plan],
                        },
                    }
                }
            }
        }
        Action::Perform { name, args } => input.apply(name.clone(), args.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parser::parse_script;

    fn plan_for(src: &str) -> LogicalPlan {
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &paper_registry()).unwrap();
        translate(&normal)
    }

    #[test]
    fn empty_script_translates_to_empty_effects() {
        let plan = plan_for("main(u) { }");
        assert_eq!(
            plan,
            LogicalPlan::CombineWithEnv {
                input: Box::new(LogicalPlan::Empty)
            }
        );
    }

    #[test]
    fn single_perform_becomes_apply_over_scan() {
        let plan = plan_for("main(u) { perform Heal(u); }");
        match plan {
            LogicalPlan::CombineWithEnv { input } => match *input {
                LogicalPlan::Apply { input, action, .. } => {
                    assert_eq!(action, "Heal");
                    assert_eq!(*input, LogicalPlan::Scan);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lets_become_extensions() {
        let plan = plan_for(
            "main(u) { (let c = CountEnemiesInRange(u, 5)) if c > 0 then perform Heal(u); }",
        );
        // CombineWithEnv → Apply → Select → ExtendAgg → Scan
        match plan {
            LogicalPlan::CombineWithEnv { input } => match *input {
                LogicalPlan::Apply { input, .. } => match *input {
                    LogicalPlan::Select { input, .. } => match *input {
                        LogicalPlan::ExtendAgg { input, name, call } => {
                            assert_eq!(name, "c");
                            assert_eq!(call.name, "CountEnemiesInRange");
                            assert_eq!(*input, LogicalPlan::Scan);
                        }
                        other => panic!("unexpected {other:?}"),
                    },
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_else_becomes_complementary_selections() {
        let plan = plan_for(
            r#"main(u) {
                if u.cooldown = 0 then perform Heal(u);
                else perform MoveInDirection(u, 0, 0);
            }"#,
        );
        match plan {
            LogicalPlan::CombineWithEnv { input } => match *input {
                LogicalPlan::Combine { inputs } => {
                    assert_eq!(inputs.len(), 2);
                    let preds: Vec<&Cond> = inputs
                        .iter()
                        .map(|p| match p {
                            LogicalPlan::Apply { input, .. } => match input.as_ref() {
                                LogicalPlan::Select { predicate, .. } => predicate,
                                other => panic!("unexpected {other:?}"),
                            },
                            other => panic!("unexpected {other:?}"),
                        })
                        .collect();
                    assert_eq!(Cond::not(preds[0].clone()), *preds[1]);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequences_combine_effect_relations() {
        let plan = plan_for("main(u) { perform Heal(u); perform MoveInDirection(u, 0, 0); }");
        match plan {
            LogicalPlan::CombineWithEnv { input } => match *input {
                LogicalPlan::Combine { inputs } => assert_eq!(inputs.len(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_without_else_and_empty_branches() {
        let plan = plan_for("main(u) { if u.cooldown = 0 then perform Heal(u); }");
        match &plan {
            LogicalPlan::CombineWithEnv { input } => {
                assert!(matches!(input.as_ref(), LogicalPlan::Apply { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        // An if with two empty branches is just empty.
        let plan = plan_for("main(u) { if u.cooldown = 0 then ; else ; }");
        assert_eq!(
            plan,
            LogicalPlan::CombineWithEnv {
                input: Box::new(LogicalPlan::Empty)
            }
        );
    }

    #[test]
    fn figure_three_translation_has_expected_shape() {
        // The shape of Figure 6 (a): two branches under a combine, aggregates
        // extended below the branch point.
        let plan = plan_for(
            r#"main(u) {
              (let c = CountEnemiesInRange(u, 12))
              (let away = (u.posx, u.posy) - CentroidOfEnemyUnits(u, 12)) {
                if (c > 4) then
                  perform MoveInDirection(u, away.x, away.y);
                else if (c > 0 and u.cooldown = 0) then
                  (let target_key = getNearestEnemy(u).key) {
                    perform FireAt(u, target_key);
                  }
              }
            }"#,
        );
        // The branch point duplicates the shared input: Count and Centroid
        // appear in both branches (2 + 2) and the nearest-enemy aggregate only
        // in the else branch (1), for 5 aggregate nodes before optimization.
        assert_eq!(plan.count_agg_nodes(), 5);
        assert_eq!(plan.count_apply_nodes(), 2);
        let actions = plan.action_names();
        assert!(actions.contains(&"MoveInDirection"));
        assert!(actions.contains(&"FireAt"));
    }
}
