//! Rewrite rules on logical plans (paper §5.2, Figures 6 and 7).
//!
//! The rules implemented here reproduce the optimization walk of Example 5.1:
//!
//! * **Dead-column elimination** — an extension (`π∗,agg(∗)` or `π∗,f(∗)`)
//!   whose column is never referenced above it is dropped.  Because the
//!   branches of a conditional duplicate their shared input, this is what
//!   removes `agg2` (`away_vector`) from the `¬φ1` branch in Figure 6 (a)→(b).
//! * **Extension pull-up past selections** — when a selection predicate does
//!   not reference an extended column, the extension is evaluated *after* the
//!   selection so the aggregate is computed for fewer units (rule (8) /
//!   Figure 6 (a)→(b)).
//! * **Combine flattening** — nested `⊕` nodes are flattened and empty effect
//!   relations removed (associativity/commutativity of `⊕`, Eq. (3)).
//! * **Environment-combine elimination** — `main⊕(E) ⊕ E` can drop the final
//!   `⊕ E` when the branches partition `E` and every applied action also
//!   writes an effect onto the acting unit itself (rules (9)/(10) plus the
//!   `act⊕(R) ⊕ R = act⊕(R)` step, Figure 6 (c)→(d)).

use rustc_hash::FxHashSet;

use sgl_lang::ast::{Cond, Term, VarRef};
use sgl_lang::builtins::Registry;

use crate::plan::LogicalPlan;

/// Names of the rewrite rules, in the order they are applied.  Used for
/// optimizer tracing and for the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Drop extensions whose column is never used.
    DeadColumnElimination,
    /// Evaluate extensions after selections that do not need them.
    ExtensionPullUp,
    /// Flatten nested combines and drop empty inputs.
    CombineFlattening,
    /// Drop the final `⊕ E` when provably redundant.
    EnvCombineElimination,
}

/// Collect the bare variable names referenced by a term.
fn term_names(term: &Term, out: &mut FxHashSet<String>) {
    let mut names = Vec::new();
    term.collect_names(&mut names);
    out.extend(names);
}

/// Collect the bare variable names referenced by a condition.
fn cond_names(cond: &Cond, out: &mut FxHashSet<String>) {
    match cond {
        Cond::Lit(_) => {}
        Cond::Cmp { left, right, .. } => {
            term_names(left, out);
            term_names(right, out);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            cond_names(a, out);
            cond_names(b, out);
        }
        Cond::Not(c) => cond_names(c, out),
    }
}

/// Rule: dead-column elimination.
///
/// Walk the plan top-down carrying the set of extended-column names needed by
/// operators above; drop `ExtendAgg`/`ExtendExpr` nodes for unused columns.
pub fn eliminate_dead_columns(plan: LogicalPlan) -> LogicalPlan {
    fn walk(plan: LogicalPlan, needed: &FxHashSet<String>) -> LogicalPlan {
        match plan {
            LogicalPlan::Scan | LogicalPlan::Empty => plan,
            LogicalPlan::Select { input, predicate } => {
                let mut needed = needed.clone();
                cond_names(&predicate, &mut needed);
                LogicalPlan::Select {
                    input: Box::new(walk(*input, &needed)),
                    predicate,
                }
            }
            LogicalPlan::ExtendAgg { input, name, call } => {
                if !needed.contains(&name) {
                    return walk(*input, needed);
                }
                let mut needed = needed.clone();
                needed.remove(&name);
                for arg in &call.args {
                    term_names(arg, &mut needed);
                }
                LogicalPlan::ExtendAgg {
                    input: Box::new(walk(*input, &needed)),
                    name,
                    call,
                }
            }
            LogicalPlan::ExtendExpr { input, name, term } => {
                if !needed.contains(&name) {
                    return walk(*input, needed);
                }
                let mut needed = needed.clone();
                needed.remove(&name);
                term_names(&term, &mut needed);
                LogicalPlan::ExtendExpr {
                    input: Box::new(walk(*input, &needed)),
                    name,
                    term,
                }
            }
            LogicalPlan::Apply {
                input,
                action,
                args,
            } => {
                let mut needed = needed.clone();
                for arg in &args {
                    term_names(arg, &mut needed);
                }
                LogicalPlan::Apply {
                    input: Box::new(walk(*input, &needed)),
                    action,
                    args,
                }
            }
            LogicalPlan::Combine { inputs } => LogicalPlan::Combine {
                inputs: inputs.into_iter().map(|p| walk(p, needed)).collect(),
            },
            LogicalPlan::CombineWithEnv { input } => LogicalPlan::CombineWithEnv {
                input: Box::new(walk(*input, needed)),
            },
        }
    }
    walk(plan, &FxHashSet::default())
}

/// Rule: pull extensions above selections whose predicate does not reference
/// the extended column (so the aggregate is only evaluated for the selected
/// units).  Applied bottom-up until a local fixpoint.
pub fn pull_up_extensions(plan: LogicalPlan) -> LogicalPlan {
    fn rewrite(plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::Select { input, predicate } => {
                let input = rewrite(*input);
                let mut pred_names = FxHashSet::default();
                cond_names(&predicate, &mut pred_names);
                match input {
                    LogicalPlan::ExtendAgg {
                        input: inner,
                        name,
                        call,
                    } if !pred_names.contains(&name) => {
                        // σp(π∗,agg AS name(R)) = π∗,agg AS name(σp(R))
                        rewrite(LogicalPlan::ExtendAgg {
                            input: Box::new(LogicalPlan::Select {
                                input: inner,
                                predicate,
                            }),
                            name,
                            call,
                        })
                    }
                    LogicalPlan::ExtendExpr {
                        input: inner,
                        name,
                        term,
                    } if !pred_names.contains(&name) => rewrite(LogicalPlan::ExtendExpr {
                        input: Box::new(LogicalPlan::Select {
                            input: inner,
                            predicate,
                        }),
                        name,
                        term,
                    }),
                    other => LogicalPlan::Select {
                        input: Box::new(other),
                        predicate,
                    },
                }
            }
            LogicalPlan::ExtendAgg { input, name, call } => LogicalPlan::ExtendAgg {
                input: Box::new(rewrite(*input)),
                name,
                call,
            },
            LogicalPlan::ExtendExpr { input, name, term } => LogicalPlan::ExtendExpr {
                input: Box::new(rewrite(*input)),
                name,
                term,
            },
            LogicalPlan::Apply {
                input,
                action,
                args,
            } => LogicalPlan::Apply {
                input: Box::new(rewrite(*input)),
                action,
                args,
            },
            LogicalPlan::Combine { inputs } => LogicalPlan::Combine {
                inputs: inputs.into_iter().map(rewrite).collect(),
            },
            LogicalPlan::CombineWithEnv { input } => LogicalPlan::CombineWithEnv {
                input: Box::new(rewrite(*input)),
            },
            leaf => leaf,
        }
    }
    rewrite(plan)
}

/// Rule: flatten nested `⊕` nodes and drop empty effect relations.
pub fn flatten_combines(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Combine { inputs } => {
            let mut flat = Vec::new();
            for input in inputs {
                match flatten_combines(input) {
                    LogicalPlan::Empty => {}
                    LogicalPlan::Combine { inputs } => flat.extend(inputs),
                    other => flat.push(other),
                }
            }
            match flat.len() {
                0 => LogicalPlan::Empty,
                1 => flat.into_iter().next().expect("length checked"),
                _ => LogicalPlan::Combine { inputs: flat },
            }
        }
        LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
            input: Box::new(flatten_combines(*input)),
            predicate,
        },
        LogicalPlan::ExtendAgg { input, name, call } => LogicalPlan::ExtendAgg {
            input: Box::new(flatten_combines(*input)),
            name,
            call,
        },
        LogicalPlan::ExtendExpr { input, name, term } => LogicalPlan::ExtendExpr {
            input: Box::new(flatten_combines(*input)),
            name,
            term,
        },
        LogicalPlan::Apply {
            input,
            action,
            args,
        } => LogicalPlan::Apply {
            input: Box::new(flatten_combines(*input)),
            action,
            args,
        },
        LogicalPlan::CombineWithEnv { input } => LogicalPlan::CombineWithEnv {
            input: Box::new(flatten_combines(*input)),
        },
        leaf => leaf,
    }
}

/// Does the action write at least one effect onto the acting unit itself
/// (a clause filtered by `e.key = u.key`)?  Such actions guarantee
/// `act⊕(R) ⊕ R = act⊕(R)` for the units of `R`.
fn action_covers_self(registry: &Registry, action: &str) -> bool {
    registry
        .action(action)
        .map(|def| {
            def.clauses.iter().any(|clause| {
                clause
                    .filter
                    .conjuncts()
                    .map(|conjs| {
                        conjs.iter().any(|c| match c {
                            Cond::Cmp { op: sgl_lang::ast::CmpOp::Eq, left, right } => {
                                let is_row_key =
                                    |t: &Term| matches!(t, Term::Var(VarRef::Row(a)) if a == "key");
                                let is_unit_key =
                                    |t: &Term| matches!(t, Term::Var(VarRef::Unit(a)) if a == "key");
                                (is_row_key(left) && is_unit_key(right))
                                    || (is_row_key(right) && is_unit_key(left))
                            }
                            _ => false,
                        })
                    })
                    .unwrap_or(false)
            })
        })
        .unwrap_or(false)
}

/// Find the selection predicates that partition the branches directly below a
/// combine: returns true when the branch predicates are `p` and `¬p` (in
/// either order) over otherwise identical inputs.
fn branches_partition(inputs: &[LogicalPlan]) -> bool {
    if inputs.len() != 2 {
        return false;
    }
    fn top_selection(plan: &LogicalPlan) -> Option<&Cond> {
        match plan {
            LogicalPlan::Select { predicate, .. } => Some(predicate),
            LogicalPlan::ExtendAgg { input, .. }
            | LogicalPlan::ExtendExpr { input, .. }
            | LogicalPlan::Apply { input, .. } => top_selection(input),
            _ => None,
        }
    }
    match (top_selection(&inputs[0]), top_selection(&inputs[1])) {
        (Some(a), Some(b)) => Cond::not(a.clone()) == *b || Cond::not(b.clone()) == *a,
        _ => false,
    }
}

/// Rule: eliminate the final `⊕ E` (Figure 6 (c)→(d)).
///
/// The combination with `E` exists to keep units that take no action in the
/// current tick.  It is redundant when (i) the branches below it partition
/// `E` with complementary selections, and (ii) every action applied in the
/// plan also writes onto the acting unit itself.  When the structural proof
/// does not go through the node is kept (it is a no-op for the executors,
/// which always start from the full environment).
pub fn eliminate_env_combine(plan: LogicalPlan, registry: &Registry) -> LogicalPlan {
    match plan {
        LogicalPlan::CombineWithEnv { input } => {
            let all_actions_cover_self = input
                .action_names()
                .iter()
                .all(|a| action_covers_self(registry, a));
            let partitions = match input.as_ref() {
                LogicalPlan::Combine { inputs } => branches_partition(inputs),
                // A single branch over the whole environment trivially covers it.
                LogicalPlan::Apply { .. }
                | LogicalPlan::ExtendAgg { .. }
                | LogicalPlan::ExtendExpr { .. } => !plan_has_selection(&input),
                _ => false,
            };
            if all_actions_cover_self && partitions && input.count_apply_nodes() > 0 {
                *input
            } else {
                LogicalPlan::CombineWithEnv { input }
            }
        }
        other => other,
    }
}

fn plan_has_selection(plan: &LogicalPlan) -> bool {
    if matches!(plan, LogicalPlan::Select { .. }) {
        return true;
    }
    plan.children().iter().any(|c| plan_has_selection(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_lang::ast::{AggCall, CmpOp};
    use sgl_lang::builtins::paper_registry;

    fn count_call() -> AggCall {
        AggCall {
            name: "CountEnemiesInRange".into(),
            args: vec![Term::int(10)],
        }
    }

    fn centroid_call() -> AggCall {
        AggCall {
            name: "CentroidOfEnemyUnits".into(),
            args: vec![Term::int(10)],
        }
    }

    #[test]
    fn dead_columns_are_removed() {
        // agg2 (`away`) is extended but never used in this branch.
        let plan = LogicalPlan::Scan
            .extend_agg("c", count_call())
            .extend_agg("away", centroid_call())
            .select(Cond::cmp(CmpOp::Gt, Term::name("c"), Term::int(3)))
            .apply("FireAt", vec![Term::name("c")]);
        let optimized = eliminate_dead_columns(plan);
        assert_eq!(optimized.count_agg_nodes(), 1);
        // The surviving aggregate is the count.
        assert_eq!(optimized.aggregate_calls()[0].name, "CountEnemiesInRange");
    }

    #[test]
    fn used_columns_are_kept() {
        let plan = LogicalPlan::Scan
            .extend_agg("c", count_call())
            .select(Cond::cmp(CmpOp::Gt, Term::name("c"), Term::int(3)))
            .apply("MoveInDirection", vec![Term::name("c"), Term::int(0)]);
        let optimized = eliminate_dead_columns(plan.clone());
        assert_eq!(optimized, plan);
    }

    #[test]
    fn transitively_dead_columns_cascade() {
        // `away` depends on `mid`, but `away` itself is unused → both go.
        let plan = LogicalPlan::Scan
            .extend_agg("mid", centroid_call())
            .extend_expr(
                "away",
                Term::bin(sgl_lang::ast::BinOp::Add, Term::name("mid"), Term::int(1)),
            )
            .apply("Heal", vec![]);
        let optimized = eliminate_dead_columns(plan);
        assert_eq!(optimized.count_agg_nodes(), 0);
        assert_eq!(optimized, LogicalPlan::Scan.apply("Heal", vec![]));
    }

    #[test]
    fn extensions_are_pulled_above_independent_selections() {
        // σ(cooldown = 0) does not use `away`, so `away` should be computed
        // only for the selected units.
        let plan = LogicalPlan::Scan
            .extend_agg("away", centroid_call())
            .select(Cond::cmp(CmpOp::Eq, Term::unit("cooldown"), Term::int(0)))
            .apply("MoveInDirection", vec![Term::name("away"), Term::int(0)]);
        let optimized = pull_up_extensions(plan);
        match optimized {
            LogicalPlan::Apply { input, .. } => match *input {
                LogicalPlan::ExtendAgg { input, name, .. } => {
                    assert_eq!(name, "away");
                    assert!(matches!(*input, LogicalPlan::Select { .. }));
                }
                other => panic!("expected extension above selection, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn extensions_used_by_the_selection_stay_below_it() {
        let plan = LogicalPlan::Scan
            .extend_agg("c", count_call())
            .select(Cond::cmp(CmpOp::Gt, Term::name("c"), Term::int(3)))
            .apply("Heal", vec![]);
        let optimized = pull_up_extensions(plan.clone());
        assert_eq!(optimized, plan);
    }

    #[test]
    fn combines_flatten_and_drop_empties() {
        let plan = LogicalPlan::Combine {
            inputs: vec![
                LogicalPlan::Empty,
                LogicalPlan::Combine {
                    inputs: vec![LogicalPlan::Scan.apply("Heal", vec![]), LogicalPlan::Empty],
                },
                LogicalPlan::Scan.apply("MoveInDirection", vec![Term::int(0), Term::int(0)]),
            ],
        };
        let optimized = flatten_combines(plan);
        match optimized {
            LogicalPlan::Combine { inputs } => {
                assert_eq!(inputs.len(), 2);
                assert!(inputs
                    .iter()
                    .all(|p| matches!(p, LogicalPlan::Apply { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A combine of nothing is empty; of one thing is that thing.
        assert_eq!(
            flatten_combines(LogicalPlan::Combine { inputs: vec![] }),
            LogicalPlan::Empty
        );
        assert_eq!(
            flatten_combines(LogicalPlan::Combine {
                inputs: vec![LogicalPlan::Scan.apply("Heal", vec![])]
            }),
            LogicalPlan::Scan.apply("Heal", vec![])
        );
    }

    #[test]
    fn env_combine_elimination_on_partitioning_branches() {
        let registry = paper_registry();
        let pred = Cond::cmp(CmpOp::Gt, Term::name("c"), Term::int(3));
        let branch1 = LogicalPlan::Scan
            .extend_agg("c", count_call())
            .select(pred.clone())
            .apply("MoveInDirection", vec![Term::int(0), Term::int(0)]);
        let branch2 = LogicalPlan::Scan
            .extend_agg("c", count_call())
            .select(Cond::not(pred))
            .apply("FireAt", vec![Term::int(7)]);
        let plan = LogicalPlan::CombineWithEnv {
            input: Box::new(LogicalPlan::Combine {
                inputs: vec![branch1, branch2],
            }),
        };
        let optimized = eliminate_env_combine(plan, &registry);
        assert!(matches!(optimized, LogicalPlan::Combine { .. }));
    }

    #[test]
    fn env_combine_kept_when_branches_do_not_partition() {
        let registry = paper_registry();
        let branch1 = LogicalPlan::Scan
            .select(Cond::cmp(CmpOp::Gt, Term::unit("health"), Term::int(3)))
            .apply("MoveInDirection", vec![Term::int(0), Term::int(0)]);
        let branch2 = LogicalPlan::Scan
            .select(Cond::cmp(CmpOp::Lt, Term::unit("health"), Term::int(2)))
            .apply("FireAt", vec![Term::int(7)]);
        let plan = LogicalPlan::CombineWithEnv {
            input: Box::new(LogicalPlan::Combine {
                inputs: vec![branch1, branch2],
            }),
        };
        let optimized = eliminate_env_combine(plan.clone(), &registry);
        assert_eq!(optimized, plan);
    }

    #[test]
    fn env_combine_kept_for_unknown_or_non_covering_actions() {
        let registry = paper_registry();
        // Heal is an area-of-effect action; it does not necessarily write onto
        // the healer itself when no ally (including itself) is in range — but
        // it does match itself via the ally filter... use an unknown action to
        // be unambiguous.
        let plan = LogicalPlan::CombineWithEnv {
            input: Box::new(LogicalPlan::Scan.apply("Mystery", vec![])),
        };
        let optimized = eliminate_env_combine(plan.clone(), &registry);
        assert_eq!(optimized, plan);
    }

    #[test]
    fn env_combine_elimination_single_unconditional_action() {
        let registry = paper_registry();
        let plan = LogicalPlan::CombineWithEnv {
            input: Box::new(
                LogicalPlan::Scan.apply("MoveInDirection", vec![Term::int(1), Term::int(1)]),
            ),
        };
        let optimized = eliminate_env_combine(plan, &registry);
        assert_eq!(
            optimized,
            LogicalPlan::Scan.apply("MoveInDirection", vec![Term::int(1), Term::int(1)])
        );
    }

    #[test]
    fn action_cover_analysis() {
        let registry = paper_registry();
        assert!(action_covers_self(&registry, "MoveInDirection"));
        assert!(action_covers_self(&registry, "FireAt"));
        assert!(!action_covers_self(&registry, "Heal"));
        assert!(!action_covers_self(&registry, "DoesNotExist"));
    }
}
