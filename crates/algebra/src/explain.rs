//! EXPLAIN-style rendering of logical plans, in the spirit of Figure 6.

use std::fmt::Write as _;

use sgl_lang::pretty::{cond_to_string, term_to_string};

use crate::optimizer::{Optimized, PlanStats};
use crate::plan::LogicalPlan;

/// Render a plan as an indented operator tree (root first).
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    write_node(&mut out, plan, 0);
    out
}

fn write_node(out: &mut String, plan: &LogicalPlan, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
    match plan {
        LogicalPlan::Scan => {
            let _ = writeln!(out, "Scan E");
        }
        LogicalPlan::Empty => {
            let _ = writeln!(out, "Empty");
        }
        LogicalPlan::Select { input, predicate } => {
            let _ = writeln!(out, "Select σ[{}]", cond_to_string(predicate));
            write_node(out, input, level + 1);
        }
        LogicalPlan::ExtendAgg { input, name, call } => {
            let args: Vec<String> = call.args.iter().map(term_to_string).collect();
            let _ = writeln!(
                out,
                "ExtendAgg π[*, {}({}) AS {}]",
                call.name,
                args.join(", "),
                name
            );
            write_node(out, input, level + 1);
        }
        LogicalPlan::ExtendExpr { input, name, term } => {
            let _ = writeln!(out, "ExtendExpr π[*, {} AS {}]", term_to_string(term), name);
            write_node(out, input, level + 1);
        }
        LogicalPlan::Apply {
            input,
            action,
            args,
        } => {
            let args: Vec<String> = args.iter().map(term_to_string).collect();
            let _ = writeln!(out, "Apply {}⊕({})", action, args.join(", "));
            write_node(out, input, level + 1);
        }
        LogicalPlan::Combine { inputs } => {
            let _ = writeln!(out, "Combine ⊕ ({} inputs)", inputs.len());
            for i in inputs {
                write_node(out, i, level + 1);
            }
        }
        LogicalPlan::CombineWithEnv { input } => {
            let _ = writeln!(out, "CombineWithEnv ⊕ E");
            write_node(out, input, level + 1);
        }
    }
}

/// Render a one-line summary of plan statistics.
pub fn stats_line(stats: &PlanStats) -> String {
    format!(
        "{} nodes, {} aggregate extensions ({} distinct), {} actions, depth {}",
        stats.nodes,
        stats.aggregate_nodes,
        stats.distinct_aggregates,
        stats.apply_nodes,
        stats.depth
    )
}

/// Render a before/after report for an optimization result.
pub fn explain_optimized(optimized: &Optimized) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "before: {}", stats_line(&optimized.before));
    let _ = writeln!(out, "after:  {}", stats_line(&optimized.after));
    let _ = writeln!(out, "--- optimized plan ---");
    out.push_str(&explain(&optimized.plan));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::translate::translate;
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parser::parse_script;

    #[test]
    fn explain_renders_every_operator() {
        let script = parse_script(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 12))
                if c > 4 then perform MoveInDirection(u, 0, 0);
                else perform FireAt(u, getNearestEnemy(u).key);
            }"#,
        )
        .unwrap();
        let registry = paper_registry();
        let normal = normalize(&script, &registry).unwrap();
        let plan = translate(&normal);
        let text = explain(&plan);
        assert!(text.contains("CombineWithEnv"));
        assert!(text.contains("Combine ⊕"));
        assert!(text.contains("Select σ["));
        assert!(text.contains("ExtendAgg π[*, CountEnemiesInRange"));
        assert!(text.contains("Apply MoveInDirection⊕"));
        assert!(text.contains("Scan E"));

        let optimized = optimize(plan, &registry);
        let report = explain_optimized(&optimized);
        assert!(report.contains("before:"));
        assert!(report.contains("after:"));
        assert!(report.contains("distinct"));
    }

    #[test]
    fn empty_plan_renders() {
        assert_eq!(explain(&LogicalPlan::Empty).trim(), "Empty");
        let text = explain(&LogicalPlan::ExtendExpr {
            input: Box::new(LogicalPlan::Scan),
            name: "x".into(),
            term: sgl_lang::ast::Term::int(1),
        });
        assert!(text.contains("ExtendExpr"));
    }
}
