//! EXPLAIN-style rendering of logical plans, in the spirit of Figure 6 —
//! optionally annotated with the cost-based planner's physical choices
//! ([`explain_with_costs`]).

use std::fmt::Write as _;

use rustc_hash::FxHashMap;

use sgl_lang::pretty::{cond_to_string, term_to_string};

use crate::optimizer::{Optimized, PlanStats};
use crate::plan::LogicalPlan;

/// Physical annotation of one aggregate call site, rendered under its
/// `ExtendAgg` node by [`explain_with_costs`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostAnnotation {
    /// Logical strategy name (e.g. `divisible-tree`).
    pub strategy: String,
    /// Label of the chosen physical backend (e.g. `layered-tree`, `grid`).
    pub chosen: String,
    /// Maintenance label of the chosen backend (`per-tick`, `incremental`,
    /// `rebuild`).
    pub maintenance: String,
    /// Modeled per-tick cost of the chosen backend in µs; `None` under the
    /// heuristic planner (no pricing happened).
    pub est_us: Option<f64>,
    /// Every priced alternative as `(label, per-tick µs)`, cheapest first.
    pub alternatives: Vec<(String, f64)>,
    /// Which backends *actually served* probes at runtime, as
    /// `(label, probes served)` — the executed choice, which can differ from
    /// the planned one (e.g. scan fallbacks).  Empty before the first tick.
    pub executed: Vec<(String, u64)>,
}

/// Render a plan as an indented operator tree (root first).
pub fn explain(plan: &LogicalPlan) -> String {
    explain_with_costs(plan, &FxHashMap::default())
}

/// Render a plan with per-call-site physical annotations: each `ExtendAgg`
/// node whose call name appears in `annotations` is followed by a
/// `↳ physical:` line showing the chosen backend and maintenance, the
/// modeled cost of every alternative and the backends that actually served
/// the call site at runtime.
pub fn explain_with_costs(
    plan: &LogicalPlan,
    annotations: &FxHashMap<String, CostAnnotation>,
) -> String {
    let mut out = String::new();
    write_node_annotated(&mut out, plan, 0, annotations);
    out
}

fn write_annotation(out: &mut String, level: usize, ann: &CostAnnotation) {
    for _ in 0..=level {
        out.push_str("  ");
    }
    let _ = write!(
        out,
        "↳ physical: {} ({}) [{}]",
        ann.chosen, ann.maintenance, ann.strategy
    );
    if let Some(est) = ann.est_us {
        let _ = write!(out, " est {est:.1}µs");
    }
    if !ann.alternatives.is_empty() {
        let alts: Vec<String> = ann
            .alternatives
            .iter()
            .map(|(label, us)| format!("{label} {us:.1}µs"))
            .collect();
        let _ = write!(out, " | alts: {}", alts.join(", "));
    }
    if !ann.executed.is_empty() {
        let served: Vec<String> = ann
            .executed
            .iter()
            .map(|(label, n)| format!("{label} ×{n}"))
            .collect();
        let _ = write!(out, " | served: {}", served.join(", "));
    }
    out.push('\n');
}

fn write_node_annotated(
    out: &mut String,
    plan: &LogicalPlan,
    level: usize,
    annotations: &FxHashMap<String, CostAnnotation>,
) {
    for _ in 0..level {
        out.push_str("  ");
    }
    match plan {
        LogicalPlan::Scan => {
            let _ = writeln!(out, "Scan E");
        }
        LogicalPlan::Empty => {
            let _ = writeln!(out, "Empty");
        }
        LogicalPlan::Select { input, predicate } => {
            let _ = writeln!(out, "Select σ[{}]", cond_to_string(predicate));
            write_node_annotated(out, input, level + 1, annotations);
        }
        LogicalPlan::ExtendAgg { input, name, call } => {
            let args: Vec<String> = call.args.iter().map(term_to_string).collect();
            let _ = writeln!(
                out,
                "ExtendAgg π[*, {}({}) AS {}]",
                call.name,
                args.join(", "),
                name
            );
            if let Some(ann) = annotations.get(&call.name) {
                write_annotation(out, level, ann);
            }
            write_node_annotated(out, input, level + 1, annotations);
        }
        LogicalPlan::ExtendExpr { input, name, term } => {
            let _ = writeln!(out, "ExtendExpr π[*, {} AS {}]", term_to_string(term), name);
            write_node_annotated(out, input, level + 1, annotations);
        }
        LogicalPlan::Apply {
            input,
            action,
            args,
        } => {
            let args: Vec<String> = args.iter().map(term_to_string).collect();
            let _ = writeln!(out, "Apply {}⊕({})", action, args.join(", "));
            write_node_annotated(out, input, level + 1, annotations);
        }
        LogicalPlan::Combine { inputs } => {
            let _ = writeln!(out, "Combine ⊕ ({} inputs)", inputs.len());
            for i in inputs {
                write_node_annotated(out, i, level + 1, annotations);
            }
        }
        LogicalPlan::CombineWithEnv { input } => {
            let _ = writeln!(out, "CombineWithEnv ⊕ E");
            write_node_annotated(out, input, level + 1, annotations);
        }
    }
}

/// Render a one-line summary of plan statistics.
pub fn stats_line(stats: &PlanStats) -> String {
    format!(
        "{} nodes, {} aggregate extensions ({} distinct), {} actions, depth {}",
        stats.nodes,
        stats.aggregate_nodes,
        stats.distinct_aggregates,
        stats.apply_nodes,
        stats.depth
    )
}

/// Render a before/after report for an optimization result.
pub fn explain_optimized(optimized: &Optimized) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "before: {}", stats_line(&optimized.before));
    let _ = writeln!(out, "after:  {}", stats_line(&optimized.after));
    let _ = writeln!(out, "--- optimized plan ---");
    out.push_str(&explain(&optimized.plan));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::translate::translate;
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parser::parse_script;

    #[test]
    fn explain_renders_every_operator() {
        let script = parse_script(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 12))
                if c > 4 then perform MoveInDirection(u, 0, 0);
                else perform FireAt(u, getNearestEnemy(u).key);
            }"#,
        )
        .unwrap();
        let registry = paper_registry();
        let normal = normalize(&script, &registry).unwrap();
        let plan = translate(&normal);
        let text = explain(&plan);
        assert!(text.contains("CombineWithEnv"));
        assert!(text.contains("Combine ⊕"));
        assert!(text.contains("Select σ["));
        assert!(text.contains("ExtendAgg π[*, CountEnemiesInRange"));
        assert!(text.contains("Apply MoveInDirection⊕"));
        assert!(text.contains("Scan E"));

        let optimized = optimize(plan, &registry);
        let report = explain_optimized(&optimized);
        assert!(report.contains("before:"));
        assert!(report.contains("after:"));
        assert!(report.contains("distinct"));
    }

    #[test]
    fn cost_annotations_render_under_their_call_sites() {
        let script = parse_script(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 12))
                if c > 4 then perform MoveInDirection(u, 0, 0);
            }"#,
        )
        .unwrap();
        let registry = paper_registry();
        let normal = normalize(&script, &registry).unwrap();
        let plan = translate(&normal);
        let mut annotations = FxHashMap::default();
        annotations.insert(
            "CountEnemiesInRange".to_string(),
            CostAnnotation {
                strategy: "divisible-tree".into(),
                chosen: "grid".into(),
                maintenance: "incremental".into(),
                est_us: Some(12.5),
                alternatives: vec![("grid".into(), 12.5), ("scan".into(), 99.0)],
                executed: vec![("grid".into(), 40)],
            },
        );
        let text = explain_with_costs(&plan, &annotations);
        assert!(text.contains("↳ physical: grid (incremental) [divisible-tree]"));
        assert!(text.contains("est 12.5µs"));
        assert!(text.contains("alts: grid 12.5µs, scan 99.0µs"));
        assert!(text.contains("served: grid ×40"));
        // Unannotated rendering stays identical to the plain explain.
        assert_eq!(
            explain(&plan),
            explain_with_costs(&plan, &FxHashMap::default())
        );
        assert!(!explain(&plan).contains("physical:"));
    }

    #[test]
    fn empty_plan_renders() {
        assert_eq!(explain(&LogicalPlan::Empty).trim(), "Empty");
        let text = explain(&LogicalPlan::ExtendExpr {
            input: Box::new(LogicalPlan::Scan),
            name: "x".into(),
            term: sgl_lang::ast::Term::int(1),
        });
        assert!(text.contains("ExtendExpr"));
    }
}
