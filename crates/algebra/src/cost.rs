//! Physical cost model for the cost-based planner (the database half of the
//! paper's thesis: *choose* the physical strategy per aggregate call site
//! instead of hard-coding it).
//!
//! The model prices every legal physical alternative of an aggregate call
//! site — naive scan, per-tick layered range tree, per-tick quadtree,
//! cross-tick maintained grid (incrementally patched or rebuilt), sweep-line
//! batch, kD-tree — from runtime statistics observed by the executor
//! (`sgl-exec` collects them, `sgl-engine` feeds them back across ticks):
//!
//! * `n` — environment cardinality,
//! * `p` — aggregate probes per tick at this call site,
//! * `s` — observed predicate selectivity (matched rows / cardinality),
//! * `u` — observed update rate (fraction of rows changed per tick),
//! * `parts` — categorical partitions behind the hash layer.
//!
//! Costs are expressed in microseconds through a set of per-operation
//! [`CostConstants`].  The defaults were calibrated with
//! `sgl_bench::calibrate_cost_constants` (micro-measurements of the real
//! structures); the bench crate can re-measure them for a new machine.
//! Absolute scale cancels when alternatives are compared, so the *ratios*
//! are what the defaults have to get right.

/// Which physical structure answers an aggregate call site.
///
/// This is the decision surface of the cost-based planner; the executor's
/// `PlannedAggregate` carries one of these per call site and `explain`
/// renders both the chosen and the rejected alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhysicalBackend {
    /// Per-probe scan of the environment (the naive baseline).
    Scan,
    /// Layered aggregate range tree, rebuilt per tick (Figure 8).
    LayeredTree,
    /// Bucket PR quadtree with per-node summaries, rebuilt per tick.
    QuadTree,
    /// Cross-tick maintained dynamic aggregate grid.
    MaintainedGrid,
    /// Sweep-line MIN/MAX batch (Figure 9), rebuilt per tick.
    Sweep,
    /// kD-tree nearest neighbour, rebuilt per tick.
    KdTree,
    /// Materialized per-subscription answers patched from the delta stream
    /// (true IVM); misses recompute through the per-tick structures.
    Materialized,
}

impl PhysicalBackend {
    /// All backends, in the deterministic tie-break order of the planner.
    pub const ALL: [PhysicalBackend; 7] = [
        PhysicalBackend::Scan,
        PhysicalBackend::LayeredTree,
        PhysicalBackend::QuadTree,
        PhysicalBackend::MaintainedGrid,
        PhysicalBackend::Sweep,
        PhysicalBackend::KdTree,
        PhysicalBackend::Materialized,
    ];

    /// Stable label used by `explain`, tests and the perf JSON.
    pub fn label(&self) -> &'static str {
        match self {
            PhysicalBackend::Scan => "scan",
            PhysicalBackend::LayeredTree => "layered-tree",
            PhysicalBackend::QuadTree => "quadtree",
            PhysicalBackend::MaintainedGrid => "grid",
            PhysicalBackend::Sweep => "sweep",
            PhysicalBackend::KdTree => "kd-tree",
            PhysicalBackend::Materialized => "materialized",
        }
    }

    /// Index of the backend in [`PhysicalBackend::ALL`] (used for compact
    /// per-backend counters).
    pub fn index(&self) -> usize {
        PhysicalBackend::ALL
            .iter()
            .position(|b| b == self)
            .expect("backend listed in ALL")
    }
}

/// How the chosen structure is kept in sync with the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MaintenanceChoice {
    /// Rebuilt lazily per tick (rebuild backends and scans).
    PerTick,
    /// Maintained across ticks with per-unit deltas.
    Incremental,
    /// Maintained across ticks but rebuilt wholesale every tick — what the
    /// cost model flips to when the observed update rate crosses the
    /// incremental break-even.
    Rebuild,
}

impl MaintenanceChoice {
    /// Stable label used by `explain`, tests and the perf JSON.
    pub fn label(&self) -> &'static str {
        match self {
            MaintenanceChoice::PerTick => "per-tick",
            MaintenanceChoice::Incremental => "incremental",
            MaintenanceChoice::Rebuild => "rebuild",
        }
    }
}

/// Logical strategy class of a call site — determines which backends are
/// legal alternatives (legality is decided by the strategy planner; the cost
/// model only prices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyClass {
    /// Divisible aggregates (COUNT / SUM / AVG / STDDEV over a rectangle).
    Divisible,
    /// Exact MIN/MAX over a rectangle.
    MinMax,
    /// Nearest-neighbour argmin.
    Nearest,
}

/// Calibration constants of the cost model, in microseconds per elementary
/// operation.  See [`CostConstants::default_calibration`] for provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Visiting one row during a scan probe.
    pub scan_row: f64,
    /// One row × one tree level of layered-tree construction.
    pub build_layered_row: f64,
    /// One (outer × inner) level step of a layered-tree probe.
    pub probe_layered: f64,
    /// One row of quadtree construction.
    pub build_quad_row: f64,
    /// One visited node/row of a quadtree probe.
    pub probe_quad: f64,
    /// One row × one level of kD-tree construction.
    pub build_kd_row: f64,
    /// One level of a kD-tree nearest probe.
    pub probe_kd: f64,
    /// One (row + query) × level step of a sweep-line batch.
    pub sweep_row: f64,
    /// One incremental delta applied to a maintained grid.
    pub grid_delta: f64,
    /// One row of a maintained-grid bulk rebuild.
    pub grid_build_row: f64,
    /// Fixed part of one maintained-grid probe (cell walk setup).
    pub grid_probe_base: f64,
    /// One matched row folded by a maintained-grid probe.
    pub grid_probe_row: f64,
    /// Fixed per-structure-per-tick overhead (allocation, partition
    /// bookkeeping) of every index alternative — what makes scans win on
    /// tiny tables.
    pub struct_overhead: f64,
    /// One delta × one materialized entry relevance check (rect containment
    /// + partition match) during answer maintenance.
    pub mat_delta: f64,
    /// One O(1) serve of a materialized answer (fingerprint lookup + clone).
    pub mat_serve: f64,
}

impl CostConstants {
    /// The checked-in calibration (measured with
    /// `sgl_bench::calibrate_cost_constants` on the reference container and
    /// rounded; only the ratios matter for planning).
    pub fn default_calibration() -> CostConstants {
        CostConstants {
            scan_row: 0.020,
            build_layered_row: 0.020,
            probe_layered: 0.020,
            build_quad_row: 0.030,
            probe_quad: 0.020,
            build_kd_row: 0.030,
            probe_kd: 0.050,
            sweep_row: 0.030,
            grid_delta: 0.100,
            grid_build_row: 0.040,
            grid_probe_base: 0.200,
            grid_probe_row: 0.020,
            struct_overhead: 5.0,
            mat_delta: 0.005,
            mat_serve: 0.050,
        }
    }

    /// Update rate above which incrementally patching a maintained grid is
    /// modeled as more expensive than rebuilding it wholesale: patching
    /// costs `u·n·grid_delta`, rebuilding `n·grid_build_row`, so the
    /// break-even is their per-row ratio.
    pub fn break_even_update_rate(&self) -> f64 {
        self.grid_build_row / self.grid_delta.max(1e-12)
    }
}

impl Default for CostConstants {
    fn default() -> CostConstants {
        CostConstants::default_calibration()
    }
}

/// Observed (or bootstrapped) statistics of one aggregate call site — the
/// inputs of the pricing formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallSiteInputs {
    /// Environment cardinality `n`.
    pub cardinality: f64,
    /// Aggregate probes per tick `p` at this call site.
    pub probes: f64,
    /// Predicate selectivity `s` — expected fraction of rows matched per
    /// probe, in `[0, 1]`.
    pub selectivity: f64,
    /// Update rate `u` — fraction of rows changed per tick, in `[0, 1]`.
    pub update_rate: f64,
    /// Categorical partitions behind the hash layer (structures built per
    /// tick per partition).
    pub partitions: f64,
    /// Whether layered trees use fractional cascading (probe drops from
    /// `log²n` to `log n`).
    pub cascading: bool,
}

impl CallSiteInputs {
    fn n(&self) -> f64 {
        self.cardinality.max(1.0)
    }

    fn log_n(&self) -> f64 {
        self.n().log2().max(1.0)
    }

    fn parts(&self) -> f64 {
        self.partitions.max(1.0)
    }
}

/// One priced physical alternative of a call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostedAlternative {
    /// The structure.
    pub backend: PhysicalBackend,
    /// How it is kept in sync.
    pub maintenance: MaintenanceChoice,
    /// Per-tick build / maintenance cost (µs).
    pub prepare_us: f64,
    /// Per-tick total probe cost (µs).
    pub probe_us: f64,
}

impl CostedAlternative {
    /// Total modeled per-tick cost (µs).
    pub fn total_us(&self) -> f64 {
        self.prepare_us + self.probe_us
    }
}

fn scan_alt(i: &CallSiteInputs, c: &CostConstants) -> CostedAlternative {
    CostedAlternative {
        backend: PhysicalBackend::Scan,
        maintenance: MaintenanceChoice::PerTick,
        prepare_us: 0.0,
        probe_us: i.probes * i.n() * c.scan_row,
    }
}

fn layered_alt(i: &CallSiteInputs, c: &CostConstants) -> CostedAlternative {
    let probe_levels = if i.cascading {
        3.0 * i.log_n()
    } else {
        i.log_n() * i.log_n()
    };
    CostedAlternative {
        backend: PhysicalBackend::LayeredTree,
        maintenance: MaintenanceChoice::PerTick,
        prepare_us: i.parts() * (c.struct_overhead + i.n() * i.log_n() * c.build_layered_row),
        probe_us: i.probes * probe_levels * c.probe_layered,
    }
}

fn quad_alt(i: &CallSiteInputs, c: &CostConstants) -> CostedAlternative {
    // A quadtree probe descends ~4·log₄(n) ≈ 2·log₂(n) nodes and touches the
    // matched leaves individually.
    CostedAlternative {
        backend: PhysicalBackend::QuadTree,
        maintenance: MaintenanceChoice::PerTick,
        prepare_us: i.parts() * (c.struct_overhead + i.n() * c.build_quad_row),
        probe_us: i.probes * (2.0 * i.log_n() + i.selectivity * i.n()) * c.probe_quad,
    }
}

/// Maintained grid: probe cost is shared by all strategy classes; the
/// maintenance side is the incremental-vs-rebuild break-even decision.
fn grid_alt(i: &CallSiteInputs, c: &CostConstants, probe_rows: f64) -> CostedAlternative {
    let incremental_us = i.update_rate * i.n() * c.grid_delta;
    let rebuild_us = i.n() * c.grid_build_row;
    let (maintenance, maint_us) = if incremental_us <= rebuild_us {
        (MaintenanceChoice::Incremental, incremental_us)
    } else {
        (MaintenanceChoice::Rebuild, rebuild_us)
    };
    CostedAlternative {
        backend: PhysicalBackend::MaintainedGrid,
        maintenance,
        prepare_us: c.struct_overhead + maint_us,
        probe_us: i.probes * (c.grid_probe_base + probe_rows * c.grid_probe_row),
    }
}

fn sweep_alt(i: &CallSiteInputs, c: &CostConstants) -> CostedAlternative {
    // One batch sorts data rows and queries together; answers are O(1) after
    // the batch.
    CostedAlternative {
        backend: PhysicalBackend::Sweep,
        maintenance: MaintenanceChoice::PerTick,
        prepare_us: c.struct_overhead + (i.n() + i.probes) * i.log_n() * c.sweep_row,
        probe_us: i.probes * c.probe_quad,
    }
}

/// Materialized per-subscription answers (true IVM).  The answer store is
/// patched from the delta stream (`u·n` deltas checked against ~`p` live
/// entries); a probe either serves its stored answer in O(1) or — when a
/// relevant delta invalidated the entry — recomputes through a per-tick
/// quadtree built only on ticks that actually miss.  The expected miss
/// fraction is `u·(1 + s·n)`: the subscriber itself moved (`u`) or one of
/// its ~`s·n` supporting rows changed (`u·s·n`) — exactly the
/// update-rate × selectivity product the planner is meant to weigh.
fn materialized_alt(i: &CallSiteInputs, c: &CostConstants) -> CostedAlternative {
    let deltas = i.update_rate * i.n();
    let miss = (i.update_rate * (1.0 + i.selectivity * i.n())).min(1.0);
    let misses = (i.probes * miss).min(i.probes);
    // The quadtree miss path is only built on ticks where at least one probe
    // misses.
    let build_present = misses.min(1.0);
    let build_us = build_present * i.parts() * (c.struct_overhead + i.n() * c.build_quad_row);
    let miss_probe_us = (2.0 * i.log_n() + i.selectivity * i.n()) * c.probe_quad;
    CostedAlternative {
        backend: PhysicalBackend::Materialized,
        maintenance: MaintenanceChoice::Incremental,
        prepare_us: c.struct_overhead + i.probes * deltas * c.mat_delta + build_us,
        probe_us: i.probes * c.mat_serve + misses * miss_probe_us,
    }
}

fn kd_alt(i: &CallSiteInputs, c: &CostConstants) -> CostedAlternative {
    CostedAlternative {
        backend: PhysicalBackend::KdTree,
        maintenance: MaintenanceChoice::PerTick,
        prepare_us: i.parts() * (c.struct_overhead + i.n() * i.log_n() * c.build_kd_row),
        probe_us: i.probes * i.log_n() * c.probe_kd,
    }
}

/// Price every legal alternative of a call site, in deterministic order.
pub fn price_alternatives(
    class: StrategyClass,
    inputs: &CallSiteInputs,
    constants: &CostConstants,
) -> Vec<CostedAlternative> {
    match class {
        StrategyClass::Divisible => vec![
            scan_alt(inputs, constants),
            layered_alt(inputs, constants),
            quad_alt(inputs, constants),
            grid_alt(inputs, constants, inputs.selectivity * inputs.n()),
            materialized_alt(inputs, constants),
        ],
        StrategyClass::MinMax => vec![
            scan_alt(inputs, constants),
            sweep_alt(inputs, constants),
            quad_alt(inputs, constants),
            grid_alt(inputs, constants, inputs.selectivity * inputs.n()),
            materialized_alt(inputs, constants),
        ],
        // Nearest/argbest answers are records of arbitrary output terms over
        // the winning row; an attribute of that row can change without any
        // positional delta, which would silently stale a stored answer, so
        // materialization is not a legal alternative here.
        StrategyClass::Nearest => vec![
            scan_alt(inputs, constants),
            kd_alt(inputs, constants),
            // A grid nearest probe ring-walks ~√n cells in the worst case.
            grid_alt(inputs, constants, inputs.n().sqrt()),
        ],
    }
}

/// The cheapest alternative (ties break toward the earlier entry, i.e. the
/// [`PhysicalBackend::ALL`] order — deterministic by construction).
pub fn best_alternative(alternatives: &[CostedAlternative]) -> CostedAlternative {
    let mut best = alternatives[0];
    for alt in &alternatives[1..] {
        if alt.total_us() < best.total_us() {
            best = *alt;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: f64, p: f64, s: f64, u: f64) -> CallSiteInputs {
        CallSiteInputs {
            cardinality: n,
            probes: p,
            selectivity: s,
            update_rate: u,
            partitions: 2.0,
            cascading: true,
        }
    }

    #[test]
    fn tiny_tables_scan() {
        let c = CostConstants::default();
        let alts = price_alternatives(StrategyClass::Divisible, &inputs(8.0, 8.0, 0.3, 0.5), &c);
        assert_eq!(best_alternative(&alts).backend, PhysicalBackend::Scan);
        let alts = price_alternatives(StrategyClass::Nearest, &inputs(6.0, 6.0, 1.0, 0.5), &c);
        assert_eq!(best_alternative(&alts).backend, PhysicalBackend::Scan);
    }

    #[test]
    fn large_tables_index() {
        let c = CostConstants::default();
        let alts = price_alternatives(
            StrategyClass::Divisible,
            &inputs(2000.0, 2000.0, 0.05, 0.3),
            &c,
        );
        assert_ne!(best_alternative(&alts).backend, PhysicalBackend::Scan);
        let alts = price_alternatives(
            StrategyClass::Nearest,
            &inputs(2000.0, 2000.0, 1.0, 0.3),
            &c,
        );
        assert_ne!(best_alternative(&alts).backend, PhysicalBackend::Scan);
    }

    #[test]
    fn dense_probes_prefer_selectivity_independent_structures() {
        let c = CostConstants::default();
        // Sparse probes: few matched rows per probe → the maintained grid's
        // per-row probe cost is negligible and its zero build cost wins.
        let sparse = best_alternative(&price_alternatives(
            StrategyClass::Divisible,
            &inputs(800.0, 800.0, 0.01, 0.3),
            &c,
        ));
        assert_eq!(sparse.backend, PhysicalBackend::MaintainedGrid);
        // Dense probes: half the world matches every probe → structures with
        // selectivity-independent probes (the layered tree) win.
        let dense = best_alternative(&price_alternatives(
            StrategyClass::Divisible,
            &inputs(800.0, 800.0, 0.5, 0.3),
            &c,
        ));
        assert_eq!(dense.backend, PhysicalBackend::LayeredTree);
    }

    #[test]
    fn update_rate_flips_incremental_to_rebuild() {
        let c = CostConstants::default();
        let break_even = c.break_even_update_rate();
        assert!(break_even > 0.0 && break_even < 1.0);
        let calm = best_alternative(&price_alternatives(
            StrategyClass::Divisible,
            &inputs(800.0, 800.0, 0.01, break_even * 0.5),
            &c,
        ));
        assert_eq!(calm.backend, PhysicalBackend::MaintainedGrid);
        assert_eq!(calm.maintenance, MaintenanceChoice::Incremental);
        let hot = best_alternative(&price_alternatives(
            StrategyClass::Divisible,
            &inputs(800.0, 800.0, 0.01, (break_even * 2.0).min(1.0)),
            &c,
        ));
        assert_eq!(hot.backend, PhysicalBackend::MaintainedGrid);
        assert_eq!(hot.maintenance, MaintenanceChoice::Rebuild);
    }

    #[test]
    fn low_churn_prefers_materialized_answers() {
        let c = CostConstants::default();
        // Nearly static world, sparse probes: serving stored answers in O(1)
        // beats even the maintained grid's per-probe cell walk.
        for class in [StrategyClass::Divisible, StrategyClass::MinMax] {
            let calm = best_alternative(&price_alternatives(
                class,
                &inputs(800.0, 800.0, 0.01, 0.01),
                &c,
            ));
            assert_eq!(calm.backend, PhysicalBackend::Materialized, "{class:?}");
            assert_eq!(calm.maintenance, MaintenanceChoice::Incremental);
        }
    }

    #[test]
    fn high_churn_avoids_materialized_answers() {
        let c = CostConstants::default();
        // Heavy movement invalidates most entries every tick: the miss-path
        // recompute plus the delta × entry patch sweep must price
        // materialization out.
        for class in [StrategyClass::Divisible, StrategyClass::MinMax] {
            let hot = best_alternative(&price_alternatives(
                class,
                &inputs(800.0, 800.0, 0.01, 0.5),
                &c,
            ));
            assert_ne!(hot.backend, PhysicalBackend::Materialized, "{class:?}");
        }
        // Nearest sites never even price it (stale-output hazard).
        for alt in price_alternatives(
            StrategyClass::Nearest,
            &inputs(800.0, 800.0, 0.01, 0.01),
            &c,
        ) {
            assert_ne!(alt.backend, PhysicalBackend::Materialized);
        }
    }

    #[test]
    fn labels_and_indices_are_stable() {
        for (i, backend) in PhysicalBackend::ALL.iter().enumerate() {
            assert_eq!(backend.index(), i);
            assert!(!backend.label().is_empty());
        }
        assert_eq!(MaintenanceChoice::Incremental.label(), "incremental");
        assert_eq!(MaintenanceChoice::Rebuild.label(), "rebuild");
        assert_eq!(MaintenanceChoice::PerTick.label(), "per-tick");
    }

    #[test]
    fn costs_are_finite_and_positive() {
        let c = CostConstants::default();
        for class in [
            StrategyClass::Divisible,
            StrategyClass::MinMax,
            StrategyClass::Nearest,
        ] {
            for alt in price_alternatives(class, &inputs(100.0, 50.0, 0.2, 0.4), &c) {
                assert!(alt.total_us().is_finite());
                assert!(alt.total_us() >= 0.0, "{alt:?}");
            }
        }
    }
}
