//! Movement phase: units move along their combined movement vectors in random
//! order, with collision detection and very simple pathfinding (§6).

use rustc_hash::FxHashMap;

use sgl_env::{AttrId, EffectBuffer, EnvTable, TickRandom, Value};

use crate::Result;
use sgl_index::grid::UniformGrid;
use sgl_index::{Point2, Rect};

pub use sgl_index::grid::UniformGrid as CollisionGrid;

/// Configuration of the movement phase.
#[derive(Debug, Clone, Copy)]
pub struct MovementConfig {
    /// Position attributes.
    pub x: AttrId,
    /// Position attributes.
    pub y: AttrId,
    /// Movement-vector effect attributes.
    pub dx: AttrId,
    /// Movement-vector effect attributes.
    pub dy: AttrId,
    /// Maximum distance a unit moves per tick.
    pub step: f64,
    /// Two units may not come closer than this distance.
    pub collision_radius: f64,
    /// World bounds `(x_min, y_min, x_max, y_max)`; positions are clamped.
    pub world: (f64, f64, f64, f64),
}

/// Statistics of one movement phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MovementStats {
    /// Units that wanted to move.
    pub movers: usize,
    /// Units that moved along their full vector.
    pub moved: usize,
    /// Units that fell back to an axis-only move (simple pathfinding).
    pub detoured: usize,
    /// Units that could not move at all.
    pub blocked: usize,
}

/// Simple spatial hash for the positions units have already moved to this
/// phase (the static grid only knows pre-move positions).
struct MovedHash {
    cell: f64,
    map: FxHashMap<(i64, i64), Vec<Point2>>,
}

impl MovedHash {
    fn new(cell: f64) -> MovedHash {
        MovedHash {
            cell: cell.max(1e-6),
            map: FxHashMap::default(),
        }
    }

    fn cell_of(&self, p: &Point2) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    fn insert(&mut self, p: Point2) {
        let c = self.cell_of(&p);
        self.map.entry(c).or_default().push(p);
    }

    fn any_within(&self, p: &Point2, radius: f64) -> bool {
        let r2 = radius * radius;
        let (cx, cy) = self.cell_of(p);
        let reach = (radius / self.cell).ceil() as i64 + 1;
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                if let Some(points) = self.map.get(&(cx + dx, cy + dy)) {
                    if points.iter().any(|q| q.dist2(p) <= r2) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// Run the movement phase: apply the combined `movevect` effects to unit
/// positions, in a deterministic pseudo-random order, skipping moves that
/// would collide with another unit.
pub fn run_movement(
    table: &mut EnvTable,
    effects: &EffectBuffer,
    config: &MovementConfig,
    rng: &TickRandom,
) -> Result<MovementStats> {
    let mut stats = MovementStats::default();
    let n = table.len();
    if n == 0 {
        return Ok(stats);
    }
    let schema = table.schema().clone();
    // Snapshot current positions for collision checks.
    let positions: Vec<Point2> = (0..n)
        .map(|i| {
            Point2::new(
                table.row(i).get_f64(config.x).unwrap_or(0.0),
                table.row(i).get_f64(config.y).unwrap_or(0.0),
            )
        })
        .collect();
    let grid = UniformGrid::build(
        &positions,
        Point2::new(config.world.0, config.world.1),
        Point2::new(config.world.2, config.world.3),
        (config.collision_radius * 4.0).max(1.0),
    );
    let mut moved_hash = MovedHash::new((config.collision_radius * 2.0).max(1.0));
    let mut moved_rows: Vec<bool> = vec![false; n];

    // Deterministic pseudo-random processing order.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as i64, 7_777, (i + 1) as i64) as usize;
        order.swap(i, j);
    }

    let clamp = |p: Point2| -> Point2 {
        Point2::new(
            p.x.clamp(config.world.0, config.world.2),
            p.y.clamp(config.world.1, config.world.3),
        )
    };

    for idx in order {
        let key = table.key_of(idx);
        let dx = effects
            .get_or_default(key, config.dx)
            .as_f64()
            .unwrap_or(0.0);
        let dy = effects
            .get_or_default(key, config.dy)
            .as_f64()
            .unwrap_or(0.0);
        let norm = (dx * dx + dy * dy).sqrt();
        if norm <= f64::EPSILON {
            continue;
        }
        stats.movers += 1;
        let current = positions[idx];
        // A NaN or infinite movement vector would pass the `norm` guard above
        // (NaN fails `<=`; infinities exceed it) and write non-finite
        // positions into the table, permanently poisoning the collision grid
        // and every state digest after this tick.  Such movers stay put and
        // count as blocked.
        if !dx.is_finite() || !dy.is_finite() {
            stats.blocked += 1;
            moved_rows[idx] = true;
            moved_hash.insert(current);
            continue;
        }
        let scale = (config.step / norm).min(1.0);
        // Candidate positions: full move, x-only, y-only (simple pathfinding).
        let candidates = [
            clamp(Point2::new(current.x + dx * scale, current.y + dy * scale)),
            clamp(Point2::new(current.x + dx * scale, current.y)),
            clamp(Point2::new(current.x, current.y + dy * scale)),
        ];
        let mut accepted = None;
        for (ci, candidate) in candidates.iter().enumerate() {
            // Never write a non-finite position (a NaN current position can
            // leak through `clamp`, which keeps NaN).
            if !candidate.x.is_finite() || !candidate.y.is_finite() {
                continue;
            }
            // Collide against pre-move positions of units that have not moved
            // yet, and against the post-move positions of units that have.
            let rect = Rect::centered(candidate.x, candidate.y, config.collision_radius);
            let mut hits = Vec::new();
            grid.query_into(&rect, &mut hits);
            let static_clash = hits.iter().any(|h| {
                let h = *h as usize;
                h != idx
                    && !moved_rows[h]
                    && positions[h].dist2(candidate) < config.collision_radius.powi(2)
            });
            let moved_clash = moved_hash.any_within(candidate, config.collision_radius);
            if !static_clash && !moved_clash {
                accepted = Some((ci, *candidate));
                break;
            }
        }
        match accepted {
            Some((ci, target)) => {
                if ci == 0 {
                    stats.moved += 1;
                } else {
                    stats.detoured += 1;
                }
                table.set_attr(idx, config.x, Value::Float(target.x))?;
                table.set_attr(idx, config.y, Value::Float(target.y))?;
                moved_rows[idx] = true;
                moved_hash.insert(target);
            }
            None => {
                stats.blocked += 1;
                moved_rows[idx] = true;
                moved_hash.insert(current);
            }
        }
    }
    let _ = schema;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::{schema::paper_schema, GameRng, Schema, TupleBuilder};
    use std::sync::Arc;

    fn setup(positions: &[(f64, f64)]) -> (Arc<Schema>, EnvTable, MovementConfig) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for (i, (x, y)) in positions.iter().enumerate() {
            let t = TupleBuilder::new(&schema)
                .set("key", i as i64)
                .unwrap()
                .set("posx", *x)
                .unwrap()
                .set("posy", *y)
                .unwrap()
                .set("health", 10i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let config = MovementConfig {
            x: schema.attr_id("posx").unwrap(),
            y: schema.attr_id("posy").unwrap(),
            dx: schema.attr_id("movevect_x").unwrap(),
            dy: schema.attr_id("movevect_y").unwrap(),
            step: 1.0,
            collision_radius: 0.9,
            world: (0.0, 0.0, 100.0, 100.0),
        };
        (schema, table, config)
    }

    #[test]
    fn units_move_along_their_vectors() {
        let (schema, mut table, config) = setup(&[(10.0, 10.0)]);
        let mut effects = EffectBuffer::new(Arc::clone(&schema));
        effects.apply(0, config.dx, Value::Float(3.0)).unwrap();
        effects.apply(0, config.dy, Value::Float(4.0)).unwrap();
        let rng = GameRng::new(1).for_tick(0);
        let stats = run_movement(&mut table, &effects, &config, &rng).unwrap();
        assert_eq!(stats.movers, 1);
        assert_eq!(stats.moved, 1);
        let row = table.row(0);
        assert!((row.get_f64(config.x).unwrap() - 10.6).abs() < 1e-9);
        assert!((row.get_f64(config.y).unwrap() - 10.8).abs() < 1e-9);
    }

    #[test]
    fn blocked_moves_fall_back_or_stay() {
        // Two units side by side; the left one tries to move straight into
        // the right one.
        let (schema, mut table, config) = setup(&[(10.0, 10.0), (11.0, 10.0)]);
        let mut effects = EffectBuffer::new(Arc::clone(&schema));
        effects.apply(0, config.dx, Value::Float(1.0)).unwrap();
        let rng = GameRng::new(3).for_tick(0);
        let stats = run_movement(&mut table, &effects, &config, &rng).unwrap();
        assert_eq!(stats.movers, 1);
        // The direct move collides; the x-only candidate is the same, the
        // y-only candidate keeps position — so the unit is either detoured
        // (no-op y move counts as detour) or blocked, but never overlapping.
        let x0 = table.row(0).get_f64(config.x).unwrap();
        let x1 = table.row(1).get_f64(config.x).unwrap();
        assert!((x1 - x0).abs() >= config.collision_radius - 1e-9);
        assert_eq!(stats.moved, 0);
    }

    #[test]
    fn world_bounds_clamp_positions() {
        let (schema, mut table, config) = setup(&[(0.5, 0.5)]);
        let mut effects = EffectBuffer::new(Arc::clone(&schema));
        effects.apply(0, config.dx, Value::Float(-10.0)).unwrap();
        effects.apply(0, config.dy, Value::Float(-10.0)).unwrap();
        let rng = GameRng::new(1).for_tick(5);
        run_movement(&mut table, &effects, &config, &rng).unwrap();
        assert!(table.row(0).get_f64(config.x).unwrap() >= 0.0);
        assert!(table.row(0).get_f64(config.y).unwrap() >= 0.0);
    }

    #[test]
    fn no_effects_means_nobody_moves() {
        let (schema, mut table, config) = setup(&[(5.0, 5.0), (20.0, 20.0)]);
        let effects = EffectBuffer::new(Arc::clone(&schema));
        let rng = GameRng::new(1).for_tick(1);
        let stats = run_movement(&mut table, &effects, &config, &rng).unwrap();
        assert_eq!(stats, MovementStats::default());
        assert_eq!(table.row(0).get_f64(config.x).unwrap(), 5.0);
    }

    #[test]
    fn non_finite_vectors_block_instead_of_poisoning_positions() {
        for (dx, dy) in [
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::NAN, f64::NAN),
            (f64::INFINITY, 0.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (1.0, f64::NEG_INFINITY),
        ] {
            let (schema, mut table, config) = setup(&[(10.0, 10.0), (20.0, 20.0)]);
            let mut effects = EffectBuffer::new(Arc::clone(&schema));
            effects.apply(0, config.dx, Value::Float(dx)).unwrap();
            effects.apply(0, config.dy, Value::Float(dy)).unwrap();
            // A healthy mover in the same phase still moves.
            effects.apply(1, config.dx, Value::Float(1.0)).unwrap();
            let rng = GameRng::new(4).for_tick(0);
            let stats = run_movement(&mut table, &effects, &config, &rng).unwrap();
            assert_eq!(stats.movers, 2, "vector ({dx}, {dy})");
            assert_eq!(stats.blocked, 1, "vector ({dx}, {dy})");
            assert_eq!(stats.moved, 1, "vector ({dx}, {dy})");
            // The poisoned unit stayed exactly where it was, finite.
            let x = table.row(0).get_f64(config.x).unwrap();
            let y = table.row(0).get_f64(config.y).unwrap();
            assert_eq!((x, y), (10.0, 10.0), "vector ({dx}, {dy})");
            assert!(
                table.row(1).get_f64(config.x).unwrap().is_finite(),
                "vector ({dx}, {dy})"
            );
        }
    }

    #[test]
    fn dense_crowds_never_overlap_after_movement() {
        let positions: Vec<(f64, f64)> = (0..25)
            .map(|i| ((i % 5) as f64 * 2.0 + 10.0, (i / 5) as f64 * 2.0 + 10.0))
            .collect();
        let (schema, mut table, config) = setup(&positions);
        let mut effects = EffectBuffer::new(Arc::clone(&schema));
        // Everyone tries to move toward the centre.
        for i in 0..25i64 {
            let (x, y) = positions[i as usize];
            effects.apply(i, config.dx, Value::Float(14.0 - x)).unwrap();
            effects.apply(i, config.dy, Value::Float(14.0 - y)).unwrap();
        }
        let rng = GameRng::new(9).for_tick(3);
        run_movement(&mut table, &effects, &config, &rng).unwrap();
        for i in 0..25 {
            for j in (i + 1)..25 {
                let a = Point2::new(
                    table.row(i).get_f64(config.x).unwrap(),
                    table.row(i).get_f64(config.y).unwrap(),
                );
                let b = Point2::new(
                    table.row(j).get_f64(config.x).unwrap(),
                    table.row(j).get_f64(config.y).unwrap(),
                );
                assert!(
                    a.dist2(&b).sqrt() >= config.collision_radius - 1e-9,
                    "units {i} and {j} overlap"
                );
            }
        }
    }
}
