//! # sgl-engine — the discrete simulation engine
//!
//! Implements the clock-tick processing model of §2.2 and the phase structure
//! of the experimental engine of §6:
//!
//! 1. **index building** and the **decision/action phases** are delegated to
//!    `sgl-exec` ([`sgl_exec::execute_tick`]), which runs every registered
//!    script set-at-a-time and returns the combined effect relation;
//! 2. a **post-processing** step applies non-positional effects (damage,
//!    healing, cooldowns) through an [`sgl_env::PostProcessor`];
//! 3. a **movement phase** moves units along their combined movement vectors
//!    in random order with collision detection and simple pathfinding
//!    ([`movement`]);
//! 4. an optional **resurrection rule** respawns dead units at random
//!    positions (the rule §6 adds to keep the battle from ending during
//!    measurements), or removes them when resurrection is disabled;
//! 5. an **index maintenance** step hands the mutated environment (and the
//!    tick's effect relation) back to the cross-tick
//!    [`sgl_exec::IndexManager`], so maintained index structures absorb the
//!    tick's positional and value updates before the next tick probes them
//!    (a no-op under the rebuild-each-tick policy).

//!
//! Supporting modules: [`metrics`] (per-phase timings, throughput/capacity
//! analysis), [`replay`] (state digests and determinism traces) and
//! [`pathfind`] (the A* "AI engine" substrate of Figure 2).

#![warn(missing_docs)]

pub mod metrics;
pub mod movement;
pub mod pathfind;
pub mod replay;

use std::fmt::Write as _;
use std::time::Instant;

use rustc_hash::FxHashMap;

use sgl_algebra::cost::CostConstants;
use sgl_algebra::{explain_with_costs, CostAnnotation, LogicalPlan};
use sgl_env::{AttrId, EnvTable, GameRng, PostProcessor, Value};
use sgl_exec::{
    choose_physical, compile_script, execute_tick_oracle, execute_tick_planned, force_materialized,
    plan_registry, strategy_class, CompiledScript, ExecConfig, ExecMode, IndexManager, MaintStats,
    MaintenancePolicy, OracleRun, Parallelism, PlannedAggregate, PlannerMode, RuntimeStats,
    ScriptRun, TickObservations, TickStats,
};
use sgl_lang::normalize::NormalScript;
use sgl_lang::Registry;

pub use metrics::{PhaseAllocs, PhaseTimings, RollingStats, ThroughputReport};
pub use movement::{run_movement, MovementConfig, MovementStats};
pub use pathfind::{astar, next_waypoint, GridMap};
pub use replay::{compare_traces, StateDigest, TraceComparison, TraceRecorder};

use crate::error::EngineError;

/// Errors of the engine layer.
pub mod error {
    use std::fmt;

    /// Engine error (wraps the lower layers).
    #[derive(Debug, Clone, PartialEq)]
    pub enum EngineError {
        /// Execution failed.
        Exec(sgl_exec::ExecError),
        /// Environment manipulation failed.
        Env(sgl_env::EnvError),
        /// Configuration problem.
        Config(String),
    }

    impl fmt::Display for EngineError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                EngineError::Exec(e) => write!(f, "{e}"),
                EngineError::Env(e) => write!(f, "{e}"),
                EngineError::Config(msg) => write!(f, "engine configuration error: {msg}"),
            }
        }
    }

    impl std::error::Error for EngineError {}

    impl From<sgl_exec::ExecError> for EngineError {
        fn from(e: sgl_exec::ExecError) -> Self {
            EngineError::Exec(e)
        }
    }

    impl From<sgl_env::EnvError> for EngineError {
        fn from(e: sgl_env::EnvError) -> Self {
            EngineError::Env(e)
        }
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Selects which units run a given script.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitSelector {
    /// Every unit runs the script.
    All,
    /// Units whose attribute equals the given value.
    AttrEquals(AttrId, Value),
}

impl UnitSelector {
    fn matches(&self, table: &EnvTable, row: usize) -> bool {
        match self {
            UnitSelector::All => true,
            UnitSelector::AttrEquals(attr, value) => table.row(row).get(*attr).loose_eq(value),
        }
    }
}

/// A script registered with the simulation: its optimized plan plus the
/// selector choosing the units that run it.
#[derive(Debug, Clone)]
pub struct RegisteredScript {
    /// Human-readable name (for reports).
    pub name: String,
    /// The optimized plan.
    pub plan: LogicalPlan,
    /// The normalized script AST the plan was compiled from, when the caller
    /// kept it (scripts registered through `GameBuilder` always carry it).
    /// Required to run under [`ExecMode::Oracle`], which interprets the AST
    /// directly instead of the plan.
    pub normal: Option<NormalScript>,
    /// Which units run it.
    pub selector: UnitSelector,
    /// Register bytecode lowered from `normal`, when the script carries its
    /// source and compiles cleanly.  Executed under [`ExecMode::Compiled`];
    /// scripts without bytecode fall back to the plan walker in any mode.
    /// Never serialized — checkpoints carry no bytecode, and resume
    /// recompiles from the normalized AST.
    pub compiled: Option<CompiledScript>,
}

/// Resurrection rule of §6: dead units respawn at a random position.
#[derive(Debug, Clone, Copy)]
pub struct ResurrectConfig {
    /// Attribute holding current health.
    pub health: AttrId,
    /// Attribute holding the value health is restored to.
    pub max_health: AttrId,
    /// World bounds `(x_min, y_min, x_max, y_max)` for the respawn position.
    pub world: (f64, f64, f64, f64),
    /// x position attribute.
    pub x: AttrId,
    /// y position attribute.
    pub y: AttrId,
}

/// Game mechanics: how combined effects turn into state changes.
#[derive(Debug, Clone)]
pub struct Mechanics {
    /// Applies non-positional effects (damage, healing, cooldowns).
    pub post: PostProcessor,
    /// Movement phase configuration; `None` disables movement.
    pub movement: Option<MovementConfig>,
    /// Resurrection rule; `None` means dead units are removed by `post`.
    pub resurrect: Option<ResurrectConfig>,
}

/// Report of one simulated tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickReport {
    /// Tick number (starting at 0).
    pub tick: u64,
    /// Execution statistics from the decision/action phases.
    pub exec: TickStats,
    /// Movement statistics.
    pub movement: MovementStats,
    /// Units resurrected (or found dead) this tick.
    pub deaths: usize,
    /// Number of units alive after the tick.
    pub population: usize,
    /// Wall-clock duration of each phase of the tick.
    pub timings: PhaseTimings,
    /// Page allocations (fresh pages + spill fault-ins) per phase.
    pub allocs: PhaseAllocs,
    /// Memory footprint of the environment table after the tick (and after
    /// the end-of-tick page-budget enforcement pass).
    pub memory: sgl_env::TableMemoryStats,
}

/// The discrete simulation engine.
pub struct Simulation {
    table: EnvTable,
    registry: Registry,
    scripts: Vec<RegisteredScript>,
    mechanics: Mechanics,
    exec_config: ExecConfig,
    /// Cross-tick owner of the aggregate index structures; persists across
    /// [`Simulation::step`] calls so maintained policies can patch instead
    /// of rebuild.
    index_manager: IndexManager,
    /// Aggregate plans and registry constants, cached across ticks (they
    /// depend only on the registry, schema and execution configuration).
    planned: FxHashMap<String, PlannedAggregate>,
    constants: FxHashMap<String, Value>,
    /// Cross-tick runtime statistics (cardinality, update rate, per-call-
    /// site selectivity and served backends) — the feedback loop of the
    /// cost-based planner, and the source of the `explain` runtime
    /// annotations.
    runtime_stats: RuntimeStats,
    /// Calibration constants of the cost model.
    cost_constants: CostConstants,
    rng: GameRng,
    tick: u64,
    history: Vec<TickReport>,
}

impl Simulation {
    /// Create a simulation over an initial environment.
    pub fn new(
        table: EnvTable,
        registry: Registry,
        mechanics: Mechanics,
        exec_config: ExecConfig,
        seed: u64,
    ) -> Simulation {
        let planned = plan_registry(&registry, &table, &exec_config);
        let constants = registry.constants().clone();
        Simulation {
            table,
            registry,
            scripts: Vec::new(),
            mechanics,
            index_manager: IndexManager::new(&exec_config),
            planned,
            constants,
            runtime_stats: RuntimeStats::default(),
            cost_constants: CostConstants::default(),
            exec_config,
            rng: GameRng::new(seed),
            tick: 0,
            history: Vec::new(),
        }
    }

    /// Register a script.  Scripts are matched in registration order, so more
    /// specific selectors should be registered before catch-alls.
    pub fn add_script(
        &mut self,
        name: impl Into<String>,
        plan: LogicalPlan,
        selector: UnitSelector,
    ) {
        self.scripts.push(RegisteredScript {
            name: name.into(),
            plan,
            normal: None,
            selector,
            compiled: None,
        });
    }

    /// Register a script together with the normalized AST it was compiled
    /// from, enabling the differential [`ExecMode::Oracle`] for this
    /// simulation.  `GameBuilder` uses this for every compiled script.
    pub fn add_script_with_source(
        &mut self,
        name: impl Into<String>,
        plan: LogicalPlan,
        normal: NormalScript,
        selector: UnitSelector,
    ) {
        let name = name.into();
        // Lower to register bytecode eagerly.  A script that does not
        // compile (e.g. it references a name only resolvable at runtime)
        // simply keeps executing on the plan walker — the bytecode is an
        // execution strategy, never a semantic requirement.
        let compiled = compile_script(
            &name,
            &normal,
            &self.registry,
            self.table.schema(),
            self.exec_config.spatial,
        )
        .ok();
        self.scripts.push(RegisteredScript {
            name,
            plan,
            normal: Some(normal),
            selector,
            compiled,
        });
    }

    /// Re-lower every script that carries its normalized source into
    /// register bytecode.  The bytecode bakes in schema attribute ids and
    /// the spatial-attribute configuration (per-clause filter analyses), so
    /// it is rebuilt whenever the execution configuration changes — and on
    /// resume, where the checkpoint stores no bytecode by design.
    fn recompile_scripts(&mut self) {
        for script in &mut self.scripts {
            script.compiled = script.normal.as_ref().and_then(|normal| {
                compile_script(
                    &script.name,
                    normal,
                    &self.registry,
                    self.table.schema(),
                    self.exec_config.spatial,
                )
                .ok()
            });
        }
    }

    /// Remove all registered scripts.
    pub fn clear_scripts(&mut self) {
        self.scripts.clear();
    }

    /// The current environment.
    pub fn table(&self) -> &EnvTable {
        &self.table
    }

    /// Mutable access to the environment (scenario editing between ticks).
    /// Invalidates any cross-tick maintained index state, which is rebuilt
    /// on the next tick.
    pub fn table_mut(&mut self) -> &mut EnvTable {
        self.index_manager.invalidate();
        &mut self.table
    }

    /// The cross-tick index manager (policy and maintenance statistics).
    pub fn index_manager(&self) -> &IndexManager {
        &self.index_manager
    }

    /// The registered scripts.
    pub fn scripts(&self) -> &[RegisteredScript] {
        &self.scripts
    }

    /// The built-in registry used by the simulation.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The current tick number.
    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Reports of all ticks simulated so far.
    pub fn history(&self) -> &[TickReport] {
        &self.history
    }

    /// Change the execution configuration (e.g. switch naive ↔ indexed, or
    /// change the maintenance policy).  Resets the index manager.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.index_manager = IndexManager::new(&config);
        self.planned = plan_registry(&self.registry, &self.table, &config);
        self.exec_config = config;
        self.recompile_scripts();
    }

    /// Change only the worker-thread count of the decision/action phases.
    /// Purely a performance knob — the simulated game (and its state
    /// digests) is identical at any setting — so unlike
    /// [`Simulation::set_exec_config`] this keeps maintained index state.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.exec_config.parallelism = parallelism;
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec_config
    }

    /// The cross-tick runtime statistics feeding the cost-based planner.
    pub fn runtime_stats(&self) -> &RuntimeStats {
        &self.runtime_stats
    }

    /// Replace the cost-model calibration constants (e.g. with a fresh
    /// `sgl_bench::calibrate_cost_constants` measurement).
    pub fn set_cost_constants(&mut self, constants: CostConstants) {
        self.cost_constants = constants;
    }

    /// The current physical choice of every aggregate call site, sorted by
    /// name: `(call name, backend label, maintenance label)`.  Under the
    /// heuristic planner the labels are derived from the configuration.
    pub fn physical_choices(&self) -> Vec<(String, String, String)> {
        let mut out: Vec<(String, String, String)> = self
            .planned
            .iter()
            .map(|(name, plan)| {
                let (chosen, maintenance) = self.choice_labels(plan);
                (name.clone(), chosen, maintenance)
            })
            .collect();
        out.sort();
        out
    }

    /// Backend / maintenance labels of one plan (cost-based choice when
    /// installed, otherwise the heuristic mapping).
    fn choice_labels(&self, plan: &PlannedAggregate) -> (String, String) {
        if let Some(choice) = &plan.choice {
            return (
                choice.backend.label().to_string(),
                choice.maintenance.label().to_string(),
            );
        }
        let policy_label = match self.exec_config.policy {
            MaintenancePolicy::RebuildEachTick => "per-tick",
            MaintenancePolicy::Incremental => "incremental",
            MaintenancePolicy::Adaptive { .. } => "adaptive",
        };
        use sgl_exec::AggStrategy;
        let backend = match (&plan.strategy, self.exec_config.mode) {
            (AggStrategy::Scan, _) | (_, ExecMode::Naive | ExecMode::Oracle) => "scan",
            (_, _) if self.exec_config.policy.is_dynamic() => "grid",
            (AggStrategy::DivisibleTree { .. }, _) => match self.exec_config.backend {
                sgl_exec::RebuildBackend::LayeredTree => "layered-tree",
                sgl_exec::RebuildBackend::QuadTree => "quadtree",
            },
            (AggStrategy::SweepMinMax, _) => "sweep",
            (AggStrategy::KdNearest, _) => "kd-tree",
        };
        let maintenance = if backend == "scan" {
            "per-tick"
        } else {
            policy_label
        };
        (backend.to_string(), maintenance.to_string())
    }

    /// The [`CostAnnotation`] of every aggregate call site: the planned
    /// physical choice (with the cost model's priced alternatives under the
    /// cost-based planner) plus the backends that *actually served* probes
    /// at runtime.
    pub fn cost_annotations(&self) -> FxHashMap<String, CostAnnotation> {
        let mut out = FxHashMap::default();
        for (name, plan) in &self.planned {
            let strategy = match &plan.strategy {
                sgl_exec::AggStrategy::DivisibleTree { .. } => "divisible-tree",
                sgl_exec::AggStrategy::SweepMinMax => "sweep-min-max",
                sgl_exec::AggStrategy::KdNearest => "kd-nearest",
                sgl_exec::AggStrategy::Scan => "scan",
            };
            let (chosen, maintenance) = self.choice_labels(plan);
            let (est_us, mut alternatives) = match &plan.choice {
                Some(choice) => (
                    Some(choice.est_us),
                    choice
                        .alternatives
                        .iter()
                        .map(|alt| {
                            let label = match alt.backend {
                                sgl_algebra::PhysicalBackend::MaintainedGrid => {
                                    format!("grid-{}", alt.maintenance.label())
                                }
                                other => other.label().to_string(),
                            };
                            (label, alt.total_us())
                        })
                        .collect(),
                ),
                None => (None, Vec::new()),
            };
            alternatives.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            let executed = self
                .runtime_stats
                .calls
                .get(name)
                .map(|site| {
                    site.served_labels()
                        .into_iter()
                        .map(|(label, n)| (label.to_string(), n))
                        .collect()
                })
                .unwrap_or_default();
            out.insert(
                name.clone(),
                CostAnnotation {
                    strategy: strategy.to_string(),
                    chosen,
                    maintenance,
                    est_us,
                    alternatives,
                    executed,
                },
            );
        }
        out
    }

    /// EXPLAIN report of every registered script: the optimized operator
    /// tree with a `↳ physical:` line per aggregate call site showing the
    /// planned backend and maintenance, the priced alternatives (cost-based
    /// planner) and the backends that actually served the call site at
    /// runtime.
    pub fn explain(&self) -> String {
        let annotations = self.cost_annotations();
        let mut out = String::new();
        for script in &self.scripts {
            let _ = writeln!(out, "script `{}`:", script.name);
            out.push_str(&explain_with_costs(&script.plan, &annotations));
            // Bytecode lowering of each call site, when the script compiled:
            // the registers feeding every aggregate probe and perform site,
            // plus the clause shape (targeted / rect / scan) the VM executes.
            if let Some(compiled) = &script.compiled {
                for (_, line) in compiled.agg_site_lines() {
                    let _ = writeln!(out, "  ↳ compiled: {line}");
                }
                for (_, line) in compiled.perform_site_lines() {
                    let _ = writeln!(out, "  ↳ compiled: {line}");
                }
            }
        }
        out
    }

    /// Simulate one clock tick.
    pub fn step(&mut self) -> Result<TickReport> {
        let mut timings = PhaseTimings::default();
        let mut allocs = PhaseAllocs::default();
        let tick_rng = self.rng.for_tick(self.tick);

        // Residency protocol: fault the whole working set back in before any
        // phase reads the table, then evict back down to the page budget
        // after the last mutation (end of this function).  Every phase
        // therefore sees identical fully-resident column data regardless of
        // what the previous tick's eviction pass pushed out — which is the
        // determinism-under-eviction argument in one sentence.
        let mut alloc_mark = self.table.page_allocs();
        self.table.ensure_resident()?;
        allocs.fault_in = self.table.page_allocs() - alloc_mark;
        alloc_mark = self.table.page_allocs();

        // Cost-based planning: re-price every physical alternative at the
        // adaptivity-window boundary (and immediately after a configuration
        // change left the call sites unpriced).  Decisions only ever change
        // here, at a tick boundary, so each tick runs under one consistent
        // physical plan.
        let mut planner_recosts = 0usize;
        let mut plan_switches = 0usize;
        match self.exec_config.planner {
            PlannerMode::CostBased(window) if self.exec_config.mode.uses_indexes() => {
                let unpriced = self
                    .planned
                    .values()
                    .any(|p| p.choice.is_none() && strategy_class(&p.strategy).is_some());
                if self.tick.is_multiple_of(u64::from(window.ticks)) || unpriced {
                    let before = self.maintained_profile();
                    plan_switches = choose_physical(
                        &mut self.planned,
                        &self.runtime_stats,
                        &self.cost_constants,
                        self.table.len(),
                        self.exec_config.cascading,
                    );
                    planner_recosts = 1;
                    // Only switches that change which call sites are
                    // maintained (or how) need a re-sync; swaps between
                    // per-tick backends leave the maintained state valid.
                    if plan_switches > 0 && before != self.maintained_profile() {
                        self.index_manager.mark_stale();
                    }
                }
            }
            PlannerMode::ForceMaterialized if self.exec_config.mode.uses_indexes() => {
                // Idempotent: after the first tick every legal site already
                // carries the materialized choice and this returns 0.
                let before = self.maintained_profile();
                let switches = force_materialized(&mut self.planned);
                if switches > 0 {
                    plan_switches = switches;
                    planner_recosts = 1;
                    if before != self.maintained_profile() {
                        self.index_manager.mark_stale();
                    }
                }
            }
            _ => {}
        }
        // Assign acting units to scripts.
        let mut assigned: Vec<bool> = vec![false; self.table.len()];
        let mut acting: Vec<Vec<u32>> = Vec::with_capacity(self.scripts.len());
        for script in &self.scripts {
            let mut rows = Vec::new();
            for (row, taken) in assigned.iter_mut().enumerate() {
                if !*taken && script.selector.matches(&self.table, row) {
                    *taken = true;
                    rows.push(row as u32);
                }
            }
            acting.push(rows);
        }

        // Decision + action phases (including per-tick index building and,
        // on the first tick of a maintained policy, the initial structure
        // build).  The oracle mode bypasses the plan executors entirely and
        // interprets the registered scripts' normalized ASTs.
        let phase_start = Instant::now();
        let (effects, mut exec_stats, obs) = if self.exec_config.mode == ExecMode::Oracle {
            let mut runs: Vec<OracleRun<'_>> = Vec::with_capacity(self.scripts.len());
            for (script, rows) in self.scripts.iter().zip(acting) {
                let normal = script.normal.as_ref().ok_or_else(|| {
                    EngineError::Config(format!(
                        "script `{}` was registered without its normalized AST; \
                         the oracle interpreter needs the source — register it \
                         through GameBuilder or Simulation::add_script_with_source",
                        script.name
                    ))
                })?;
                runs.push(OracleRun {
                    script: normal,
                    acting_rows: rows,
                });
            }
            let (effects, stats) =
                execute_tick_oracle(&self.table, &self.registry, &runs, &tick_rng)?;
            (effects, stats, TickObservations::default())
        } else {
            let runs: Vec<ScriptRun<'_>> = self
                .scripts
                .iter()
                .zip(acting)
                .map(|(script, rows)| {
                    let run = ScriptRun::new(&script.plan, rows);
                    match &script.compiled {
                        Some(compiled) => run.with_compiled(compiled),
                        None => run,
                    }
                })
                .collect();
            execute_tick_planned(
                &self.table,
                &self.registry,
                &runs,
                &tick_rng,
                &self.exec_config,
                &mut self.index_manager,
                &self.planned,
                &self.constants,
            )?
        };
        timings.exec = phase_start.elapsed();
        allocs.exec = self.table.page_allocs() - alloc_mark;
        alloc_mark = self.table.page_allocs();

        // Post-processing: apply non-positional effects.
        let phase_start = Instant::now();
        self.mechanics.post.apply(&mut self.table, &effects)?;
        timings.post = phase_start.elapsed();
        allocs.post = self.table.page_allocs() - alloc_mark;
        alloc_mark = self.table.page_allocs();

        // Movement phase.
        let phase_start = Instant::now();
        let movement_stats = match &self.mechanics.movement {
            Some(config) => run_movement(&mut self.table, &effects, config, &tick_rng)?,
            None => MovementStats::default(),
        };
        timings.movement = phase_start.elapsed();
        allocs.movement = self.table.page_allocs() - alloc_mark;
        alloc_mark = self.table.page_allocs();

        // Resurrection rule (§6): dead units respawn at random positions.
        let phase_start = Instant::now();
        let mut deaths = 0usize;
        if let Some(res) = self.mechanics.resurrect {
            for row in 0..self.table.len() {
                let hp = self.table.row(row).get_i64(res.health).unwrap_or(0);
                if hp <= 0 {
                    deaths += 1;
                    let key = self.table.key_of(row);
                    let max_hp = self.table.row(row).get(res.max_health);
                    let x =
                        res.world.0 + tick_rng.unit_float(key, 101) * (res.world.2 - res.world.0);
                    let y =
                        res.world.1 + tick_rng.unit_float(key, 102) * (res.world.3 - res.world.1);
                    self.table.set_attr(row, res.health, max_hp)?;
                    self.table.set_attr(row, res.x, Value::Float(x))?;
                    self.table.set_attr(row, res.y, Value::Float(y))?;
                }
            }
        }
        timings.resurrect = phase_start.elapsed();
        allocs.resurrect = self.table.page_allocs() - alloc_mark;
        alloc_mark = self.table.page_allocs();

        // Index maintenance: hand the post-tick environment (and the effect
        // relation, for accounting) back to the manager so maintained
        // structures absorb this tick's positional and value updates before
        // the next tick probes them.  Which call sites are maintained is
        // decided per plan (globally by the policy, or per call site by the
        // cost-based planner's choices).
        let wants_maintenance = self.planned.values().any(|p| {
            self.index_manager.plan_is_maintained(p) || self.index_manager.plan_is_materialized(p)
        });
        if wants_maintenance {
            let phase_start = Instant::now();
            let maint = self.maintain_indexes(&effects)?;
            exec_stats.index_delta_ops += maint.delta_ops;
            exec_stats.partition_rebuilds += maint.partition_rebuilds;
            timings.maintain = phase_start.elapsed();
            allocs.maintain = self.table.page_allocs() - alloc_mark;
        } else {
            // The mutation phases ran without a maintenance pass; whatever
            // maintained state exists (none, or about to be dropped) no
            // longer mirrors the environment.
            self.index_manager.mark_stale();
        }

        // Statistics feedback: fold what this tick observed (probe volume,
        // selectivity, served backends, movement churn) into the cross-tick
        // store the cost-based planner prices from.  The spatial density
        // comes from the maintained index's own occupancy hint when one is
        // alive; the bounding box is only computed when a cost-based
        // planner will actually consume it.
        let changed_rows = movement_stats.moved + movement_stats.detoured + deaths;
        let density_hint = self.index_manager.density_hint();
        // The bounding-box fallback costs a full table scan — only pay it
        // when a cost-based planner will consume it and no maintained index
        // supplied its (better) occupancy-based density.
        let world_area = if self.exec_config.planner.is_cost_based() && density_hint.is_none() {
            self.world_area()
        } else {
            0.0
        };
        self.runtime_stats.observe_tick(
            self.table.len(),
            changed_rows,
            world_area,
            density_hint,
            &obs,
        );
        exec_stats.planner_recosts += planner_recosts;
        exec_stats.plan_switches += plan_switches;

        // End-of-tick page-budget enforcement: evict least-recently-touched
        // pages down to the configured budget.  The table *contents* are
        // already final for this tick, so which pages spill affects only
        // where bytes live — never what the next tick computes.
        self.table.enforce_page_budget()?;

        let report = TickReport {
            tick: self.tick,
            exec: exec_stats,
            movement: movement_stats,
            deaths,
            population: self.table.len(),
            timings,
            allocs,
            memory: self.table.memory_stats(),
        };
        self.history.push(report);
        self.tick += 1;
        Ok(report)
    }

    /// Synchronize maintained index structures with the freshly mutated
    /// environment (no-op when no plan is maintained).
    fn maintain_indexes(&mut self, effects: &sgl_env::EffectBuffer) -> Result<MaintStats> {
        Ok(self.index_manager.end_tick_with_effects(
            &self.table,
            effects,
            &self.planned,
            &self.constants,
        )?)
    }

    /// Which call sites are maintained across ticks, and under which
    /// maintenance choice — the part of the physical plan whose change
    /// requires an [`IndexManager`] re-sync.  Sorted for comparability.
    fn maintained_profile(&self) -> Vec<(String, Option<sgl_algebra::MaintenanceChoice>)> {
        let mut out: Vec<(String, Option<sgl_algebra::MaintenanceChoice>)> = self
            .planned
            .iter()
            .filter(|(_, plan)| {
                self.index_manager.plan_is_maintained(plan)
                    || self.index_manager.plan_is_materialized(plan)
            })
            .map(|(name, plan)| (name.clone(), plan.choice.as_ref().map(|c| c.maintenance)))
            .collect();
        out.sort();
        out
    }

    /// Bounding-box area of the unit positions (the statistics collector's
    /// fallback density estimate when no maintained index is alive).
    fn world_area(&self) -> f64 {
        let Some(spatial) = self.exec_config.spatial else {
            return 0.0;
        };
        let (Ok(xs), Ok(ys)) = (
            self.table.column_f64(spatial.x),
            self.table.column_f64(spatial.y),
        ) else {
            return 0.0;
        };
        let mut lo = (f64::INFINITY, f64::INFINITY);
        let mut hi = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (x, y) in xs.iter().zip(&ys) {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            lo = (lo.0.min(*x), lo.1.min(*y));
            hi = (hi.0.max(*x), hi.1.max(*y));
        }
        if lo.0 > hi.0 || lo.1 > hi.1 {
            return 0.0;
        }
        (hi.0 - lo.0).max(1.0) * (hi.1 - lo.1).max(1.0)
    }

    /// Simulate `n` ticks, returning aggregate statistics.
    pub fn run(&mut self, n: usize) -> Result<RunSummary> {
        let mut summary = RunSummary::default();
        for _ in 0..n {
            let report = self.step()?;
            summary.ticks += 1;
            summary.exec.merge(&report.exec);
            summary.deaths += report.deaths;
            summary.final_population = report.population;
            summary.timings.accumulate(&report.timings);
        }
        Ok(summary)
    }

    /// Throughput report over every tick simulated so far (the quantity of
    /// Figure 10 and the 10-ticks/s capacity check of §6.1).
    pub fn throughput(&self) -> ThroughputReport {
        ThroughputReport::from_timings(self.history.iter().map(|r| &r.timings))
    }

    /// Digest of the current environment (see [`replay`]).
    pub fn digest(&self) -> StateDigest {
        StateDigest::of_table(&self.table)
    }

    /// Fingerprint of the registered scripts (names, selectors, plans).  A
    /// checkpoint embeds it so a resume into a simulation running different
    /// scripts is rejected instead of silently diverging: the environment
    /// alone does not identify a game — the scripts are part of its state
    /// trajectory.
    fn scripts_fingerprint(&self) -> u64 {
        let mut hash = sgl_env::checkpoint::Fnv64::new();
        hash.write(&(self.scripts.len() as u64).to_le_bytes());
        for script in &self.scripts {
            hash.write(script.name.as_bytes());
            hash.write(format!("{:?}", script.selector).as_bytes());
            hash.write(format!("{:?}", script.plan).as_bytes());
        }
        hash.finish()
    }

    /// Serialize the complete run state of this simulation into a versioned
    /// binary checkpoint: the environment table (as a
    /// [`sgl_env::snapshot::snapshot`] section), the tick counter and RNG
    /// seed (the entire RNG stream state — every draw is a pure hash of
    /// `(seed, tick, unit key, i)`), the cross-tick [`RuntimeStats`], the
    /// planner mode and installed physical choices, and the maintenance
    /// counters.  Maintained index structures are *not* serialized: they are
    /// a deterministic function of the table and are reconstructed on
    /// [`Simulation::resume`].
    ///
    /// The encoding is deterministic: the same simulation state always
    /// produces the same bytes.  Fails only when a spilled table page cannot
    /// be read back while serializing ([`EngineError::Env`]).
    pub fn checkpoint(&self) -> Result<Vec<u8>> {
        use sgl_env::checkpoint::{section, ByteWriter, CheckpointBuilder};
        let fingerprint = sgl_env::snapshot::schema_fingerprint(self.table.schema());
        let mut builder = CheckpointBuilder::new(fingerprint);
        builder.section(
            section::TABLE,
            sgl_env::snapshot::snapshot(&self.table)
                .map_err(EngineError::Env)?
                .to_vec(),
        );
        let mut clock = ByteWriter::new();
        clock.u64(self.tick);
        clock.u64(self.rng.seed());
        clock.u64(self.scripts_fingerprint());
        builder.section(section::CLOCK, clock.finish());
        builder.section(
            section::STATS,
            sgl_exec::checkpoint::export_runtime_stats(&self.runtime_stats),
        );
        builder.section(
            section::PLANNER,
            sgl_exec::checkpoint::export_planner_state(self.exec_config.planner, &self.planned),
        );
        builder.section(
            section::MAINT,
            sgl_exec::checkpoint::export_maint_stats(&self.index_manager.last_maint),
        );
        Ok(builder.finish().to_vec())
    }

    /// Restore the run state saved by [`Simulation::checkpoint`] into this
    /// simulation and continue under `config` — which may differ from the
    /// writer's configuration in any behaviour-neutral knob (parallelism,
    /// maintenance policy, rebuild backend, planner mode, even naive vs
    /// indexed): the conformance lattice proves every configuration computes
    /// the same game, so the resumed trajectory is digest-identical to an
    /// uninterrupted run regardless.
    ///
    /// The simulation must have been built with the same schema and the same
    /// scripts as the writer (both are fingerprint-checked; mismatches are
    /// rejected with a typed [`sgl_env::EnvError::Checkpoint`]).  Everything
    /// is validated *before* any state is replaced — a failed resume leaves
    /// the simulation untouched.  On success the tick counter, RNG stream,
    /// runtime statistics and (under a cost-based `config`) the installed
    /// physical choices continue exactly where the writer stopped; the tick
    /// history is cleared (it describes the writer's process, not this one)
    /// and maintained index structures are deterministically reconstructed
    /// from the restored table and validated eagerly.
    pub fn resume(&mut self, bytes: &[u8], config: ExecConfig) -> Result<()> {
        use sgl_env::checkpoint::{section, ByteReader, CheckpointReader};
        let reader = CheckpointReader::parse(bytes).map_err(EngineError::Env)?;
        let fingerprint = sgl_env::snapshot::schema_fingerprint(self.table.schema());
        if reader.fingerprint() != fingerprint {
            return Err(EngineError::Env(sgl_env::EnvError::Checkpoint(
                "checkpoint was written against a different schema".into(),
            )));
        }
        let table = sgl_env::snapshot::restore(
            reader.require(section::TABLE, "environment table")?,
            self.table.schema(),
        )?;
        let mut clock = ByteReader::new(reader.require(section::CLOCK, "simulation clock")?);
        let tick = clock.u64("tick counter")?;
        let seed = clock.u64("rng seed")?;
        let scripts_fp = clock.u64("scripts fingerprint")?;
        clock
            .expect_end("simulation clock")
            .map_err(EngineError::Env)?;
        if scripts_fp != self.scripts_fingerprint() {
            return Err(EngineError::Env(sgl_env::EnvError::Checkpoint(
                "checkpoint was written by a simulation running different scripts".into(),
            )));
        }
        let stats = sgl_exec::checkpoint::import_runtime_stats(
            reader.require(section::STATS, "runtime statistics")?,
        )?;
        let (_writer_planner, choices) = sgl_exec::checkpoint::import_planner_state(
            reader.require(section::PLANNER, "planner state")?,
        )?;
        let maint = sgl_exec::checkpoint::import_maint_stats(
            reader.require(section::MAINT, "maintenance counters")?,
        )?;

        // Assemble the resumed plan and index state on the side, so *every*
        // fallible step — including index reconstruction — happens before
        // any of this simulation's state is replaced.
        let mut planned = plan_registry(&self.registry, &table, &config);
        if config.mode.uses_indexes() {
            match config.planner {
                // Continue under the writer's physical plan so a resume mid
                // re-costing window does not re-bootstrap from priors; the
                // next window boundary re-prices as usual.
                PlannerMode::CostBased(_) => {
                    sgl_exec::checkpoint::install_choices(&mut planned, choices);
                }
                // The forced mapping is deterministic — derive it rather
                // than trusting the writer's choices, so a migration from
                // any planner mode lands on the same plan.
                PlannerMode::ForceMaterialized => {
                    force_materialized(&mut planned);
                }
                // Under a heuristic resume configuration the choices are
                // dropped — the heuristic mapping is the configuration's
                // explicit request.
                PlannerMode::Heuristic => {}
            }
        }
        // Deterministic index reconstruction + eager resume-time validation:
        // rebuild whatever maintained structures the resumed physical plan
        // needs from the restored table now, so an unbuildable state fails
        // here rather than mid-first-tick.  (Rebuilt and incrementally
        // maintained structures answer identically — the equivalence suites
        // prove it — so reconstruction never changes the game.)
        let mut index_manager = IndexManager::new(&config);
        if planned
            .values()
            .any(|p| index_manager.plan_is_maintained(p) || index_manager.plan_is_materialized(p))
        {
            index_manager.prepare(&table, &planned, &self.constants)?;
        }
        // Restore the writer's maintenance counters on top of the
        // reconstruction pass, so monitoring continuity survives a
        // migration (the reconstruction is bookkeeping of the resume, not
        // of a tick).
        index_manager.last_maint = maint;

        // Everything decoded, validated and rebuilt — commit.
        self.table = table;
        self.planned = planned;
        self.index_manager = index_manager;
        self.exec_config = config;
        self.runtime_stats = stats;
        self.rng = GameRng::new(seed);
        self.tick = tick;
        self.history.clear();
        // Checkpoints carry no bytecode: reconstruct the compiled scripts
        // from their stored normalized ASTs under the resume configuration.
        self.recompile_scripts();
        Ok(())
    }

    /// Count units per value of an attribute (handy for reports and tests).
    pub fn population_by(&self, attr: AttrId) -> FxHashMap<i64, usize> {
        let mut out = FxHashMap::default();
        for (_, row) in self.table.iter() {
            *out.entry(row.get_i64(attr).unwrap_or(0)).or_insert(0) += 1;
        }
        out
    }
}

/// Aggregate statistics over a multi-tick run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunSummary {
    /// Ticks simulated.
    pub ticks: usize,
    /// Total execution statistics.
    pub exec: TickStats,
    /// Total deaths (resurrections).
    pub deaths: usize,
    /// Population after the last tick.
    pub final_population: usize,
    /// Total wall-clock time per phase across the run.
    pub timings: PhaseTimings,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_algebra::{optimize, translate};
    use sgl_env::postprocess::PostProcessor;
    use sgl_env::{schema::paper_schema, Schema, TupleBuilder, UpdateExpr};
    use sgl_lang::builtins::paper_registry;
    use sgl_lang::normalize::normalize;
    use sgl_lang::parse_script;
    use std::sync::Arc;

    fn compile(src: &str) -> LogicalPlan {
        let registry = paper_registry();
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &registry).unwrap();
        optimize(translate(&normal), &registry).plan
    }

    fn build_sim(n: usize, mode_indexed: bool) -> (Arc<Schema>, Simulation) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for key in 0..n {
            let t = TupleBuilder::new(&schema)
                .set("key", key as i64)
                .unwrap()
                .set("player", (key % 2) as i64)
                .unwrap()
                .set("posx", next() * 50.0)
                .unwrap()
                .set("posy", next() * 50.0)
                .unwrap()
                .set("health", 20i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let registry = paper_registry();
        let health = schema.attr_id("health").unwrap();
        let damage = schema.attr_id("damage").unwrap();
        let aura = schema.attr_id("inaura").unwrap();
        let cooldown = schema.attr_id("cooldown").unwrap();
        let weapon = schema.attr_id("weaponused").unwrap();
        let post = PostProcessor::new(Arc::clone(&schema))
            .assign(
                health,
                UpdateExpr::add(
                    UpdateExpr::sub(UpdateExpr::State(health), UpdateExpr::Effect(damage)),
                    UpdateExpr::Effect(aura),
                ),
            )
            .assign(
                cooldown,
                UpdateExpr::max(
                    UpdateExpr::add(
                        UpdateExpr::sub(
                            UpdateExpr::State(cooldown),
                            UpdateExpr::Const(Value::Int(1)),
                        ),
                        UpdateExpr::mul(
                            UpdateExpr::Effect(weapon),
                            UpdateExpr::Const(Value::Int(3)),
                        ),
                    ),
                    UpdateExpr::Const(Value::Int(0)),
                ),
            )
            .remove_when_le(health, 0i64);
        let mechanics = Mechanics {
            post,
            movement: Some(MovementConfig {
                x: schema.attr_id("posx").unwrap(),
                y: schema.attr_id("posy").unwrap(),
                dx: schema.attr_id("movevect_x").unwrap(),
                dy: schema.attr_id("movevect_y").unwrap(),
                step: 1.0,
                collision_radius: 0.5,
                world: (0.0, 0.0, 50.0, 50.0),
            }),
            resurrect: None,
        };
        let exec = if mode_indexed {
            ExecConfig::indexed(&schema)
        } else {
            ExecConfig::naive(&schema)
        };
        let mut sim = Simulation::new(table, registry, mechanics, exec, 1234);
        let plan = compile(
            r#"main(u) {
                (let c = CountEnemiesInRange(u, 10))
                if c > 3 then
                  perform MoveInDirection(u, u.posx - 5, u.posy);
                else if c > 0 and u.cooldown = 0 then
                  perform FireAt(u, getNearestEnemy(u).key);
                else
                  perform MoveInDirection(u, 25, 25);
            }"#,
        );
        sim.add_script("battle", plan, UnitSelector::All);
        (schema, sim)
    }

    #[test]
    fn simulation_steps_and_collects_history() {
        let (_schema, mut sim) = build_sim(30, true);
        let summary = sim.run(5).unwrap();
        assert_eq!(summary.ticks, 5);
        assert_eq!(sim.history().len(), 5);
        assert_eq!(sim.current_tick(), 5);
        assert!(summary.exec.aggregate_probes > 0);
        assert!(summary.final_population <= 30);
        assert!(!sim.registry().aggregate_names().is_empty());
    }

    #[test]
    fn naive_and_indexed_simulations_agree_on_integer_state() {
        let (schema, mut naive) = build_sim(24, false);
        let (_, mut indexed) = build_sim(24, true);
        for _ in 0..3 {
            naive.step().unwrap();
            indexed.step().unwrap();
        }
        assert_eq!(naive.table().sorted_keys(), indexed.table().sorted_keys());
        let health = schema.attr_id("health").unwrap();
        let cooldown = schema.attr_id("cooldown").unwrap();
        let posx = schema.attr_id("posx").unwrap();
        for key in naive.table().sorted_keys() {
            let a = naive.table().find_key_readonly(key).unwrap();
            let b = indexed.table().find_key_readonly(key).unwrap();
            assert_eq!(
                naive.table().row(a).get_i64(health).unwrap(),
                indexed.table().row(b).get_i64(health).unwrap(),
                "health of unit {key}"
            );
            assert_eq!(
                naive.table().row(a).get_i64(cooldown).unwrap(),
                indexed.table().row(b).get_i64(cooldown).unwrap(),
                "cooldown of unit {key}"
            );
            let xa = naive.table().row(a).get_f64(posx).unwrap();
            let xb = indexed.table().row(b).get_f64(posx).unwrap();
            assert!((xa - xb).abs() < 1e-6, "posx of unit {key}: {xa} vs {xb}");
        }
    }

    #[test]
    fn maintenance_policies_agree_with_rebuild_across_ticks() {
        use sgl_exec::MaintenancePolicy;
        let (_, mut rebuild) = build_sim(28, true);
        let reference: Vec<crate::replay::StateDigest> = (0..6)
            .map(|_| {
                rebuild.step().unwrap();
                rebuild.digest()
            })
            .collect();
        for policy in [
            MaintenancePolicy::Incremental,
            MaintenancePolicy::adaptive(),
        ] {
            let (schema, mut sim) = build_sim(28, true);
            sim.set_exec_config(ExecConfig::indexed(&schema).with_policy(policy));
            for (tick, expected) in reference.iter().enumerate() {
                let report = sim.step().unwrap();
                assert_eq!(
                    sim.digest(),
                    *expected,
                    "policy {policy:?} diverged at tick {tick}"
                );
                assert_eq!(report.exec.naive_scans, 0, "{policy:?}");
            }
            // The maintained policies actually maintained something.
            let total_deltas: usize = sim
                .history()
                .iter()
                .map(|r| r.exec.index_delta_ops + r.exec.partition_rebuilds)
                .sum();
            assert!(
                total_deltas > 0,
                "{policy:?} never touched maintained state"
            );
            assert!(sim.index_manager().policy().is_dynamic());
            assert!(
                sim.index_manager().maintained_aggregates() > 0,
                "{policy:?}"
            );
        }
    }

    #[test]
    fn maintenance_timings_are_recorded_for_dynamic_policies() {
        use sgl_exec::MaintenancePolicy;
        let (schema, mut sim) = build_sim(20, true);
        sim.set_exec_config(
            ExecConfig::indexed(&schema).with_policy(MaintenancePolicy::Incremental),
        );
        sim.run(3).unwrap();
        // The maintain phase ran (its duration is part of every report); the
        // rebuild policy leaves it at zero.
        let (_, mut plain) = build_sim(20, true);
        plain.run(3).unwrap();
        for report in plain.history() {
            assert_eq!(report.timings.maintain, std::time::Duration::ZERO);
            assert_eq!(report.exec.index_delta_ops, 0);
        }
        let maintained_rows: usize = sim.index_manager().last_maint.rows_scanned;
        assert!(maintained_rows > 0);
    }

    #[test]
    fn parallel_simulation_reproduces_serial_digests() {
        let (_, mut serial) = build_sim(30, true);
        let reference: Vec<crate::replay::StateDigest> = (0..5)
            .map(|_| {
                serial.step().unwrap();
                serial.digest()
            })
            .collect();
        for threads in [2usize, 4] {
            let (_, mut sim) = build_sim(30, true);
            sim.set_parallelism(Parallelism::Threads(threads));
            assert_eq!(sim.exec_config().parallelism, Parallelism::Threads(threads));
            for (tick, expected) in reference.iter().enumerate() {
                sim.step().unwrap();
                assert_eq!(
                    sim.digest(),
                    *expected,
                    "{threads} threads diverged at tick {tick}"
                );
            }
        }
    }

    #[test]
    fn oracle_mode_reproduces_plan_execution_digests() {
        use sgl_exec::ExecMode;
        // Register the battle script with its normalized AST so the oracle
        // can interpret it, then check tick-for-tick digest equality against
        // naive and indexed plan execution.
        let registry = paper_registry();
        let src = r#"main(u) {
            (let c = CountEnemiesInRange(u, 10))
            if c > 3 then
              perform MoveInDirection(u, u.posx - 5, u.posy);
            else if c > 0 and u.cooldown = 0 then
              perform FireAt(u, getNearestEnemy(u).key);
            else
              perform MoveInDirection(u, 25, 25);
        }"#;
        let script = parse_script(src).unwrap();
        let normal = normalize(&script, &registry).unwrap();
        let plan = optimize(translate(&normal), &registry).plan;

        let build = |mode: ExecMode| {
            let (schema, mut sim) = build_sim(26, true);
            sim.clear_scripts();
            sim.add_script_with_source("battle", plan.clone(), normal.clone(), UnitSelector::All);
            sim.set_exec_config(ExecConfig::for_mode(mode, &schema));
            sim
        };
        let mut oracle = build(ExecMode::Oracle);
        let mut naive = build(ExecMode::Naive);
        let mut indexed = build(ExecMode::Indexed);
        for tick in 0..5 {
            let report = oracle.step().unwrap();
            naive.step().unwrap();
            indexed.step().unwrap();
            assert_eq!(
                oracle.digest(),
                naive.digest(),
                "oracle vs naive, tick {tick}"
            );
            assert_eq!(
                oracle.digest(),
                indexed.digest(),
                "oracle vs indexed, tick {tick}"
            );
            // The oracle never touches an index and never shares results.
            assert_eq!(report.exec.index_probes, 0);
            assert_eq!(report.exec.shared_hits, 0);
            assert_eq!(report.exec.naive_scans, report.exec.aggregate_probes);
        }
    }

    #[test]
    fn oracle_mode_requires_script_sources() {
        let (schema, mut sim) = build_sim(8, true);
        // build_sim registers through add_script (plan only) — the oracle
        // must refuse rather than silently falling back to the plan.
        sim.set_exec_config(ExecConfig::oracle(&schema));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "{err}");
    }

    #[test]
    fn checkpoint_resume_continues_the_exact_digest_trajectory() {
        // Uninterrupted reference run.
        let (_, mut reference) = build_sim(26, true);
        let digests: Vec<crate::replay::StateDigest> = (0..8)
            .map(|_| {
                reference.step().unwrap();
                reference.digest()
            })
            .collect();
        // Interrupted run: 3 ticks, checkpoint, resume into a fresh
        // simulation, 5 more ticks — every digest must match bit for bit.
        let (_, mut writer) = build_sim(26, true);
        for (tick, expected) in digests.iter().take(3).enumerate() {
            writer.step().unwrap();
            assert_eq!(writer.digest(), *expected, "writer diverged at {tick}");
        }
        let bytes = writer.checkpoint().unwrap();
        assert_eq!(
            bytes,
            writer.checkpoint().unwrap(),
            "checkpointing is deterministic"
        );
        let (_, mut resumed) = build_sim(26, true);
        let config = *resumed.exec_config();
        resumed.resume(&bytes, config).unwrap();
        assert_eq!(resumed.current_tick(), 3);
        assert_eq!(resumed.digest(), digests[2], "restored table digest");
        assert!(resumed.history().is_empty());
        for (tick, expected) in digests.iter().enumerate().skip(3) {
            resumed.step().unwrap();
            assert_eq!(
                resumed.digest(),
                *expected,
                "resumed run diverged at {tick}"
            );
        }
    }

    #[test]
    fn resume_under_a_different_config_is_digest_identical() {
        use sgl_exec::MaintenancePolicy;
        let (_, mut reference) = build_sim(24, true);
        let digests: Vec<crate::replay::StateDigest> = (0..7)
            .map(|_| {
                reference.step().unwrap();
                reference.digest()
            })
            .collect();
        let (_, mut writer) = build_sim(24, true);
        for _ in 0..4 {
            writer.step().unwrap();
        }
        let bytes = writer.checkpoint().unwrap();
        // Writer ran rebuild-each-tick serial; resume under incremental
        // maintenance with 4 worker threads.
        let (schema, mut resumed) = build_sim(24, true);
        let config = ExecConfig::indexed(&schema)
            .with_policy(MaintenancePolicy::Incremental)
            .with_parallelism(Parallelism::Threads(4));
        resumed.resume(&bytes, config).unwrap();
        assert!(resumed.index_manager().policy().is_dynamic());
        for (tick, expected) in digests.iter().enumerate().skip(4) {
            resumed.step().unwrap();
            assert_eq!(
                resumed.digest(),
                *expected,
                "cross-config resume diverged at {tick}"
            );
        }
        // The maintained structures were reconstructed at resume time.
        assert!(resumed.index_manager().maintained_aggregates() > 0);
    }

    #[test]
    fn resume_rejects_corruption_and_mismatches_without_touching_state() {
        let (_, mut writer) = build_sim(12, true);
        writer.run(2).unwrap();
        let bytes = writer.checkpoint().unwrap();

        let (_, mut target) = build_sim(12, true);
        target.run(1).unwrap();
        let digest_before = target.digest();
        let config = *target.exec_config();

        // Bit flip anywhere fails with a typed checkpoint/snapshot error.
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() / 2] ^= 0x40;
        let err = target.resume(&corrupt, config).unwrap_err();
        assert!(matches!(err, EngineError::Env(_)), "{err}");
        // Truncation too.
        let err = target
            .resume(&bytes[..bytes.len() - 9], config)
            .unwrap_err();
        assert!(matches!(err, EngineError::Env(_)), "{err}");
        // Different scripts: same schema, different behaviour.
        let (_, mut other_scripts) = build_sim(12, true);
        other_scripts.clear_scripts();
        other_scripts.add_script(
            "different",
            compile("main(u) { perform MoveInDirection(u, 0, 0); }"),
            UnitSelector::All,
        );
        let err = other_scripts.resume(&bytes, config).unwrap_err();
        assert!(
            err.to_string().contains("different scripts"),
            "expected a scripts mismatch, got: {err}"
        );
        // A failed resume leaves the target untouched.
        assert_eq!(target.digest(), digest_before);
        assert_eq!(target.current_tick(), 1);
        assert_eq!(target.history().len(), 1);
    }

    #[test]
    fn resume_rejects_a_different_schema() {
        let (_, mut writer) = build_sim(10, true);
        writer.run(1).unwrap();
        let bytes = writer.checkpoint().unwrap();
        // A simulation over a different schema must refuse the checkpoint.
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("posx", 0.0)
            .const_attr("posy", 0.0)
            .const_attr("health", 10i64)
            .sum_attr("damage", 0i64);
        let schema = b.build().unwrap().into_shared();
        let table = EnvTable::new(Arc::clone(&schema));
        let mechanics = Mechanics {
            post: PostProcessor::new(Arc::clone(&schema)),
            movement: None,
            resurrect: None,
        };
        let mut sim = Simulation::new(
            table,
            paper_registry(),
            mechanics,
            ExecConfig::naive(&schema),
            1,
        );
        let err = sim.resume(&bytes, ExecConfig::naive(&schema)).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
    }

    #[test]
    fn checkpoint_carries_runtime_stats_and_planner_choices() {
        use sgl_exec::PlannerMode;
        let (schema, mut writer) = build_sim(30, true);
        writer.set_exec_config(
            ExecConfig::cost_based(&schema).with_planner(PlannerMode::cost_based(2)),
        );
        for _ in 0..5 {
            writer.step().unwrap();
        }
        let stats_before = writer.runtime_stats().clone();
        let choices_before = writer.physical_choices();
        assert!(stats_before.ticks == 5 && !stats_before.calls.is_empty());
        let bytes = writer.checkpoint().unwrap();

        let (_, mut resumed) = build_sim(30, true);
        resumed
            .resume(
                &bytes,
                ExecConfig::cost_based(&schema).with_planner(PlannerMode::cost_based(2)),
            )
            .unwrap();
        assert_eq!(resumed.runtime_stats().ticks, 5);
        assert_eq!(
            resumed.runtime_stats().cardinality.to_bits(),
            stats_before.cardinality.to_bits()
        );
        assert_eq!(
            resumed.physical_choices(),
            choices_before,
            "installed physical choices survive the resume"
        );
    }

    #[test]
    fn selectors_assign_scripts_by_attribute() {
        let (schema, mut sim) = build_sim(10, true);
        sim.clear_scripts();
        let player = schema.attr_id("player").unwrap();
        sim.add_script(
            "p0",
            compile("main(u) { perform MoveInDirection(u, 0, 0); }"),
            UnitSelector::AttrEquals(player, Value::Int(0)),
        );
        sim.add_script(
            "p1",
            compile("main(u) { perform MoveInDirection(u, 50, 50); }"),
            UnitSelector::AttrEquals(player, Value::Int(1)),
        );
        let report = sim.step().unwrap();
        assert_eq!(report.exec.acting_units, 10);
        assert_eq!(sim.scripts().len(), 2);
        let counts = sim.population_by(player);
        assert_eq!(counts[&0] + counts[&1], 10);
    }

    #[test]
    fn resurrection_keeps_population_constant() {
        // Schema with a max_health attribute for the respawn rule.
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("player", 0i64)
            .const_attr("posx", 0.0)
            .const_attr("posy", 0.0)
            .const_attr("health", 0i64)
            .const_attr("max_health", 20i64)
            .const_attr("cooldown", 0i64)
            .sum_attr("weaponused", 0i64)
            .sum_attr("movevect_x", 0.0)
            .sum_attr("movevect_y", 0.0)
            .sum_attr("damage", 0i64)
            .max_attr("inaura", 0i64);
        let schema = b.build().unwrap().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for (key, player, hp) in [(0i64, 0i64, 20i64), (1, 1, 1)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", player)
                .unwrap()
                .set("posx", key as f64)
                .unwrap()
                .set("health", hp)
                .unwrap()
                .set("max_health", 20i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let health = schema.attr_id("health").unwrap();
        let damage = schema.attr_id("damage").unwrap();
        let post = PostProcessor::new(Arc::clone(&schema)).assign(
            health,
            UpdateExpr::sub(UpdateExpr::State(health), UpdateExpr::Effect(damage)),
        );
        let mechanics = Mechanics {
            post,
            movement: None,
            resurrect: Some(ResurrectConfig {
                health,
                max_health: schema.attr_id("max_health").unwrap(),
                world: (0.0, 0.0, 10.0, 10.0),
                x: schema.attr_id("posx").unwrap(),
                y: schema.attr_id("posy").unwrap(),
            }),
        };
        let mut sim = Simulation::new(
            table,
            paper_registry(),
            mechanics,
            ExecConfig::indexed(&schema),
            7,
        );
        sim.add_script(
            "fire",
            compile(
                "main(u) { if u.cooldown = 0 then perform FireAt(u, getNearestEnemy(u).key); }",
            ),
            UnitSelector::All,
        );
        let mut total_deaths = 0;
        for _ in 0..8 {
            let report = sim.step().unwrap();
            total_deaths += report.deaths;
            assert_eq!(report.population, 2);
            for (_, row) in sim.table().iter() {
                assert!(
                    row.get_i64(health).unwrap() > 0,
                    "dead units must be resurrected"
                );
            }
        }
        // With a 50% hit chance and 4 damage per hit over 8 ticks, the weak
        // unit dies at least once with overwhelming probability.
        assert!(total_deaths >= 1);
    }
}
