//! Determinism harness: state digests, tick traces and trace comparison.
//!
//! The central promise of the paper's optimizations is that they are *pure*
//! optimizations: the indexed, rewritten, set-at-a-time execution produces
//! exactly the same game state, tick for tick, as evaluating every script
//! naively.  Because all randomness flows through the deterministic per-tick
//! random function `Random(i)` (§4.1), two runs with the same seed must agree
//! bit for bit on integer state and up to rounding on positions.
//!
//! This module turns that promise into something checkable:
//!
//! * [`StateDigest`] — an order-independent fingerprint of an environment
//!   table (integer attributes exact, float attributes quantized);
//! * [`TickTrace`] / [`TraceRecorder`] — a per-tick sequence of digests and
//!   population counts recorded while a simulation runs;
//! * [`compare_traces`] — locate the first tick at which two traces diverge.
//!
//! The integration tests use these to assert naive ≡ indexed ≡ ablated
//! configurations, and the `replay_determinism` example demonstrates the
//! workflow for game developers (record a trace once, replay after every
//! engine change).

use sgl_env::{EnvTable, PageData, Value};

/// Quantization applied to float attributes before hashing (six decimal
/// digits: movement arithmetic is identical across executors, but guarding
/// against representation differences keeps the digest robust).
const FLOAT_QUANTUM: f64 = 1e6;

/// An order-independent fingerprint of an environment table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateDigest {
    /// Combined hash of every unit's state.
    pub hash: u64,
    /// Number of units in the table.
    pub population: usize,
}

impl StateDigest {
    /// Compute the digest of a table.
    ///
    /// Each row is hashed independently (key, then every attribute in schema
    /// order) and the row hashes are combined with a commutative operation,
    /// so the digest does not depend on physical row order — the two
    /// executors may materialise rows differently after removals.
    pub fn of_table(table: &EnvTable) -> StateDigest {
        let schema = table.schema();
        let n = table.len();
        // Column-major walk over the struct-of-arrays table: one resumable
        // FNV state per row, advanced a whole attribute column at a time.
        // FNV-1a's state is a single u64, so hashing attribute k for every
        // row before attribute k+1 produces *exactly* the per-row hashes of
        // the historical row-major loop — digests are layout-independent.
        let mut states: Vec<u64> = vec![FNV_OFFSET; n];
        for attr in 0..schema.len() {
            let mut row = 0usize;
            table
                .for_each_column_page(attr, |page| match page {
                    PageData::I64(v) => {
                        for x in v {
                            let h = &mut states[row];
                            fnv_write_u64(h, attr as u64);
                            fnv_write_u64(h, 1);
                            fnv_write_u64(h, *x as u64);
                            row += 1;
                        }
                    }
                    PageData::F64(v) => {
                        for x in v {
                            let h = &mut states[row];
                            fnv_write_u64(h, attr as u64);
                            fnv_write_u64(h, 2);
                            fnv_write_u64(h, (x * FLOAT_QUANTUM).round() as i64 as u64);
                            row += 1;
                        }
                    }
                    PageData::Bool(v) => {
                        for b in v {
                            let h = &mut states[row];
                            fnv_write_u64(h, attr as u64);
                            fnv_write_u64(h, 3);
                            fnv_write_u64(h, *b as u64);
                            row += 1;
                        }
                    }
                    PageData::Mixed(v) => {
                        for value in v {
                            let h = &mut states[row];
                            fnv_write_u64(h, attr as u64);
                            hash_value(h, value);
                            row += 1;
                        }
                    }
                })
                .expect("page manager I/O failed");
        }
        // Commutative combine: sum of bijectively mixed row hashes.
        let combined = states
            .into_iter()
            .fold(0u64, |acc, s| acc.wrapping_add(mix(s)));
        StateDigest {
            hash: combined,
            population: n,
        }
    }
}

fn hash_value(h: &mut u64, value: &Value) {
    match value {
        Value::Int(v) => {
            fnv_write_u64(h, 1);
            fnv_write_u64(h, *v as u64);
        }
        Value::Float(v) => {
            fnv_write_u64(h, 2);
            let q = (v * FLOAT_QUANTUM).round() as i64;
            fnv_write_u64(h, q as u64);
        }
        Value::Bool(b) => {
            fnv_write_u64(h, 3);
            fnv_write_u64(h, *b as u64);
        }
        Value::Str(s) => {
            fnv_write_u64(h, 4);
            for byte in s.as_bytes() {
                fnv_write_u64(h, *byte as u64);
            }
        }
    }
}

/// Finalization mixer (splitmix64) applied to row hashes before the
/// commutative combination, so that swapping values *between* rows changes
/// the digest even though row order does not matter.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Minimal FNV-1a hashing over bare `u64` states (no external dependencies,
/// stable across platforms).  The state is carried per row while columns are
/// walked, so it must be resumable — hence free functions over a plain u64
/// instead of a hasher struct.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv_write_u64(state: &mut u64, v: u64) {
    for shift in (0..64).step_by(8) {
        let byte = (v >> shift) & 0xFF;
        *state ^= byte;
        *state = state.wrapping_mul(FNV_PRIME);
    }
}

/// The recorded observation of one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickTrace {
    /// Tick number.
    pub tick: u64,
    /// Digest of the environment *after* the tick.
    pub digest: StateDigest,
    /// Units that died (or were resurrected) during the tick.
    pub deaths: usize,
}

/// Records a trace of a running simulation.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    entries: Vec<TickTrace>,
}

impl TraceRecorder {
    /// Start an empty trace.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Record one tick (call after `Simulation::step`).
    pub fn record(&mut self, tick: u64, table: &EnvTable, deaths: usize) {
        self.entries.push(TickTrace {
            tick,
            digest: StateDigest::of_table(table),
            deaths,
        });
    }

    /// Append an already-recorded observation (splicing trace tails when
    /// comparing a resumed run against the matching suffix of a full run).
    pub fn push(&mut self, entry: TickTrace) {
        self.entries.push(entry);
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TickTrace] {
        &self.entries
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The result of comparing two traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceComparison {
    /// The traces are identical (same length, same digests).
    Identical,
    /// The traces agree on their common prefix but have different lengths.
    LengthMismatch {
        /// Length of the first trace.
        left: usize,
        /// Length of the second trace.
        right: usize,
    },
    /// The traces diverge.  Both sides' recorded observations are carried so
    /// a failing soak or determinism test can report *what* differed (both
    /// digests, both populations, both death counts), not just where.
    DivergesAt {
        /// First tick index at which the recorded observations differ.
        tick: u64,
        /// The first trace's observation at the divergent tick.
        left: TickTrace,
        /// The second trace's observation at the divergent tick.
        right: TickTrace,
    },
}

impl std::fmt::Display for TraceComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceComparison::Identical => write!(f, "traces are identical"),
            TraceComparison::LengthMismatch { left, right } => {
                write!(f, "trace lengths differ: {left} vs {right} ticks")
            }
            TraceComparison::DivergesAt { tick, left, right } => write!(
                f,
                "traces diverge at tick {tick}: \
                 left digest {:016x} (population {}, deaths {}) vs \
                 right digest {:016x} (population {}, deaths {})",
                left.digest.hash,
                left.digest.population,
                left.deaths,
                right.digest.hash,
                right.digest.population,
                right.deaths,
            ),
        }
    }
}

/// Compare two traces tick by tick.
pub fn compare_traces(a: &TraceRecorder, b: &TraceRecorder) -> TraceComparison {
    for (ta, tb) in a.entries().iter().zip(b.entries()) {
        if ta.digest != tb.digest || ta.deaths != tb.deaths {
            return TraceComparison::DivergesAt {
                tick: ta.tick.min(tb.tick),
                left: *ta,
                right: *tb,
            };
        }
    }
    if a.len() != b.len() {
        return TraceComparison::LengthMismatch {
            left: a.len(),
            right: b.len(),
        };
    }
    TraceComparison::Identical
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgl_env::schema::paper_schema;
    use sgl_env::{EnvTable, TupleBuilder};
    use std::sync::Arc;

    fn table_with(units: &[(i64, f64, i64)]) -> EnvTable {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for (key, x, hp) in units {
            let t = TupleBuilder::new(&schema)
                .set("key", *key)
                .unwrap()
                .set("posx", *x)
                .unwrap()
                .set("health", *hp)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        table
    }

    #[test]
    fn identical_tables_have_identical_digests() {
        let a = table_with(&[(1, 1.0, 10), (2, 2.0, 20)]);
        let b = table_with(&[(1, 1.0, 10), (2, 2.0, 20)]);
        assert_eq!(StateDigest::of_table(&a), StateDigest::of_table(&b));
    }

    #[test]
    fn digest_is_independent_of_row_order() {
        let a = table_with(&[(1, 1.0, 10), (2, 2.0, 20)]);
        let b = table_with(&[(2, 2.0, 20), (1, 1.0, 10)]);
        assert_eq!(
            StateDigest::of_table(&a).hash,
            StateDigest::of_table(&b).hash
        );
    }

    #[test]
    fn digest_detects_changed_values() {
        let a = table_with(&[(1, 1.0, 10), (2, 2.0, 20)]);
        let b = table_with(&[(1, 1.0, 10), (2, 2.0, 21)]);
        assert_ne!(
            StateDigest::of_table(&a).hash,
            StateDigest::of_table(&b).hash
        );
        // Swapping values between rows must also be detected even though row
        // combination is commutative.
        let c = table_with(&[(1, 2.0, 10), (2, 1.0, 20)]);
        assert_ne!(
            StateDigest::of_table(&a).hash,
            StateDigest::of_table(&c).hash
        );
    }

    #[test]
    fn digest_ignores_sub_quantum_float_noise() {
        let a = table_with(&[(1, 1.0, 10)]);
        let b = table_with(&[(1, 1.0 + 1e-9, 10)]);
        assert_eq!(
            StateDigest::of_table(&a).hash,
            StateDigest::of_table(&b).hash
        );
        let c = table_with(&[(1, 1.0 + 1e-3, 10)]);
        assert_ne!(
            StateDigest::of_table(&a).hash,
            StateDigest::of_table(&c).hash
        );
    }

    #[test]
    fn population_is_part_of_the_digest() {
        let a = table_with(&[(1, 1.0, 10)]);
        let b = table_with(&[(1, 1.0, 10), (2, 2.0, 20)]);
        assert_ne!(StateDigest::of_table(&a), StateDigest::of_table(&b));
        assert_eq!(StateDigest::of_table(&a).population, 1);
        assert_eq!(StateDigest::of_table(&b).population, 2);
    }

    #[test]
    fn trace_recording_and_comparison() {
        let t1 = table_with(&[(1, 1.0, 10)]);
        let t2 = table_with(&[(1, 2.0, 9)]);
        let t2_same = table_with(&[(1, 2.0, 9)]);
        let t2_diff = table_with(&[(1, 2.0, 8)]);

        let mut a = TraceRecorder::new();
        a.record(0, &t1, 0);
        a.record(1, &t2, 1);

        let mut b = TraceRecorder::new();
        b.record(0, &t1, 0);
        b.record(1, &t2_same, 1);
        assert_eq!(compare_traces(&a, &b), TraceComparison::Identical);

        let mut c = TraceRecorder::new();
        c.record(0, &t1, 0);
        c.record(1, &t2_diff, 1);
        match compare_traces(&a, &c) {
            TraceComparison::DivergesAt { tick, left, right } => {
                assert_eq!(tick, 1);
                assert_eq!(left.digest, StateDigest::of_table(&t2));
                assert_eq!(right.digest, StateDigest::of_table(&t2_diff));
            }
            other => panic!("expected divergence, got {other:?}"),
        }

        let mut d = TraceRecorder::new();
        d.record(0, &t1, 0);
        assert_eq!(
            compare_traces(&a, &d),
            TraceComparison::LengthMismatch { left: 2, right: 1 }
        );
        assert!(!d.is_empty());
        assert_eq!(d.len(), 1);
        assert_eq!(d.entries()[0].tick, 0);
    }

    #[test]
    fn death_counts_participate_in_comparison() {
        let t = table_with(&[(1, 1.0, 10)]);
        let mut a = TraceRecorder::new();
        a.record(0, &t, 0);
        let mut b = TraceRecorder::new();
        b.record(0, &t, 2);
        match compare_traces(&a, &b) {
            TraceComparison::DivergesAt { tick, left, right } => {
                assert_eq!(tick, 0);
                assert_eq!(left.deaths, 0);
                assert_eq!(right.deaths, 2);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    /// Divergence reporting pins the first divergent tick and both sides'
    /// population fields, and its rendered message names both digests —
    /// the soak harness relies on this being diagnosable, not opaque.
    #[test]
    fn divergence_reports_carry_both_sides() {
        let shared = table_with(&[(1, 1.0, 10), (2, 2.0, 20)]);
        let left_t2 = table_with(&[(1, 1.5, 9), (2, 2.0, 20)]);
        let right_t2 = table_with(&[(1, 1.5, 9)]); // unit 2 vanished
        let left_t3 = table_with(&[(1, 1.6, 8), (2, 2.0, 20)]);

        let mut a = TraceRecorder::new();
        a.record(0, &shared, 0);
        a.record(1, &left_t2, 0);
        a.record(2, &left_t3, 0);
        let mut b = TraceRecorder::new();
        b.record(0, &shared, 0);
        b.record(1, &right_t2, 1);
        b.record(2, &left_t3, 0);

        let cmp = compare_traces(&a, &b);
        let TraceComparison::DivergesAt { tick, left, right } = cmp else {
            panic!("expected divergence, got {cmp:?}");
        };
        // First divergent tick, not the last difference.
        assert_eq!(tick, 1);
        assert_eq!(left.digest.population, 2);
        assert_eq!(right.digest.population, 1);
        assert_eq!(left.digest, StateDigest::of_table(&left_t2));
        assert_eq!(right.digest, StateDigest::of_table(&right_t2));

        let message = cmp.to_string();
        assert!(message.contains("tick 1"), "{message}");
        assert!(
            message.contains(&format!("{:016x}", left.digest.hash)),
            "message must include the left digest: {message}"
        );
        assert!(
            message.contains(&format!("{:016x}", right.digest.hash)),
            "message must include the right digest: {message}"
        );
        assert!(message.contains("population 2"), "{message}");
        assert!(message.contains("population 1"), "{message}");

        // The other variants render, too.
        assert_eq!(compare_traces(&a, &a).to_string(), "traces are identical");
        let mut short = TraceRecorder::new();
        short.record(0, &shared, 0);
        assert!(compare_traces(&a, &short)
            .to_string()
            .contains("3 vs 1 ticks"));
    }
}
