//! Per-phase timing metrics and throughput analysis.
//!
//! The paper's evaluation (§6) reports wall-clock seconds for 500 simulated
//! clock ticks and derives a capacity figure from the rule of thumb that "a
//! game engine should be able to simulate at least 10 clock ticks per
//! second".  This module provides the measurement plumbing for both:
//!
//! * [`PhaseTimings`] — how long each phase of a tick took (§6 lists the
//!   phases: index building + decision + action inside the executor, then
//!   post-processing, movement and the resurrection rule);
//! * [`RollingStats`] — streaming mean / min / max / variance over any
//!   per-tick quantity without storing the history;
//! * [`ThroughputReport`] — ticks-per-second summary plus the 10-ticks/s
//!   capacity check used for the §6.1 capacity claim.

use std::time::Duration;

/// Wall-clock duration of each phase of one simulated tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Index building + decision + action phases (everything inside
    /// `sgl_exec::execute_tick`, including per-tick index construction).
    pub exec: Duration,
    /// Post-processing (applying combined effects, removing the dead).
    pub post: Duration,
    /// Movement phase (collision detection, simple pathfinding).
    pub movement: Duration,
    /// Resurrection rule.
    pub resurrect: Duration,
    /// Cross-tick index maintenance (diff + delta application / partition
    /// rebuilds) performed after the mutation phases; zero under the
    /// rebuild-each-tick policy.
    pub maintain: Duration,
}

impl PhaseTimings {
    /// Total duration of the tick.
    pub fn total(&self) -> Duration {
        self.exec + self.post + self.movement + self.resurrect + self.maintain
    }

    /// Accumulate another tick's timings (used by run summaries).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.exec += other.exec;
        self.post += other.post;
        self.movement += other.movement;
        self.resurrect += other.resurrect;
        self.maintain += other.maintain;
    }

    /// Fraction of the tick spent inside the executor (decision + indexes).
    /// Returns `None` for an all-zero timing (e.g. a default value).
    pub fn exec_fraction(&self) -> Option<f64> {
        let total = self.total().as_secs_f64();
        if total > 0.0 {
            Some(self.exec.as_secs_f64() / total)
        } else {
            None
        }
    }
}

/// Page allocations (fresh pages plus spill fault-ins) attributed to each
/// phase of one simulated tick.  Sampled from the environment table's O(1)
/// allocation counter around every phase, so the deltas are exact.
///
/// Under a [`RamPageManager`](sgl_env::pager::RamPageManager) with no budget
/// the `fault_in` field stays zero; under a spill budget it counts the pages
/// the tick-start residency restore read back from the spill file — the
/// direct measure of how much of the working set the previous tick's
/// eviction pass pushed out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAllocs {
    /// Tick-start fault-in of pages evicted at the end of the previous tick.
    pub fault_in: u64,
    /// Decision/action phases (read-only over the table: normally zero).
    pub exec: u64,
    /// Post-processing (column writebacks of combined effects).
    pub post: u64,
    /// Movement phase (position column writes).
    pub movement: u64,
    /// Resurrection rule.
    pub resurrect: u64,
    /// Cross-tick index maintenance.
    pub maintain: u64,
}

impl PhaseAllocs {
    /// Total pages allocated during the tick.
    pub fn total(&self) -> u64 {
        self.fault_in + self.exec + self.post + self.movement + self.resurrect + self.maintain
    }

    /// Accumulate another tick's allocations (used by run summaries).
    pub fn accumulate(&mut self, other: &PhaseAllocs) {
        self.fault_in += other.fault_in;
        self.exec += other.exec;
        self.post += other.post;
        self.movement += other.movement;
        self.resurrect += other.resurrect;
        self.maintain += other.maintain;
    }
}

/// Streaming statistics over a sequence of samples (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RollingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RollingStats {
    /// An empty accumulator.
    pub fn new() -> RollingStats {
        RollingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; `None` when no samples were observed.
    pub fn mean(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.mean)
        } else {
            None
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.min)
        } else {
            None
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        if self.count > 0 {
            Some(self.max)
        } else {
            None
        }
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> Option<f64> {
        if self.count > 0 {
            Some((self.m2 / self.count as f64).max(0.0).sqrt())
        } else {
            None
        }
    }
}

/// Throughput summary over a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputReport {
    /// Ticks simulated.
    pub ticks: usize,
    /// Total wall-clock time spent simulating.
    pub total: Duration,
    /// Mean time per tick.
    pub mean_tick: Duration,
    /// Worst (longest) tick.
    pub worst_tick: Duration,
    /// Simulated ticks per second (mean).
    pub ticks_per_second: f64,
    /// Extrapolated seconds for 500 ticks — the unit of Figure 10.
    pub seconds_per_500_ticks: f64,
}

impl ThroughputReport {
    /// Build a report from a sequence of per-tick timings.
    pub fn from_timings<'a>(
        timings: impl IntoIterator<Item = &'a PhaseTimings>,
    ) -> ThroughputReport {
        let mut total = Duration::ZERO;
        let mut worst = Duration::ZERO;
        let mut ticks = 0usize;
        for t in timings {
            let tick = t.total();
            total += tick;
            worst = worst.max(tick);
            ticks += 1;
        }
        let mean_tick = if ticks > 0 {
            total / ticks as u32
        } else {
            Duration::ZERO
        };
        let secs = total.as_secs_f64();
        let ticks_per_second = if secs > 0.0 {
            ticks as f64 / secs
        } else {
            f64::INFINITY
        };
        let seconds_per_500_ticks = if ticks > 0 {
            mean_tick.as_secs_f64() * 500.0
        } else {
            0.0
        };
        ThroughputReport {
            ticks,
            total,
            mean_tick,
            worst_tick: worst,
            ticks_per_second,
            seconds_per_500_ticks,
        }
    }

    /// The paper's capacity criterion: can the engine sustain at least
    /// `target` ticks per second (the text uses 10)?
    pub fn sustains(&self, target: f64) -> bool {
        self.ticks_per_second >= target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(exec_ms: u64, post_ms: u64, movement_ms: u64, resurrect_ms: u64) -> PhaseTimings {
        PhaseTimings {
            exec: Duration::from_millis(exec_ms),
            post: Duration::from_millis(post_ms),
            movement: Duration::from_millis(movement_ms),
            resurrect: Duration::from_millis(resurrect_ms),
            maintain: Duration::ZERO,
        }
    }

    #[test]
    fn phase_timings_total_and_fraction() {
        let t = timing(60, 20, 15, 5);
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.exec_fraction().unwrap() - 0.6).abs() < 1e-9);
        assert_eq!(PhaseTimings::default().exec_fraction(), None);
    }

    #[test]
    fn phase_timings_accumulate() {
        let mut total = PhaseTimings::default();
        total.accumulate(&timing(10, 1, 2, 3));
        total.accumulate(&timing(20, 2, 4, 6));
        assert_eq!(total.exec, Duration::from_millis(30));
        assert_eq!(total.total(), Duration::from_millis(48));
        let mut with_maintenance = timing(10, 0, 0, 0);
        with_maintenance.maintain = Duration::from_millis(5);
        total.accumulate(&with_maintenance);
        assert_eq!(total.maintain, Duration::from_millis(5));
        assert_eq!(total.total(), Duration::from_millis(63));
    }

    #[test]
    fn rolling_stats_match_direct_computation() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut stats = RollingStats::new();
        for s in samples {
            stats.push(s);
        }
        assert_eq!(stats.count(), 8);
        assert_eq!(stats.mean(), Some(5.0));
        assert_eq!(stats.min(), Some(2.0));
        assert_eq!(stats.max(), Some(9.0));
        assert!((stats.std_dev().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_rolling_stats_yield_none() {
        let stats = RollingStats::new();
        assert_eq!(stats.mean(), None);
        assert_eq!(stats.min(), None);
        assert_eq!(stats.max(), None);
        assert_eq!(stats.std_dev(), None);
        assert_eq!(stats.count(), 0);
    }

    #[test]
    fn throughput_report_and_capacity_check() {
        // 10 ticks of 50 ms each → 20 ticks/s, 25 s per 500 ticks.
        let timings: Vec<PhaseTimings> = (0..10).map(|_| timing(40, 5, 5, 0)).collect();
        let report = ThroughputReport::from_timings(&timings);
        assert_eq!(report.ticks, 10);
        assert_eq!(report.mean_tick, Duration::from_millis(50));
        assert_eq!(report.worst_tick, Duration::from_millis(50));
        assert!((report.ticks_per_second - 20.0).abs() < 0.5);
        assert!((report.seconds_per_500_ticks - 25.0).abs() < 0.5);
        assert!(report.sustains(10.0));
        assert!(!report.sustains(30.0));
    }

    #[test]
    fn empty_throughput_report() {
        let report = ThroughputReport::from_timings(&[]);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.total, Duration::ZERO);
        assert!(report.ticks_per_second.is_infinite());
        assert!(report.sustains(10.0));
    }
}
