//! Grid pathfinding (A*) — the "AI engine" substrate of Figure 2.
//!
//! The paper's architecture diagram places a library of classical AI
//! algorithms ("AI Engine (e.g. Pathfinding)") next to the discrete
//! simulation engine, and §3.1 notes that modders resort to re-implementing
//! pathfinding in scripts only because the engine's own implementation is not
//! exposed to them.  The movement phase of §6 uses "very simple pathfinding
//! rules" (axis-aligned detours, implemented in [`crate::movement`]); this
//! module provides the real thing for games that need it: an occupancy grid
//! ([`GridMap`]) plus a deterministic A* search ([`astar`]) and a convenience
//! wrapper ([`next_waypoint`]) that scripts-driven movement can call through
//! the engine, exactly as the paper recommends (open the API instead of
//! making modders reimplement it).
//!
//! The implementation is deliberately classical: 8-connected grid, octile
//! heuristic, binary-heap frontier, ties broken by cell index so that two
//! runs with the same inputs produce the same path (determinism is a
//! requirement of the replay harness in [`crate::replay`]).

use std::collections::BinaryHeap;

use sgl_index::Point2;

/// A rectangular occupancy grid over the game world.
#[derive(Debug, Clone)]
pub struct GridMap {
    width: usize,
    height: usize,
    cell: f64,
    origin: Point2,
    blocked: Vec<bool>,
}

/// A cell coordinate (column, row).
pub type Cell = (i32, i32);

impl GridMap {
    /// Create an all-free grid covering `[origin, origin + (width, height) * cell]`.
    pub fn new(width: usize, height: usize, cell: f64, origin: Point2) -> GridMap {
        GridMap {
            width: width.max(1),
            height: height.max(1),
            cell: cell.max(1e-9),
            origin,
            blocked: vec![false; width.max(1) * height.max(1)],
        }
    }

    /// Create a grid covering the world rectangle with the given cell size.
    pub fn covering(world_min: Point2, world_max: Point2, cell: f64) -> GridMap {
        let cell = cell.max(1e-9);
        let width = (((world_max.x - world_min.x) / cell).ceil() as usize).max(1);
        let height = (((world_max.y - world_min.y) / cell).ceil() as usize).max(1);
        GridMap::new(width, height, cell, world_min)
    }

    /// Grid dimensions in cells `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Cell side length in world units.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    fn index(&self, cell: Cell) -> Option<usize> {
        let (cx, cy) = cell;
        if cx < 0 || cy < 0 || cx as usize >= self.width || cy as usize >= self.height {
            None
        } else {
            Some(cy as usize * self.width + cx as usize)
        }
    }

    /// Is the cell inside the grid?
    pub fn in_bounds(&self, cell: Cell) -> bool {
        self.index(cell).is_some()
    }

    /// The cell containing a world position (clamped to the grid).
    pub fn cell_of(&self, p: &Point2) -> Cell {
        let cx = ((p.x - self.origin.x) / self.cell).floor() as i32;
        let cy = ((p.y - self.origin.y) / self.cell).floor() as i32;
        (
            cx.clamp(0, self.width as i32 - 1),
            cy.clamp(0, self.height as i32 - 1),
        )
    }

    /// The world position at the centre of a cell.
    pub fn center_of(&self, cell: Cell) -> Point2 {
        Point2::new(
            self.origin.x + (cell.0 as f64 + 0.5) * self.cell,
            self.origin.y + (cell.1 as f64 + 0.5) * self.cell,
        )
    }

    /// Mark a cell blocked or free.
    pub fn set_blocked(&mut self, cell: Cell, blocked: bool) {
        if let Some(idx) = self.index(cell) {
            self.blocked[idx] = blocked;
        }
    }

    /// Is the cell blocked?  Out-of-bounds cells count as blocked.
    pub fn is_blocked(&self, cell: Cell) -> bool {
        match self.index(cell) {
            Some(idx) => self.blocked[idx],
            None => true,
        }
    }

    /// Block every cell whose centre lies within `radius` of an obstacle
    /// position (a convenient way to rasterise buildings or impassable units).
    pub fn block_circles(&mut self, obstacles: &[Point2], radius: f64) {
        let r2 = radius * radius;
        for cy in 0..self.height {
            for cx in 0..self.width {
                let centre = self.center_of((cx as i32, cy as i32));
                if obstacles.iter().any(|o| o.dist2(&centre) <= r2) {
                    self.blocked[cy * self.width + cx] = true;
                }
            }
        }
    }

    /// Number of blocked cells (diagnostics).
    pub fn blocked_count(&self) -> usize {
        self.blocked.iter().filter(|b| **b).count()
    }
}

/// A path through the grid plus search statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// The cells of the path, from start to goal inclusive.
    pub cells: Vec<Cell>,
    /// Path cost (straight steps cost 1, diagonal steps √2).
    pub cost: f64,
    /// Number of nodes expanded by the search.
    pub expanded: usize,
}

impl Path {
    /// Number of steps (edges) in the path.
    pub fn steps(&self) -> usize {
        self.cells.len().saturating_sub(1)
    }

    /// The path converted to world-space waypoints (cell centres).
    pub fn waypoints(&self, map: &GridMap) -> Vec<Point2> {
        self.cells.iter().map(|c| map.center_of(*c)).collect()
    }
}

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Octile distance — the admissible heuristic for 8-connected grids.
fn octile(a: Cell, b: Cell) -> f64 {
    let dx = (a.0 - b.0).abs() as f64;
    let dy = (a.1 - b.1).abs() as f64;
    dx.max(dy) + (SQRT2 - 1.0) * dx.min(dy)
}

#[derive(PartialEq)]
struct Frontier {
    f: f64,
    index: usize,
}

impl Eq for Frontier {}

impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert the comparison so the smallest f
        // (ties broken by cell index for determinism) is popped first.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.index.cmp(&self.index))
    }
}

impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Find a shortest 8-connected path from `start` to `goal`, avoiding blocked
/// cells.  Returns `None` when no path exists or either endpoint is blocked.
pub fn astar(map: &GridMap, start: Cell, goal: Cell) -> Option<Path> {
    if !map.in_bounds(start)
        || !map.in_bounds(goal)
        || map.is_blocked(start)
        || map.is_blocked(goal)
    {
        return None;
    }
    let (width, height) = map.dims();
    let size = width * height;
    let to_index = |c: Cell| c.1 as usize * width + c.0 as usize;
    let to_cell = |i: usize| ((i % width) as i32, (i / width) as i32);

    let start_idx = to_index(start);
    let goal_idx = to_index(goal);

    let mut g = vec![f64::INFINITY; size];
    let mut parent = vec![usize::MAX; size];
    let mut closed = vec![false; size];
    let mut heap = BinaryHeap::new();
    g[start_idx] = 0.0;
    heap.push(Frontier {
        f: octile(start, goal),
        index: start_idx,
    });
    let mut expanded = 0usize;

    const NEIGHBOURS: [(i32, i32, f64); 8] = [
        (1, 0, 1.0),
        (-1, 0, 1.0),
        (0, 1, 1.0),
        (0, -1, 1.0),
        (1, 1, SQRT2),
        (1, -1, SQRT2),
        (-1, 1, SQRT2),
        (-1, -1, SQRT2),
    ];

    while let Some(Frontier { index, .. }) = heap.pop() {
        if closed[index] {
            continue;
        }
        closed[index] = true;
        expanded += 1;
        if index == goal_idx {
            // Reconstruct.
            let mut cells = Vec::new();
            let mut cursor = index;
            while cursor != usize::MAX {
                cells.push(to_cell(cursor));
                cursor = parent[cursor];
            }
            cells.reverse();
            return Some(Path {
                cells,
                cost: g[goal_idx],
                expanded,
            });
        }
        let cell = to_cell(index);
        for (dx, dy, step) in NEIGHBOURS {
            let next = (cell.0 + dx, cell.1 + dy);
            if map.is_blocked(next) {
                continue;
            }
            // Forbid cutting corners: a diagonal move requires both adjacent
            // orthogonal cells to be free.
            if dx != 0
                && dy != 0
                && (map.is_blocked((cell.0 + dx, cell.1)) || map.is_blocked((cell.0, cell.1 + dy)))
            {
                continue;
            }
            let next_idx = to_index(next);
            let tentative = g[index] + step;
            if tentative + 1e-12 < g[next_idx] {
                g[next_idx] = tentative;
                parent[next_idx] = index;
                heap.push(Frontier {
                    f: tentative + octile(next, goal),
                    index: next_idx,
                });
            }
        }
    }
    None
}

/// The next world-space waypoint on the shortest path from `from` to `to`, or
/// `None` when no path exists.  When `from` and `to` fall in the same cell the
/// destination itself is returned.
pub fn next_waypoint(map: &GridMap, from: &Point2, to: &Point2) -> Option<Point2> {
    let start = map.cell_of(from);
    let goal = map.cell_of(to);
    if start == goal {
        return Some(*to);
    }
    let path = astar(map, start, goal)?;
    match path.cells.get(1) {
        Some(cell) => Some(map.center_of(*cell)),
        None => Some(*to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a map from an ASCII picture: `#` blocked, `.` free.  Row 0 of the
    /// picture is the *top* (highest y index is the last row).
    fn map_of(picture: &[&str]) -> GridMap {
        let height = picture.len();
        let width = picture[0].len();
        let mut map = GridMap::new(width, height, 1.0, Point2::new(0.0, 0.0));
        for (row, line) in picture.iter().enumerate() {
            for (col, ch) in line.chars().enumerate() {
                if ch == '#' {
                    map.set_blocked((col as i32, row as i32), true);
                }
            }
        }
        map
    }

    #[test]
    fn straight_line_on_an_empty_map() {
        let map = GridMap::new(10, 10, 1.0, Point2::new(0.0, 0.0));
        let path = astar(&map, (0, 0), (5, 0)).unwrap();
        assert_eq!(path.steps(), 5);
        assert!((path.cost - 5.0).abs() < 1e-9);
        assert_eq!(path.cells.first(), Some(&(0, 0)));
        assert_eq!(path.cells.last(), Some(&(5, 0)));
    }

    #[test]
    fn diagonal_path_uses_diagonal_steps() {
        let map = GridMap::new(10, 10, 1.0, Point2::new(0.0, 0.0));
        let path = astar(&map, (0, 0), (4, 4)).unwrap();
        assert_eq!(path.steps(), 4);
        assert!((path.cost - 4.0 * SQRT2).abs() < 1e-9);
    }

    #[test]
    fn detour_around_a_wall() {
        let map = map_of(&["..........", "..........", "..######..", ".........."]);
        // From below the wall to above it: the path must go around the ends.
        let path = astar(&map, (5, 3), (5, 1)).unwrap();
        assert!(path.cost > 2.0);
        for cell in &path.cells {
            assert!(
                !map.is_blocked(*cell),
                "path passes through a wall at {cell:?}"
            );
        }
        // Consecutive cells are 8-connected.
        for pair in path.cells.windows(2) {
            let dx = (pair[1].0 - pair[0].0).abs();
            let dy = (pair[1].1 - pair[0].1).abs();
            assert!(dx <= 1 && dy <= 1 && (dx + dy) > 0);
        }
    }

    #[test]
    fn no_corner_cutting_through_diagonal_gaps() {
        let map = map_of(&[".#", "#."]);
        // The only "path" from (0,0) to (1,1) would cut the corner between the
        // two blocked cells; that is not allowed.
        assert!(astar(&map, (0, 0), (1, 1)).is_none());
    }

    #[test]
    fn unreachable_goals_return_none() {
        let map = map_of(&[".....", ".###.", ".#.#.", ".###.", "....."]);
        assert!(astar(&map, (0, 0), (2, 2)).is_none());
        // Blocked endpoints are rejected outright.
        assert!(astar(&map, (1, 1), (0, 0)).is_none());
        assert!(astar(&map, (0, 0), (1, 1)).is_none());
        // Out of bounds.
        assert!(astar(&map, (0, 0), (99, 99)).is_none());
    }

    #[test]
    fn start_equals_goal() {
        let map = GridMap::new(4, 4, 1.0, Point2::new(0.0, 0.0));
        let path = astar(&map, (2, 2), (2, 2)).unwrap();
        assert_eq!(path.cells, vec![(2, 2)]);
        assert_eq!(path.steps(), 0);
        assert_eq!(path.cost, 0.0);
    }

    #[test]
    fn astar_is_optimal_against_dijkstra_cost() {
        // On a map with several routes the A* cost must equal the true
        // shortest-path cost (computed here by exhaustive relaxation).
        let map = map_of(&[
            "..........",
            ".########.",
            ".#......#.",
            ".#.####.#.",
            "...#..#...",
            ".###..###.",
            "..........",
        ]);
        let start = (0, 6);
        let goal = (9, 0);
        let fast = astar(&map, start, goal).unwrap();

        // Bellman-Ford style relaxation over all free cells.
        let (w, h) = map.dims();
        let mut dist = vec![f64::INFINITY; w * h];
        dist[start.1 as usize * w + start.0 as usize] = 0.0;
        for _ in 0..w * h {
            let mut changed = false;
            for cy in 0..h as i32 {
                for cx in 0..w as i32 {
                    let here = cy as usize * w + cx as usize;
                    if dist[here].is_infinite() || map.is_blocked((cx, cy)) {
                        continue;
                    }
                    for (dx, dy, step) in [
                        (1, 0, 1.0),
                        (-1, 0, 1.0),
                        (0, 1, 1.0),
                        (0, -1, 1.0),
                        (1, 1, SQRT2),
                        (1, -1, SQRT2),
                        (-1, 1, SQRT2),
                        (-1, -1, SQRT2),
                    ] {
                        let next = (cx + dx, cy + dy);
                        if map.is_blocked(next) {
                            continue;
                        }
                        if dx != 0
                            && dy != 0
                            && (map.is_blocked((cx + dx, cy)) || map.is_blocked((cx, cy + dy)))
                        {
                            continue;
                        }
                        let ni = next.1 as usize * w + next.0 as usize;
                        if dist[here] + step < dist[ni] {
                            dist[ni] = dist[here] + step;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let truth = dist[goal.1 as usize * w + goal.0 as usize];
        assert!(
            (fast.cost - truth).abs() < 1e-9,
            "A* cost {} vs true {}",
            fast.cost,
            truth
        );
        assert!(fast.expanded <= w * h);
    }

    #[test]
    fn world_space_helpers() {
        let mut map = GridMap::covering(Point2::new(0.0, 0.0), Point2::new(20.0, 10.0), 2.0);
        assert_eq!(map.dims(), (10, 5));
        assert_eq!(map.cell_size(), 2.0);
        assert_eq!(map.cell_of(&Point2::new(5.0, 5.0)), (2, 2));
        let c = map.center_of((2, 2));
        assert_eq!((c.x, c.y), (5.0, 5.0));
        // Obstacle rasterisation.
        map.block_circles(&[Point2::new(10.0, 5.0)], 2.5);
        assert!(map.blocked_count() > 0);
        assert!(map.is_blocked(map.cell_of(&Point2::new(10.0, 5.0))));

        // next_waypoint steps around the blocked region.
        let from = Point2::new(3.0, 5.0);
        let to = Point2::new(17.0, 5.0);
        let wp = next_waypoint(&map, &from, &to).unwrap();
        assert!(!map.is_blocked(map.cell_of(&wp)));
        assert_ne!((wp.x, wp.y), (from.x, from.y));
        // Same-cell shortcut returns the destination itself.
        let same = next_waypoint(&map, &Point2::new(1.0, 1.0), &Point2::new(1.5, 1.5)).unwrap();
        assert_eq!((same.x, same.y), (1.5, 1.5));
    }

    #[test]
    fn clamping_and_bounds() {
        let map = GridMap::new(4, 4, 1.0, Point2::new(0.0, 0.0));
        assert_eq!(map.cell_of(&Point2::new(-5.0, 100.0)), (0, 3));
        assert!(map.is_blocked((-1, 0)));
        assert!(map.is_blocked((0, 4)));
        assert!(!map.is_blocked((3, 3)));
        assert!(map.in_bounds((3, 3)));
        assert!(!map.in_bounds((4, 3)));
    }
}
