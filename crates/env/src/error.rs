//! Error types for the environment layer.

use std::fmt;

/// Errors raised while building schemas, mutating environment tables or
/// applying effects.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// An attribute name was referenced that does not exist in the schema.
    UnknownAttribute(String),
    /// An attribute was defined twice in the same schema.
    DuplicateAttribute(String),
    /// A schema was built without a key attribute.
    MissingKey,
    /// The key attribute must be declared `const` and hold integers.
    InvalidKey(String),
    /// A tuple's arity does not match the schema width.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the tuple carried.
        found: usize,
    },
    /// A value of an unexpected runtime type was encountered.
    TypeError(String),
    /// An effect was applied to a `const` attribute.
    ConstEffect(String),
    /// Two rows with the same key were inserted where a key constraint holds.
    DuplicateKey(i64),
    /// A referenced key does not exist in the environment table.
    UnknownKey(i64),
    /// Generic arithmetic failure (division by zero, invalid conversion, ...).
    Arithmetic(String),
    /// A serialized snapshot could not be decoded (truncated, corrupted, or
    /// written against a different schema).
    Snapshot(String),
    /// A serialized checkpoint could not be decoded or does not match the
    /// resuming simulation (truncated, corrupted, wrong version, different
    /// schema or scripts).
    Checkpoint(String),
    /// A page manager failed to store or retrieve an evicted column page
    /// (spill file I/O error, corrupted record, unknown token).
    Pager(String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            EnvError::DuplicateAttribute(name) => write!(f, "duplicate attribute `{name}`"),
            EnvError::MissingKey => write!(f, "schema has no key attribute"),
            EnvError::InvalidKey(msg) => write!(f, "invalid key attribute: {msg}"),
            EnvError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "tuple arity mismatch: expected {expected} values, found {found}"
                )
            }
            EnvError::TypeError(msg) => write!(f, "type error: {msg}"),
            EnvError::ConstEffect(name) => {
                write!(f, "attribute `{name}` is const and cannot receive effects")
            }
            EnvError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            EnvError::UnknownKey(k) => write!(f, "unknown key {k}"),
            EnvError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            EnvError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            EnvError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            EnvError::Pager(msg) => write!(f, "page manager error: {msg}"),
        }
    }
}

impl std::error::Error for EnvError {}

/// Convenience result alias used throughout the environment layer.
pub type Result<T> = std::result::Result<T, EnvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let cases: Vec<(EnvError, &str)> = vec![
            (EnvError::UnknownAttribute("hp".into()), "hp"),
            (EnvError::DuplicateAttribute("posx".into()), "posx"),
            (EnvError::MissingKey, "key"),
            (EnvError::InvalidKey("not const".into()), "not const"),
            (
                EnvError::ArityMismatch {
                    expected: 3,
                    found: 2,
                },
                "expected 3",
            ),
            (EnvError::TypeError("bool + int".into()), "bool + int"),
            (EnvError::ConstEffect("player".into()), "player"),
            (EnvError::DuplicateKey(7), "7"),
            (EnvError::UnknownKey(9), "9"),
            (EnvError::Arithmetic("div by zero".into()), "div by zero"),
            (EnvError::Snapshot("truncated".into()), "truncated"),
            (EnvError::Checkpoint("bad magic".into()), "bad magic"),
            (EnvError::Pager("checksum mismatch".into()), "checksum"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(EnvError::MissingKey, EnvError::MissingKey);
        assert_ne!(
            EnvError::UnknownAttribute("a".into()),
            EnvError::UnknownAttribute("b".into())
        );
    }
}
