//! The combination operator `⊕` on effect relations (paper §4.2).
//!
//! `⊕R` groups a multiset of effect rows by unit key and folds every effect
//! attribute with its combination function (`sum`, `max` or `min`).  The
//! operator is associative, commutative and idempotent on already-combined
//! relations — the algebraic identities of Eq. (3) that the optimizer relies
//! on.  The property-based tests at the bottom of this module check those laws
//! on randomly generated effect relations.

use std::sync::Arc;

use crate::effects::{EffectBuffer, EffectRow};
use crate::error::Result;
use crate::schema::Schema;

/// Combine a multiset of effect rows into a single buffer: the executable
/// form of `⊕R`.
pub fn combine_rows<I>(schema: Arc<Schema>, rows: I) -> Result<EffectBuffer>
where
    I: IntoIterator<Item = EffectRow>,
{
    let mut buf = EffectBuffer::new(schema);
    for row in rows {
        buf.apply_row(&row)?;
    }
    Ok(buf)
}

/// Combine two already-combined buffers: `⊕(E1 ⊎ E2) = ⊕(⊕E1 ⊎ ⊕E2)`.
pub fn combine_buffers(a: &EffectBuffer, b: &EffectBuffer) -> Result<EffectBuffer> {
    let mut out = a.clone();
    out.merge(b)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;
    use crate::value::Value;

    fn schema() -> Arc<Schema> {
        paper_schema().into_shared()
    }

    fn dmg(s: &Schema) -> usize {
        s.attr_id("damage").unwrap()
    }

    fn aura(s: &Schema) -> usize {
        s.attr_id("inaura").unwrap()
    }

    #[test]
    fn combining_groups_by_key() {
        let s = schema();
        let rows = vec![
            EffectRow::single(1, dmg(&s), Value::Int(3)),
            EffectRow::single(2, dmg(&s), Value::Int(1)),
            EffectRow::single(1, dmg(&s), Value::Int(4)),
            EffectRow::single(1, aura(&s), Value::Int(2)),
            EffectRow::single(1, aura(&s), Value::Int(5)),
        ];
        let buf = combine_rows(Arc::clone(&s), rows).unwrap();
        assert_eq!(buf.get(1, dmg(&s)), Some(&Value::Int(7)));
        assert_eq!(buf.get(2, dmg(&s)), Some(&Value::Int(1)));
        assert_eq!(buf.get(1, aura(&s)), Some(&Value::Int(5)));
    }

    #[test]
    fn empty_relation_combines_to_empty_buffer() {
        let s = schema();
        let buf = combine_rows(s, Vec::new()).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn combining_with_empty_is_identity() {
        let s = schema();
        let rows = vec![
            EffectRow::single(1, dmg(&s), Value::Int(3)),
            EffectRow::single(2, aura(&s), Value::Int(4)),
        ];
        let a = combine_rows(Arc::clone(&s), rows).unwrap();
        let empty = EffectBuffer::new(Arc::clone(&s));
        let combined = combine_buffers(&a, &empty).unwrap();
        assert_eq!(combined.canonical(), a.canonical());
    }

    #[test]
    fn idempotence_of_combination() {
        // ⊕(⊕E) = ⊕E  (Eq. (3) with E2 = ∅)
        let s = schema();
        let rows = vec![
            EffectRow::single(1, dmg(&s), Value::Int(3)),
            EffectRow::single(1, dmg(&s), Value::Int(9)),
            EffectRow::single(1, aura(&s), Value::Int(2)),
        ];
        let once = combine_rows(Arc::clone(&s), rows).unwrap();
        let twice_rows: Vec<EffectRow> = once
            .canonical()
            .into_iter()
            .map(|(k, a, v)| EffectRow::single(k, a, v))
            .collect();
        let twice = combine_rows(Arc::clone(&s), twice_rows).unwrap();
        assert_eq!(once.canonical(), twice.canonical());
    }

    mod properties {
        //! Randomized law checks (formerly proptest-based; rewritten as
        //! deterministic seeded sweeps because the build environment cannot
        //! fetch the proptest crate).
        use super::*;

        /// Deterministic pseudo-random stream (splitmix64).
        struct Rng(u64);

        impl Rng {
            fn next(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }

            fn below(&mut self, n: u64) -> u64 {
                self.next() % n.max(1)
            }
        }

        /// Generate a random effect row over the paper schema.
        fn random_row(rng: &mut Rng, effect_attrs: &[usize]) -> EffectRow {
            let key = rng.below(6) as i64;
            let attr = effect_attrs[rng.below(effect_attrs.len() as u64) as usize];
            let v = rng.below(40) as i64 - 20;
            EffectRow::single(key, attr, Value::Int(v))
        }

        fn random_rows(rng: &mut Rng, max: u64, effect_attrs: &[usize]) -> Vec<EffectRow> {
            (0..rng.below(max))
                .map(|_| random_row(rng, effect_attrs))
                .collect()
        }

        fn combine(rows: &[EffectRow]) -> Vec<(i64, usize, Value)> {
            combine_rows(schema(), rows.to_vec()).unwrap().canonical()
        }

        /// ⊕ is insensitive to the order of effect rows (commutativity +
        /// associativity of sum/min/max).
        #[test]
        fn order_insensitive() {
            let s = schema();
            let effect_attrs: Vec<usize> = s.effect_attrs().collect();
            for case in 0..64u64 {
                let mut rng = Rng(case.wrapping_mul(0x517C_C1B7_2722_0A95));
                let mut rows = random_rows(&mut rng, 40, &effect_attrs);
                let original = combine(&rows);
                // Fisher–Yates shuffle driven by the same stream.
                for i in (1..rows.len()).rev() {
                    let j = rng.below(i as u64 + 1) as usize;
                    rows.swap(i, j);
                }
                assert_eq!(original, combine(&rows), "case {case}");
            }
        }

        /// ⊕(E1 ⊎ E2) = ⊕(⊕E1 ⊎ ⊕E2): pre-combining partitions does not
        /// change the result (Eq. (3) applied twice).
        #[test]
        fn pre_combining_partitions_is_equivalent() {
            let s = schema();
            let effect_attrs: Vec<usize> = s.effect_attrs().collect();
            for case in 0..64u64 {
                let mut rng = Rng(case.wrapping_mul(0xA076_1D64_78BD_642F));
                let rows1 = random_rows(&mut rng, 25, &effect_attrs);
                let rows2 = random_rows(&mut rng, 25, &effect_attrs);
                let mut all = rows1.clone();
                all.extend(rows2.clone());
                let direct = combine(&all);

                let b1 = combine_rows(schema(), rows1).unwrap();
                let b2 = combine_rows(schema(), rows2).unwrap();
                let staged = combine_buffers(&b1, &b2).unwrap().canonical();
                assert_eq!(direct, staged, "case {case}");
            }
        }

        /// Combining a buffer with itself only changes `sum` attributes
        /// (doubling), never `min`/`max` ones — the nonstackable semantics.
        #[test]
        fn nonstackable_attributes_are_idempotent() {
            let s = schema();
            let effect_attrs: Vec<usize> = s.effect_attrs().collect();
            for case in 0..64u64 {
                let mut rng = Rng(case.wrapping_mul(0xE703_7ED1_A0B4_28DB));
                let rows = random_rows(&mut rng, 30, &effect_attrs);
                let once = combine_rows(Arc::clone(&s), rows).unwrap();
                let doubled = combine_buffers(&once, &once).unwrap();
                for (key, attr, v) in once.canonical() {
                    let kind = s.attr(attr).kind;
                    let dv = doubled.get(key, attr).cloned().unwrap();
                    match kind {
                        crate::schema::CombineKind::Max | crate::schema::CombineKind::Min => {
                            assert_eq!(dv, v, "case {case}");
                        }
                        crate::schema::CombineKind::Sum => {
                            assert_eq!(dv, v.add(&v).unwrap(), "case {case}");
                        }
                        crate::schema::CombineKind::Const => unreachable!(),
                    }
                }
            }
        }
    }
}
