//! Deterministic per-tick randomness (the `ρ` function of §4.3).
//!
//! SGL's `Random(i)` returns the same value for the same `i` (and the same
//! unit) within a single clock tick, but generally different values across
//! ticks.  We implement it as a pure hash of `(seed, tick, unit key, i)` using
//! SplitMix64, so that the naive and the indexed executor observe *exactly*
//! the same random draws and therefore produce identical game states — the
//! basis for the equivalence tests between the two execution strategies.

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Game-wide random source.  Cheap to copy; create one per game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameRng {
    seed: u64,
}

impl GameRng {
    /// Create a source from a seed. The same seed reproduces the whole game.
    pub fn new(seed: u64) -> GameRng {
        GameRng { seed }
    }

    /// The seed this source was created from.  Because every draw is a pure
    /// hash of `(seed, tick, unit key, i)`, the seed *is* the complete RNG
    /// stream state — persisting it (plus the tick counter) in a checkpoint
    /// reproduces the remaining stream exactly.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-tick random function handed to scripts at tick `tick`.
    pub fn for_tick(&self, tick: u64) -> TickRandom {
        TickRandom {
            state: splitmix64(self.seed ^ splitmix64(tick)),
        }
    }
}

/// The random function `r(u, i)` for a single tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickRandom {
    state: u64,
}

impl TickRandom {
    /// Raw 64-bit draw for `(unit key, i)`.
    #[inline]
    pub fn raw(&self, unit_key: i64, i: i64) -> u64 {
        splitmix64(
            self.state ^ splitmix64(unit_key as u64) ^ splitmix64((i as u64).rotate_left(17)),
        )
    }

    /// The SGL-visible value: a non-negative integer.
    #[inline]
    pub fn value(&self, unit_key: i64, i: i64) -> i64 {
        (self.raw(unit_key, i) >> 1) as i64
    }

    /// A float uniformly distributed in `[0, 1)`.
    #[inline]
    pub fn unit_float(&self, unit_key: i64, i: i64) -> f64 {
        (self.raw(unit_key, i) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A value in `[0, bound)` for positive `bound`.
    ///
    /// A non-positive `bound` yields `0`: scripts can compute bounds at run
    /// time (`Random(i) mod n` with `n` read from the environment), so the
    /// degenerate case must be total rather than a release-build
    /// divide-by-zero panic inside `rem_euclid` — the same discipline as
    /// `Value::rem`, which rejects zero divisors instead of dividing.
    #[inline]
    pub fn below(&self, unit_key: i64, i: i64, bound: i64) -> i64 {
        if bound <= 0 {
            return 0;
        }
        self.value(unit_key, i).rem_euclid(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_value_within_a_tick() {
        let rng = GameRng::new(1234);
        let t = rng.for_tick(7);
        assert_eq!(t.value(5, 1), t.value(5, 1));
        assert_eq!(t.raw(5, 1), t.raw(5, 1));
        assert_eq!(t.unit_float(5, 1), t.unit_float(5, 1));
    }

    #[test]
    fn different_ticks_give_different_values() {
        let rng = GameRng::new(1234);
        let a = rng.for_tick(7).value(5, 1);
        let b = rng.for_tick(8).value(5, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn different_units_and_indices_decorrelate() {
        let rng = GameRng::new(99);
        let t = rng.for_tick(0);
        assert_ne!(t.value(1, 0), t.value(2, 0));
        assert_ne!(t.value(1, 0), t.value(1, 1));
    }

    #[test]
    fn values_are_non_negative() {
        let rng = GameRng::new(42);
        let t = rng.for_tick(3);
        for key in 0..50 {
            for i in 0..10 {
                assert!(t.value(key, i) >= 0);
                let f = t.unit_float(key, i);
                assert!((0.0..1.0).contains(&f));
            }
        }
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let rng = GameRng::new(7);
        let t = rng.for_tick(11);
        let mut counts = [0usize; 4];
        for key in 0..4000 {
            let v = t.below(key, 1, 4);
            assert!((0..4).contains(&v));
            counts[v as usize] += 1;
        }
        for c in counts {
            // Each bucket should receive roughly a quarter of the draws.
            assert!(c > 800 && c < 1200, "bucket count {c} too skewed");
        }
    }

    #[test]
    fn below_is_total_for_non_positive_bounds() {
        let t = GameRng::new(3).for_tick(2);
        // Regression: these were a raw divide-by-zero (or rem_euclid panic)
        // in release builds, where the old debug_assert compiled away.
        assert_eq!(t.below(1, 1, 0), 0);
        assert_eq!(t.below(1, 1, -5), 0);
        assert_eq!(t.below(1, 1, i64::MIN), 0);
        assert_eq!(t.below(1, 1, 1), 0);
    }

    #[test]
    fn same_seed_reproduces_everything() {
        let a = GameRng::new(5).for_tick(9).value(3, 2);
        let b = GameRng::new(5).for_tick(9).value(3, 2);
        assert_eq!(a, b);
        let c = GameRng::new(6).for_tick(9).value(3, 2);
        assert_ne!(a, c);
    }
}
