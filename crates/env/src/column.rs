//! Paged columns for the struct-of-arrays environment table.
//!
//! Each attribute of the schema owns one [`Column`]: a sequence of
//! [`PageData`] pages of [`PAGE_ROWS`] values.  Pages start out *typed*
//! (plain `Vec<f64>` / `Vec<i64>` / `Vec<bool>`) and are promoted to
//! `Mixed` the moment a variant-mismatched value is written, so the exact
//! [`Value`] tag of every cell survives the columnar layout — state digests
//! hash those tags, and they must not change just because storage went
//! column-major.
//!
//! A page is either `Resident` (owned here) or `Spilled` (owned by the
//! table's [`PageManager`], identified by a token).  Reads through `&self`
//! never change residency: a read that hits a spilled page loads it
//! transiently.  Mutating operations fault pages in and leave them
//! resident; the table evicts again at tick end via its page budget.

use crate::error::{EnvError, Result};
use crate::pager::{PageData, PageManager, PAGE_ROWS};
use crate::value::Value;

/// Mutation counters shared between the table and its columns.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MemCounters {
    /// Logical clock for LRU eviction: bumped on every fault-in and write.
    pub touch_clock: u64,
    /// Pages allocated (created or faulted back in) since table creation.
    pub page_allocs: u64,
}

impl MemCounters {
    fn tick(&mut self) -> u64 {
        self.touch_clock += 1;
        self.touch_clock
    }
}

/// One page slot of a column.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// Page owned in memory.
    Resident {
        /// The page values.
        data: PageData,
        /// LRU stamp: last fault-in or write.
        touch: u64,
    },
    /// Page evicted through the page manager.
    Spilled {
        /// Token to load/free the page.
        token: u64,
    },
}

/// A single attribute's values for every row, split into pages.
#[derive(Debug, Clone, Default)]
pub(crate) struct Column {
    len: usize,
    pub(crate) slots: Vec<Slot>,
}

fn fresh_page_for(value: &Value) -> PageData {
    match value {
        Value::Float(_) => PageData::F64(Vec::with_capacity(PAGE_ROWS)),
        Value::Int(_) => PageData::I64(Vec::with_capacity(PAGE_ROWS)),
        Value::Bool(_) => PageData::Bool(Vec::with_capacity(PAGE_ROWS)),
        Value::Str(_) => PageData::Mixed(Vec::with_capacity(PAGE_ROWS)),
    }
}

fn promote_to_mixed(data: &mut PageData) {
    let mixed = match data {
        PageData::F64(v) => v.drain(..).map(Value::Float).collect(),
        PageData::I64(v) => v.drain(..).map(Value::Int).collect(),
        PageData::Bool(v) => v.drain(..).map(Value::Bool).collect(),
        PageData::Mixed(_) => return,
    };
    *data = PageData::Mixed(mixed);
}

fn page_push(data: &mut PageData, value: Value) {
    match (&mut *data, value) {
        (PageData::F64(v), Value::Float(x)) => v.push(x),
        (PageData::I64(v), Value::Int(x)) => v.push(x),
        (PageData::Bool(v), Value::Bool(x)) => v.push(x),
        (PageData::Mixed(v), x) => v.push(x),
        (_, x) => {
            promote_to_mixed(data);
            page_push(data, x);
        }
    }
}

fn page_set(data: &mut PageData, off: usize, value: Value) {
    match (&mut *data, value) {
        (PageData::F64(v), Value::Float(x)) => v[off] = x,
        (PageData::I64(v), Value::Int(x)) => v[off] = x,
        (PageData::Bool(v), Value::Bool(x)) => v[off] = x,
        (PageData::Mixed(v), x) => v[off] = x,
        (_, x) => {
            promote_to_mixed(data);
            page_set(data, off, x);
        }
    }
}

/// Build a page from a slice of values: typed when every value shares one
/// variant, `Mixed` otherwise.  Typedness is a pure function of content, so
/// rebuilt columns (compaction, bulk writes, clones) converge to the same
/// representation whatever the mutation history.
pub(crate) fn page_from_values(values: &[Value]) -> PageData {
    debug_assert!(!values.is_empty() && values.len() <= PAGE_ROWS);
    let mut data = fresh_page_for(&values[0]);
    for v in values {
        page_push(&mut data, v.clone());
    }
    data
}

impl Column {
    /// Empty column.
    pub fn new() -> Column {
        Column::default()
    }

    /// Number of values (rows) in the column.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    fn locate(row: usize) -> (usize, usize) {
        (row / PAGE_ROWS, row % PAGE_ROWS)
    }

    /// Fault the given page in (if spilled) and return it mutably,
    /// stamping the LRU clock.
    fn fault_in<'a>(
        &'a mut self,
        page: usize,
        pager: &dyn PageManager,
        counters: &mut MemCounters,
    ) -> Result<&'a mut PageData> {
        let slot = &mut self.slots[page];
        if let Slot::Spilled { token } = *slot {
            let data = pager.load(token)?;
            pager.free(token);
            counters.page_allocs += 1;
            *slot = Slot::Resident {
                data,
                touch: counters.tick(),
            };
        }
        match slot {
            Slot::Resident { data, touch } => {
                *touch = counters.tick();
                Ok(data)
            }
            Slot::Spilled { .. } => unreachable!("slot was just faulted in"),
        }
    }

    /// Append a value.
    pub fn push(
        &mut self,
        value: Value,
        pager: &dyn PageManager,
        counters: &mut MemCounters,
    ) -> Result<()> {
        if self.len.is_multiple_of(PAGE_ROWS) {
            let mut data = fresh_page_for(&value);
            page_push(&mut data, value);
            counters.page_allocs += 1;
            self.slots.push(Slot::Resident {
                data,
                touch: counters.tick(),
            });
        } else {
            let page = self.slots.len() - 1;
            let data = self.fault_in(page, pager, counters)?;
            page_push(data, value);
        }
        self.len += 1;
        Ok(())
    }

    /// Read the value at `row`.  A spilled page is loaded transiently —
    /// residency does not change through `&self`.
    pub fn value(&self, row: usize, pager: &dyn PageManager) -> Result<Value> {
        let (page, off) = Self::locate(row);
        match &self.slots[page] {
            Slot::Resident { data, .. } => Ok(data.value(off)),
            Slot::Spilled { token } => Ok(pager.load(*token)?.value(off)),
        }
    }

    /// Overwrite the value at `row`, faulting its page in.
    pub fn set(
        &mut self,
        row: usize,
        value: Value,
        pager: &dyn PageManager,
        counters: &mut MemCounters,
    ) -> Result<()> {
        let (page, off) = Self::locate(row);
        let data = self.fault_in(page, pager, counters)?;
        page_set(data, off, value);
        Ok(())
    }

    /// Replace every value with `value` (the effect-reset fast path:
    /// spilled pages are freed without being read, and the column collapses
    /// back to fully typed pages).
    pub fn fill(&mut self, value: &Value, pager: &dyn PageManager, counters: &mut MemCounters) {
        self.free_spilled(pager);
        let mut remaining = self.len;
        for slot in &mut self.slots {
            let take = remaining.min(PAGE_ROWS);
            remaining -= take;
            let mut data = fresh_page_for(value);
            for _ in 0..take {
                page_push(&mut data, value.clone());
            }
            counters.page_allocs += 1;
            *slot = Slot::Resident {
                data,
                touch: counters.tick(),
            };
        }
    }

    /// Replace the whole column with `values` (bulk write-back path).
    pub fn set_values(
        &mut self,
        values: Vec<Value>,
        pager: &dyn PageManager,
        counters: &mut MemCounters,
    ) {
        self.free_spilled(pager);
        self.len = values.len();
        self.slots = values
            .chunks(PAGE_ROWS)
            .map(|chunk| {
                counters.page_allocs += 1;
                Slot::Resident {
                    data: page_from_values(chunk),
                    touch: counters.tick(),
                }
            })
            .collect();
    }

    /// Fault every page in.
    pub fn ensure_resident(
        &mut self,
        pager: &dyn PageManager,
        counters: &mut MemCounters,
    ) -> Result<()> {
        for page in 0..self.slots.len() {
            self.fault_in(page, pager, counters)?;
        }
        Ok(())
    }

    /// Spill the given page out if resident.  Returns true when evicted.
    pub fn evict(&mut self, page: usize, pager: &dyn PageManager) -> Result<bool> {
        let slot = &mut self.slots[page];
        if let Slot::Resident { data, .. } = slot {
            let token = pager.spill(data)?;
            *slot = Slot::Spilled { token };
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Visit every page in row order, loading spilled pages transiently.
    pub fn for_each_page<F: FnMut(&PageData)>(
        &self,
        pager: &dyn PageManager,
        mut f: F,
    ) -> Result<()> {
        for slot in &self.slots {
            match slot {
                Slot::Resident { data, .. } => f(data),
                Slot::Spilled { token } => f(&pager.load(*token)?),
            }
        }
        Ok(())
    }

    /// All values of the column, in row order.
    pub fn values(&self, pager: &dyn PageManager) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each_page(pager, |data| {
            for off in 0..data.len() {
                out.push(data.value(off));
            }
        })?;
        Ok(out)
    }

    /// The whole column coerced to `f64`, page-at-a-time.
    pub fn as_f64_vec(&self, pager: &dyn PageManager) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(self.len);
        let mut bad = false;
        self.for_each_page(pager, |data| match data {
            PageData::F64(v) => out.extend_from_slice(v),
            PageData::I64(v) => out.extend(v.iter().map(|&x| x as f64)),
            PageData::Bool(_) => bad = true,
            PageData::Mixed(v) => {
                for val in v {
                    match val.as_f64() {
                        Ok(x) => out.push(x),
                        Err(_) => bad = true,
                    }
                }
            }
        })?;
        if bad {
            return Err(EnvError::TypeError("column is not numeric".into()));
        }
        Ok(out)
    }

    /// The whole column coerced to `i64`, page-at-a-time.
    pub fn as_i64_vec(&self, pager: &dyn PageManager) -> Result<Vec<i64>> {
        let mut out = Vec::with_capacity(self.len);
        let mut bad = false;
        self.for_each_page(pager, |data| match data {
            PageData::I64(v) => out.extend_from_slice(v),
            PageData::F64(v) => out.extend(v.iter().map(|&x| x as i64)),
            PageData::Bool(_) => bad = true,
            PageData::Mixed(v) => {
                for val in v {
                    match val.as_i64() {
                        Ok(x) => out.push(x),
                        Err(_) => bad = true,
                    }
                }
            }
        })?;
        if bad {
            return Err(EnvError::TypeError("column is not numeric".into()));
        }
        Ok(out)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Resident { .. }))
            .count()
    }

    /// Number of spilled pages.
    pub fn spilled_pages(&self) -> usize {
        self.slots.len() - self.resident_pages()
    }

    /// Heap bytes held by resident pages.
    pub fn resident_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| match s {
                Slot::Resident { data, .. } => data.heap_bytes(),
                Slot::Spilled { .. } => 0,
            })
            .sum()
    }

    /// Free every spilled page held by this column (drop / rebuild paths).
    pub fn free_spilled(&self, pager: &dyn PageManager) {
        for slot in &self.slots {
            if let Slot::Spilled { token } = slot {
                pager.free(*token);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::RamPageManager;

    fn push_all(col: &mut Column, values: &[Value], pager: &dyn PageManager) {
        let mut c = MemCounters::default();
        for v in values {
            col.push(v.clone(), pager, &mut c).unwrap();
        }
    }

    #[test]
    fn typed_pages_promote_on_mismatched_write() {
        let pager = RamPageManager::new();
        let mut c = MemCounters::default();
        let mut col = Column::new();
        push_all(&mut col, &[Value::Int(1), Value::Int(2)], &pager);
        assert!(matches!(
            &col.slots[0],
            Slot::Resident {
                data: PageData::I64(_),
                ..
            }
        ));
        col.set(1, Value::Float(2.5), &pager, &mut c).unwrap();
        assert!(matches!(
            &col.slots[0],
            Slot::Resident {
                data: PageData::Mixed(_),
                ..
            }
        ));
        assert_eq!(col.value(0, &pager).unwrap(), Value::Int(1));
        assert_eq!(col.value(1, &pager).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn pages_split_at_page_rows() {
        let pager = RamPageManager::new();
        let values: Vec<Value> = (0..PAGE_ROWS as i64 + 3).map(Value::Int).collect();
        let mut col = Column::new();
        push_all(&mut col, &values, &pager);
        assert_eq!(col.slots.len(), 2);
        assert_eq!(col.len(), PAGE_ROWS + 3);
        assert_eq!(
            col.value(PAGE_ROWS + 2, &pager).unwrap(),
            Value::Int(PAGE_ROWS as i64 + 2)
        );
        assert_eq!(col.values(&pager).unwrap(), values);
    }

    #[test]
    fn spilled_pages_read_transiently_and_fault_in_on_write() {
        let pager = RamPageManager::with_budget(1);
        let mut c = MemCounters::default();
        let mut col = Column::new();
        let values: Vec<Value> = (0..PAGE_ROWS as i64 * 2).map(Value::Int).collect();
        push_all(&mut col, &values, &pager);
        assert!(col.evict(0, &pager).unwrap());
        assert_eq!(col.resident_pages(), 1);
        assert_eq!(col.spilled_pages(), 1);
        // Transient read leaves the page spilled.
        assert_eq!(col.value(3, &pager).unwrap(), Value::Int(3));
        assert_eq!(col.spilled_pages(), 1);
        // Write faults it back in.
        col.set(3, Value::Int(-3), &pager, &mut c).unwrap();
        assert_eq!(col.spilled_pages(), 0);
        assert_eq!(col.value(3, &pager).unwrap(), Value::Int(-3));
        assert_eq!(pager.stats().spilled_pages, 0, "token freed on fault-in");
    }

    #[test]
    fn fill_restores_typed_pages_and_frees_spill() {
        let pager = RamPageManager::with_budget(1);
        let mut c = MemCounters::default();
        let mut col = Column::new();
        push_all(
            &mut col,
            &(0..PAGE_ROWS as i64 + 1)
                .map(Value::Int)
                .collect::<Vec<_>>(),
            &pager,
        );
        col.set(0, Value::Float(9.0), &pager, &mut c).unwrap(); // promote page 0
        assert!(col.evict(0, &pager).unwrap());
        col.fill(&Value::Int(0), &pager, &mut c);
        assert_eq!(col.spilled_pages(), 0);
        assert_eq!(pager.stats().spilled_pages, 0);
        for slot in &col.slots {
            assert!(matches!(
                slot,
                Slot::Resident {
                    data: PageData::I64(_),
                    ..
                }
            ));
        }
        assert_eq!(col.value(0, &pager).unwrap(), Value::Int(0));
        assert_eq!(col.len(), PAGE_ROWS + 1);
    }

    #[test]
    fn set_values_picks_typedness_from_content() {
        let pager = RamPageManager::new();
        let mut c = MemCounters::default();
        let mut col = Column::new();
        col.set_values(vec![Value::Int(1), Value::Float(2.0)], &pager, &mut c);
        assert!(matches!(
            &col.slots[0],
            Slot::Resident {
                data: PageData::Mixed(_),
                ..
            }
        ));
        col.set_values(vec![Value::Float(1.0), Value::Float(2.0)], &pager, &mut c);
        assert!(matches!(
            &col.slots[0],
            Slot::Resident {
                data: PageData::F64(_),
                ..
            }
        ));
        assert_eq!(col.as_f64_vec(&pager).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn typed_column_reads() {
        let pager = RamPageManager::new();
        let mut col = Column::new();
        push_all(
            &mut col,
            &[Value::Int(1), Value::Int(2), Value::Int(3)],
            &pager,
        );
        assert_eq!(col.as_i64_vec(&pager).unwrap(), vec![1, 2, 3]);
        assert_eq!(col.as_f64_vec(&pager).unwrap(), vec![1.0, 2.0, 3.0]);
        let mut bools = Column::new();
        push_all(&mut bools, &[Value::Bool(true)], &pager);
        assert!(bools.as_f64_vec(&pager).is_err());
        assert!(bools.as_i64_vec(&pager).is_err());
    }
}
