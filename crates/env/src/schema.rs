//! Schemas for the environment relation `E`.
//!
//! Following Section 4.2 of the paper, every attribute of the environment is
//! tagged with a *combination kind*: `const` attributes describe unit state
//! and can never be the direct subject of an effect, while `sum`, `max` and
//! `min` attributes are *effect* (auxiliary) attributes whose per-tick values
//! from different scripts are folded together by the combination operator `⊕`.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::error::{EnvError, Result};
use crate::value::Value;

/// Index of an attribute within a schema. Resolved once at compile time so
/// that per-tick attribute access is a plain vector index.
pub type AttrId = usize;

/// How per-tick effects on an attribute are combined (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineKind {
    /// Unit state: never modified directly by a script.
    Const,
    /// Stackable effects: all effects of a tick accumulate (e.g. damage).
    Sum,
    /// Nonstackable effects keeping the largest value (e.g. healing auras).
    Max,
    /// Nonstackable effects keeping the smallest value (e.g. slow debuffs).
    Min,
}

impl CombineKind {
    /// True for the auxiliary (effect) kinds.
    pub fn is_effect(self) -> bool {
        !matches!(self, CombineKind::Const)
    }
}

/// Definition of a single attribute.
#[derive(Debug, Clone)]
pub struct AttrDef {
    /// Attribute name as referenced from SGL scripts (`u.name`).
    pub name: String,
    /// Combination kind.
    pub kind: CombineKind,
    /// Default value: effect attributes are reset to this at the start of each
    /// tick; const attributes use it when a unit is spawned without a value.
    pub default: Value,
}

/// Schema of the environment relation.
#[derive(Debug, Clone)]
pub struct Schema {
    attrs: Vec<AttrDef>,
    by_name: FxHashMap<String, AttrId>,
    key: AttrId,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            attrs: Vec::new(),
            key: None,
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes (never the case for valid schemas).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The key attribute (always `const`, integer valued).
    pub fn key_attr(&self) -> AttrId {
        self.key
    }

    /// Resolve an attribute name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Resolve an attribute name, erroring when unknown.
    pub fn require_attr(&self, name: &str) -> Result<AttrId> {
        self.attr_id(name)
            .ok_or_else(|| EnvError::UnknownAttribute(name.to_string()))
    }

    /// Definition of an attribute.
    pub fn attr(&self, id: AttrId) -> &AttrDef {
        &self.attrs[id]
    }

    /// All attribute definitions in declaration order.
    pub fn attrs(&self) -> &[AttrDef] {
        &self.attrs
    }

    /// Ids of all `const` attributes.
    pub fn const_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == CombineKind::Const)
            .map(|(i, _)| i)
    }

    /// Ids of all effect (`sum`/`max`/`min`) attributes.
    pub fn effect_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind.is_effect())
            .map(|(i, _)| i)
    }

    /// Default values for a fresh tuple, in attribute order.
    pub fn default_values(&self) -> Vec<Value> {
        self.attrs.iter().map(|a| a.default.clone()).collect()
    }

    /// Share the schema behind an `Arc`.
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

/// Builder for [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    attrs: Vec<AttrDef>,
    key: Option<AttrId>,
}

impl SchemaBuilder {
    fn push(&mut self, name: &str, kind: CombineKind, default: Value) -> &mut Self {
        self.attrs.push(AttrDef {
            name: name.to_string(),
            kind,
            default,
        });
        self
    }

    /// Declare the key attribute (const, integer).  Must be called exactly once.
    pub fn key(&mut self, name: &str) -> &mut Self {
        self.key = Some(self.attrs.len());
        self.push(name, CombineKind::Const, Value::Int(0))
    }

    /// Declare a `const` (state) attribute.
    pub fn const_attr(&mut self, name: &str, default: impl Into<Value>) -> &mut Self {
        self.push(name, CombineKind::Const, default.into())
    }

    /// Declare a stackable (`sum`) effect attribute.
    pub fn sum_attr(&mut self, name: &str, default: impl Into<Value>) -> &mut Self {
        self.push(name, CombineKind::Sum, default.into())
    }

    /// Declare a nonstackable (`max`) effect attribute.
    pub fn max_attr(&mut self, name: &str, default: impl Into<Value>) -> &mut Self {
        self.push(name, CombineKind::Max, default.into())
    }

    /// Declare a nonstackable (`min`) effect attribute.
    pub fn min_attr(&mut self, name: &str, default: impl Into<Value>) -> &mut Self {
        self.push(name, CombineKind::Min, default.into())
    }

    /// Finish, validating name uniqueness and key constraints.
    pub fn build(&self) -> Result<Schema> {
        let key = self.key.ok_or(EnvError::MissingKey)?;
        let mut by_name = FxHashMap::default();
        for (i, attr) in self.attrs.iter().enumerate() {
            if by_name.insert(attr.name.clone(), i).is_some() {
                return Err(EnvError::DuplicateAttribute(attr.name.clone()));
            }
        }
        let key_def = &self.attrs[key];
        if key_def.kind != CombineKind::Const {
            return Err(EnvError::InvalidKey(format!(
                "`{}` must be const",
                key_def.name
            )));
        }
        if !matches!(key_def.default, Value::Int(_)) {
            return Err(EnvError::InvalidKey(format!(
                "`{}` must be integer valued",
                key_def.name
            )));
        }
        Ok(Schema {
            attrs: self.attrs.clone(),
            by_name,
            key,
        })
    }
}

/// Build the battle-simulation schema of Eq. (1) in the paper.  Handy for
/// examples and tests across the workspace.
///
/// ```
/// let schema = sgl_env::schema::paper_schema();
/// assert!(schema.attr_id("damage").is_some());
/// ```
pub fn paper_schema() -> Schema {
    let mut b = Schema::builder();
    b.key("key")
        .const_attr("player", 0i64)
        .const_attr("posx", 0.0f64)
        .const_attr("posy", 0.0f64)
        .const_attr("health", 0i64)
        .const_attr("cooldown", 0i64)
        .sum_attr("weaponused", 0i64)
        .sum_attr("movevect_x", 0.0f64)
        .sum_attr("movevect_y", 0.0f64)
        .sum_attr("damage", 0i64)
        .max_attr("inaura", 0i64);
    b.build().expect("paper schema is valid") // PANIC-AUDIT: static schema, pinned by unit test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_paper_schema() {
        let s = paper_schema();
        assert_eq!(s.len(), 11);
        assert_eq!(s.key_attr(), 0);
        assert_eq!(s.attr(s.attr_id("inaura").unwrap()).kind, CombineKind::Max);
        assert_eq!(s.attr(s.attr_id("damage").unwrap()).kind, CombineKind::Sum);
        assert_eq!(s.const_attrs().count(), 6);
        assert_eq!(s.effect_attrs().count(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn missing_key_is_rejected() {
        let mut b = Schema::builder();
        b.const_attr("a", 1i64);
        assert_eq!(b.build().unwrap_err(), EnvError::MissingKey);
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let mut b = Schema::builder();
        b.key("key").const_attr("a", 1i64).sum_attr("a", 0i64);
        assert!(matches!(
            b.build().unwrap_err(),
            EnvError::DuplicateAttribute(_)
        ));
    }

    #[test]
    fn non_integer_key_is_rejected() {
        let mut b = Schema::builder();
        b.attrs.push(AttrDef {
            name: "key".into(),
            kind: CombineKind::Const,
            default: Value::Float(0.0),
        });
        b.key = Some(0);
        assert!(matches!(b.build().unwrap_err(), EnvError::InvalidKey(_)));
    }

    #[test]
    fn attribute_lookup() {
        let s = paper_schema();
        assert_eq!(s.attr_id("nonexistent"), None);
        assert!(s.require_attr("nonexistent").is_err());
        let id = s.require_attr("posx").unwrap();
        assert_eq!(s.attr(id).name, "posx");
    }

    #[test]
    fn default_values_match_declaration_order() {
        let s = paper_schema();
        let defaults = s.default_values();
        assert_eq!(defaults.len(), s.len());
        assert_eq!(defaults[0], Value::Int(0));
        assert_eq!(defaults[s.attr_id("posx").unwrap()], Value::Float(0.0));
    }

    #[test]
    fn combine_kind_classification() {
        assert!(!CombineKind::Const.is_effect());
        assert!(CombineKind::Sum.is_effect());
        assert!(CombineKind::Max.is_effect());
        assert!(CombineKind::Min.is_effect());
    }
}
