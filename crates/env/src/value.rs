//! Runtime values stored in environment tuples.
//!
//! SGL is dynamically typed at the value level: attributes hold integers,
//! floating point numbers, booleans or (rarely) interned strings.  Arithmetic
//! follows the usual numeric promotion rules (`Int` op `Float` → `Float`).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{EnvError, Result};

/// A single runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer. Keys, players, hit points, cooldowns.
    Int(i64),
    /// 64-bit float. Positions, movement vectors, aggregate results.
    Float(f64),
    /// Boolean. Conditions materialised into attributes.
    Bool(bool),
    /// Interned string. Categorical data such as a unit-type name.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if the value is numeric (`Int` or `Float`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Interpret the value as a float, coercing integers and booleans.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => Err(EnvError::TypeError(format!(
                "cannot read `{s}` as a number"
            ))),
        }
    }

    /// Interpret the value as an integer, truncating floats.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            Value::Bool(b) => Ok(i64::from(*b)),
            Value::Str(s) => Err(EnvError::TypeError(format!(
                "cannot read `{s}` as an integer"
            ))),
        }
    }

    /// Interpret the value as a boolean. Numbers are truthy when non-zero.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Float(f) => Ok(*f != 0.0),
            Value::Str(s) => Err(EnvError::TypeError(format!(
                "cannot read `{s}` as a boolean"
            ))),
        }
    }

    /// Borrow the string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn numeric_pair(&self, other: &Value, op: &str) -> Result<(f64, f64)> {
        if !self.is_numeric() && !matches!(self, Value::Bool(_)) {
            return Err(EnvError::TypeError(format!(
                "left operand of `{op}` is not numeric"
            )));
        }
        if !other.is_numeric() && !matches!(other, Value::Bool(_)) {
            return Err(EnvError::TypeError(format!(
                "right operand of `{op}` is not numeric"
            )));
        }
        Ok((self.as_f64()?, other.as_f64()?))
    }

    fn both_int(&self, other: &Value) -> Option<(i64, i64)> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some((*a, *b)),
            _ => None,
        }
    }

    /// `self + other` with numeric promotion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        if let Some((a, b)) = self.both_int(other) {
            return Ok(Value::Int(a.wrapping_add(b)));
        }
        let (a, b) = self.numeric_pair(other, "+")?;
        Ok(Value::Float(a + b))
    }

    /// `self - other` with numeric promotion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        if let Some((a, b)) = self.both_int(other) {
            return Ok(Value::Int(a.wrapping_sub(b)));
        }
        let (a, b) = self.numeric_pair(other, "-")?;
        Ok(Value::Float(a - b))
    }

    /// `self * other` with numeric promotion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        if let Some((a, b)) = self.both_int(other) {
            return Ok(Value::Int(a.wrapping_mul(b)));
        }
        let (a, b) = self.numeric_pair(other, "*")?;
        Ok(Value::Float(a * b))
    }

    /// `self / other`. Integer division stays integral; division by zero errors.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if let Some((a, b)) = self.both_int(other) {
            if b == 0 {
                return Err(EnvError::Arithmetic("integer division by zero".into()));
            }
            return Ok(Value::Int(a / b));
        }
        let (a, b) = self.numeric_pair(other, "/")?;
        if b == 0.0 {
            return Err(EnvError::Arithmetic("division by zero".into()));
        }
        Ok(Value::Float(a / b))
    }

    /// `self mod other`, defined on integers (floats are truncated first).
    pub fn rem(&self, other: &Value) -> Result<Value> {
        let a = self.as_i64()?;
        let b = other.as_i64()?;
        if b == 0 {
            return Err(EnvError::Arithmetic("modulo by zero".into()));
        }
        Ok(Value::Int(a.rem_euclid(b)))
    }

    /// Numeric negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(EnvError::TypeError(format!("cannot negate {other}"))),
        }
    }

    /// Pointwise minimum of two values (numeric comparison).
    pub fn min_value(&self, other: &Value) -> Result<Value> {
        Ok(if self.compare(other)? == Ordering::Greater {
            other.clone()
        } else {
            self.clone()
        })
    }

    /// Pointwise maximum of two values (numeric comparison).
    pub fn max_value(&self, other: &Value) -> Result<Value> {
        Ok(if self.compare(other)? == Ordering::Less {
            other.clone()
        } else {
            self.clone()
        })
    }

    /// Total comparison between values.  Numbers compare numerically, strings
    /// lexicographically; mixing strings and numbers is a type error.
    pub fn compare(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Str(_), _) | (_, Value::Str(_)) => Err(EnvError::TypeError(
                "cannot compare a string with a number".into(),
            )),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                Ok(a.partial_cmp(&b).unwrap_or(Ordering::Equal))
            }
        }
    }

    /// Equality used by SGL conditions (numeric equality across Int/Float).
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Str(_), _) | (_, Value::Str(_)) => false,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Absolute value of a numeric value.
    pub fn abs(&self) -> Result<Value> {
        match self {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            other => Err(EnvError::TypeError(format!("cannot take abs of {other}"))),
        }
    }

    /// Square root, always a float.
    pub fn sqrt(&self) -> Result<Value> {
        let v = self.as_f64()?;
        if v < 0.0 {
            return Err(EnvError::Arithmetic(format!("sqrt of negative value {v}")));
        }
        Ok(Value::Float(v.sqrt()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.loose_eq(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_stays_integral() {
        let a = Value::Int(7);
        let b = Value::Int(3);
        assert_eq!(a.add(&b).unwrap(), Value::Int(10));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(4));
        assert_eq!(a.mul(&b).unwrap(), Value::Int(21));
        assert_eq!(a.div(&b).unwrap(), Value::Int(2));
        assert_eq!(a.rem(&b).unwrap(), Value::Int(1));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let a = Value::Int(7);
        let b = Value::Float(2.0);
        assert_eq!(a.add(&b).unwrap(), Value::Float(9.0));
        assert_eq!(a.div(&b).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Float(1.0).div(&Value::Float(0.0)).is_err());
        assert!(Value::Int(1).rem(&Value::Int(0)).is_err());
    }

    #[test]
    fn rem_is_euclidean() {
        assert_eq!(Value::Int(-7).rem(&Value::Int(3)).unwrap(), Value::Int(2));
    }

    #[test]
    fn comparisons_cross_numeric_types() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(3.5)).unwrap(),
            Ordering::Less
        );
        assert!(Value::str("a").compare(&Value::Int(1)).is_err());
        assert_eq!(
            Value::str("a").compare(&Value::str("b")).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn min_max_follow_comparison() {
        let lo = Value::Int(1);
        let hi = Value::Float(2.5);
        assert_eq!(lo.min_value(&hi).unwrap(), Value::Int(1));
        assert_eq!(lo.max_value(&hi).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn loose_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::str("2"));
        assert_eq!(Value::str("knight"), Value::str("knight"));
        assert_eq!(Value::Bool(true), Value::Bool(true));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert_eq!(Value::Float(3.7).as_i64().unwrap(), 3);
        assert!(Value::Float(0.0).as_bool().is_ok());
        assert!(!Value::Float(0.0).as_bool().unwrap());
        assert!(Value::str("x").as_f64().is_err());
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Int(1).as_str(), None);
    }

    #[test]
    fn unary_helpers() {
        assert_eq!(Value::Int(-4).abs().unwrap(), Value::Int(4));
        assert_eq!(Value::Float(2.25).sqrt().unwrap(), Value::Float(1.5));
        assert!(Value::Float(-1.0).sqrt().is_err());
        assert_eq!(Value::Int(5).neg().unwrap(), Value::Int(-5));
        assert!(Value::str("a").neg().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::str("orc").to_string(), "\"orc\"");
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("elf"), Value::str("elf"));
    }
}
