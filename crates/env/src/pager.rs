//! Page storage behind the columnar environment table.
//!
//! Every column of an [`crate::table::EnvTable`] is split into fixed-size
//! pages of [`PAGE_ROWS`] values.  Pages are normally *resident* (owned
//! in-memory by the column); under a page budget the table evicts
//! least-recently-touched pages through a [`PageManager`], which stores the
//! page bytes elsewhere and hands back a token for later fault-in.  Two
//! managers are provided, in the spirit of perlin-core's RAM/disk page
//! manager split:
//!
//! * [`RamPageManager`] — keeps evicted pages in a heap map.  The default:
//!   with no budget nothing is ever evicted, and with a budget it exercises
//!   the full pin/unpin/evict protocol without touching the filesystem
//!   (used heavily by the paging fuzz suite).
//! * [`SpillPageManager`] — serializes evicted pages into a temporary spill
//!   file (checksummed, length-prefixed records with a free-list), so
//!   worlds larger than the page budget survive on disk.  The file is
//!   deleted when the manager is dropped.
//!
//! Determinism contract: paging is invisible to the simulation.  Eviction
//! and fault-in never change a value, so digests, snapshots and checkpoints
//! are bit-identical whatever the budget — the `spill` CI job runs the
//! whole conformance suite under a deliberately tiny `SGL_PAGE_BUDGET` to
//! enforce exactly that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rustc_hash::FxHashMap;

use crate::error::{EnvError, Result};
use crate::value::Value;

/// Number of rows per column page.  Fixed so row → (page, offset) is a
/// shift/mask, and small enough that a tiny `SGL_PAGE_BUDGET` forces real
/// eviction traffic even in unit-test sized worlds.
pub const PAGE_ROWS: usize = 256;

/// One page of column values: either a typed vector (the common case — the
/// column's attribute holds a single [`Value`] variant) or a mixed page of
/// boxed values (promoted on the first variant-mismatched write, so exact
/// value *tags* survive the columnar layout: state digests hash them).
#[derive(Debug, Clone, PartialEq)]
pub enum PageData {
    /// Typed page of floats.
    F64(Vec<f64>),
    /// Typed page of integers.
    I64(Vec<i64>),
    /// Typed page of booleans.
    Bool(Vec<bool>),
    /// Mixed page of tagged values (promoted column, or string data).
    Mixed(Vec<Value>),
}

impl PageData {
    /// Number of values stored in the page.
    pub fn len(&self) -> usize {
        match self {
            PageData::F64(v) => v.len(),
            PageData::I64(v) => v.len(),
            PageData::Bool(v) => v.len(),
            PageData::Mixed(v) => v.len(),
        }
    }

    /// True when the page holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `off`, reconstructed with its exact original tag.
    pub fn value(&self, off: usize) -> Value {
        match self {
            PageData::F64(v) => Value::Float(v[off]),
            PageData::I64(v) => Value::Int(v[off]),
            PageData::Bool(v) => Value::Bool(v[off]),
            PageData::Mixed(v) => v[off].clone(),
        }
    }

    /// Approximate heap footprint of the page in bytes.
    pub fn heap_bytes(&self) -> usize {
        match self {
            PageData::F64(v) => v.capacity() * 8,
            PageData::I64(v) => v.capacity() * 8,
            PageData::Bool(v) => v.capacity(),
            PageData::Mixed(v) => {
                v.capacity() * std::mem::size_of::<Value>()
                    + v.iter()
                        .map(|val| match val {
                            Value::Str(s) => s.len(),
                            _ => 0,
                        })
                        .sum::<usize>()
            }
        }
    }

    /// Serialize the page into `out` (used by spill files; not a public
    /// interchange format).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PageData::F64(v) => {
                out.push(1);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            PageData::I64(v) => {
                out.push(2);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            PageData::Bool(v) => {
                out.push(3);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for x in v {
                    out.push(*x as u8);
                }
            }
            PageData::Mixed(v) => {
                out.push(4);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                for val in v {
                    match val {
                        Value::Int(i) => {
                            out.push(1);
                            out.extend_from_slice(&i.to_le_bytes());
                        }
                        Value::Float(f) => {
                            out.push(2);
                            out.extend_from_slice(&f.to_le_bytes());
                        }
                        Value::Bool(b) => {
                            out.push(3);
                            out.push(*b as u8);
                        }
                        Value::Str(s) => {
                            out.push(4);
                            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                            out.extend_from_slice(s.as_bytes());
                        }
                    }
                }
            }
        }
    }

    /// Decode a page previously produced by [`PageData::encode`].
    pub fn decode(bytes: &[u8]) -> Result<PageData> {
        let mut cur = bytes;
        let tag = *cur.first().ok_or_else(|| decode_err("empty page"))?;
        cur = &cur[1..];
        let len = u32::from_le_bytes(take_arr(&mut cur)?) as usize;
        if len > PAGE_ROWS {
            return Err(decode_err("page row count exceeds PAGE_ROWS"));
        }
        let page = match tag {
            1 => {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(f64::from_le_bytes(take_arr(&mut cur)?));
                }
                PageData::F64(v)
            }
            2 => {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(i64::from_le_bytes(take_arr(&mut cur)?));
                }
                PageData::I64(v)
            }
            3 => {
                let b = take(&mut cur, len)?;
                PageData::Bool(b.iter().map(|x| *x != 0).collect())
            }
            4 => {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    let [vtag] = take_arr(&mut cur)?;
                    v.push(match vtag {
                        1 => Value::Int(i64::from_le_bytes(take_arr(&mut cur)?)),
                        2 => Value::Float(f64::from_le_bytes(take_arr(&mut cur)?)),
                        3 => Value::Bool(take_arr::<1>(&mut cur)?[0] != 0),
                        4 => {
                            let slen = u32::from_le_bytes(take_arr(&mut cur)?) as usize;
                            let sbytes = take(&mut cur, slen)?;
                            Value::Str(
                                std::str::from_utf8(sbytes)
                                    .map_err(|_| decode_err("invalid UTF-8 in string value"))?
                                    .into(),
                            )
                        }
                        other => return Err(decode_err(&format!("unknown value tag {other}"))),
                    });
                }
                PageData::Mixed(v)
            }
            other => return Err(decode_err(&format!("unknown page tag {other}"))),
        };
        if !cur.is_empty() {
            return Err(decode_err("trailing bytes after page payload"));
        }
        Ok(page)
    }
}

fn decode_err(msg: &str) -> EnvError {
    EnvError::Pager(format!("spill page decode failed: {msg}"))
}

/// Consume `n` bytes from the cursor, or fail with a typed decode error —
/// the spill file is external input to the tick's fault-in path, so a short
/// record must never panic.
fn take<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if cur.len() < n {
        return Err(decode_err("truncated page"));
    }
    let (head, tail) = cur.split_at(n);
    *cur = tail;
    Ok(head)
}

/// [`take`] into a fixed-size array (the `from_le_bytes` shape), with the
/// length mismatch mapped to the same typed error instead of an `expect`.
fn take_arr<const N: usize>(cur: &mut &[u8]) -> Result<[u8; N]> {
    take(cur, N)?
        .try_into()
        .map_err(|_| decode_err("truncated page"))
}

/// Counters describing what a [`PageManager`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages written out (spilled) since creation.
    pub spill_writes: u64,
    /// Pages read back (faulted in) since creation.
    pub spill_reads: u64,
    /// Pages currently held by the manager (evicted, not yet freed).
    pub spilled_pages: usize,
    /// Bytes of backing storage currently reserved (file length for the
    /// spill manager, heap bytes for the RAM manager).
    pub backing_bytes: u64,
}

/// Owner of evicted column pages.
///
/// The table pins its whole working set at tick start (`ensure_resident`)
/// and unpins at tick end (`enforce_page_budget`), which evicts
/// least-recently-touched pages through `spill` until the resident count is
/// back under [`PageManager::page_budget`].  Reads that hit an evicted page
/// outside a tick fault it in transiently through `load`; the token stays
/// valid until `free`.
pub trait PageManager: Send + Sync + std::fmt::Debug {
    /// Maximum number of resident pages a table may keep between ticks;
    /// `None` means unlimited (nothing is ever evicted).
    fn page_budget(&self) -> Option<usize>;

    /// Store an evicted page, returning a token for [`PageManager::load`] /
    /// [`PageManager::free`].
    fn spill(&self, page: &PageData) -> Result<u64>;

    /// Read a previously spilled page back.  The token remains valid — the
    /// caller frees it explicitly once the page is resident again.
    fn load(&self, token: u64) -> Result<PageData>;

    /// Release a spilled page slot.
    fn free(&self, token: u64);

    /// Activity counters.
    fn stats(&self) -> PagerStats;

    /// Short human-readable label (`"ram"` / `"spill"`).
    fn label(&self) -> &'static str;
}

/// Lock a pager mutex on a fallible path, mapping a poisoned lock (another
/// thread panicked mid-operation) to a typed error instead of propagating
/// the panic into the tick's IO path.
fn lock_pager<'a, T>(mutex: &'a Mutex<T>, what: &str) -> Result<std::sync::MutexGuard<'a, T>> {
    mutex
        .lock()
        .map_err(|_| EnvError::Pager(format!("{what} lock poisoned")))
}

/// Lock a pager mutex on an infallible path (`free`, `stats`).  A poisoned
/// lock degrades to the inner state: freeing a slot and reading counters
/// stay well-defined on whatever the panicking thread left behind, and a
/// leaked slot is strictly better than a second panic during cleanup.
fn lock_pager_tolerant<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// In-memory page manager.  Without a budget it never evicts; with one it
/// stores evicted pages in a heap map, exercising the same protocol as the
/// spill-file manager without filesystem traffic.
#[derive(Debug, Default)]
pub struct RamPageManager {
    budget: Option<usize>,
    next_token: AtomicU64,
    store: Mutex<FxHashMap<u64, PageData>>,
    writes: AtomicU64,
    reads: AtomicU64,
}

impl RamPageManager {
    /// Unbudgeted manager: all pages stay resident forever.
    pub fn new() -> RamPageManager {
        RamPageManager::default()
    }

    /// Budgeted manager: at most `pages` resident pages per table between
    /// ticks; evicted pages live in a heap map.
    pub fn with_budget(pages: usize) -> RamPageManager {
        RamPageManager {
            budget: Some(pages.max(1)),
            ..RamPageManager::default()
        }
    }
}

impl PageManager for RamPageManager {
    fn page_budget(&self) -> Option<usize> {
        self.budget
    }

    fn spill(&self, page: &PageData) -> Result<u64> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        lock_pager(&self.store, "ram pager")?.insert(token, page.clone());
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(token)
    }

    fn load(&self, token: u64) -> Result<PageData> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        lock_pager(&self.store, "ram pager")?
            .get(&token)
            .cloned()
            .ok_or_else(|| EnvError::Pager(format!("unknown page token {token}")))
    }

    fn free(&self, token: u64) {
        lock_pager_tolerant(&self.store).remove(&token);
    }

    fn stats(&self) -> PagerStats {
        let store = lock_pager_tolerant(&self.store);
        PagerStats {
            spill_writes: self.writes.load(Ordering::Relaxed),
            spill_reads: self.reads.load(Ordering::Relaxed),
            spilled_pages: store.len(),
            backing_bytes: store.values().map(|p| p.heap_bytes() as u64).sum(),
        }
    }

    fn label(&self) -> &'static str {
        "ram"
    }
}

/// Record header inside the spill file: payload length + FNV-1a checksum.
const RECORD_HEADER: usize = 4 + 8;

#[derive(Debug)]
struct SpillSlot {
    offset: u64,
    /// Bytes used by the current record (header + payload).
    len: u32,
    /// Bytes reserved for the slot (record may shrink on reuse).
    cap: u32,
}

#[derive(Debug, Default)]
struct SpillFileState {
    slots: FxHashMap<u64, SpillSlot>,
    free: Vec<SpillSlot>,
    next_token: u64,
    end: u64,
}

/// Page manager that evicts pages to a checksummed temporary file, deleted
/// on drop.  Budget comes from the constructor (usually the
/// `SGL_PAGE_BUDGET` environment variable, read by `EnvTable::new`).
#[derive(Debug)]
pub struct SpillPageManager {
    budget: usize,
    file: Mutex<(std::fs::File, SpillFileState)>,
    path: std::path::PathBuf,
    writes: AtomicU64,
    reads: AtomicU64,
}

static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillPageManager {
    /// Create a manager with the given resident-page budget, backed by a
    /// fresh temporary file.
    pub fn new(budget_pages: usize) -> Result<SpillPageManager> {
        let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("sgl-spill-{}-{}.pages", std::process::id(), seq));
        let file = std::fs::File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| EnvError::Pager(format!("cannot create spill file {path:?}: {e}")))?;
        Ok(SpillPageManager {
            budget: budget_pages.max(1),
            file: Mutex::new((file, SpillFileState::default())),
            path,
            writes: AtomicU64::new(0),
            reads: AtomicU64::new(0),
        })
    }

    /// Path of the backing file (exposed for crash-safety tests).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for SpillPageManager {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        state ^= u64::from(*b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

impl PageManager for SpillPageManager {
    fn page_budget(&self) -> Option<usize> {
        Some(self.budget)
    }

    fn spill(&self, page: &PageData) -> Result<u64> {
        use std::io::{Seek, SeekFrom, Write};
        let mut payload = Vec::with_capacity(PAGE_ROWS * 9);
        page.encode(&mut payload);
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        let mut guard = lock_pager(&self.file, "spill file")?;
        let (file, state) = &mut *guard;
        let need = record.len() as u32;
        // Best-fit reuse of freed slots (smallest capacity that holds the
        // record; ties broken by file offset, so reuse is deterministic),
        // append otherwise.
        let slot = match state
            .free
            .iter()
            .enumerate()
            .filter(|(_, s)| s.cap >= need)
            .min_by_key(|(_, s)| (s.cap, s.offset))
            .map(|(i, _)| i)
            .map(|i| state.free.swap_remove(i))
        {
            Some(mut reused) => {
                reused.len = need;
                reused
            }
            None => {
                let offset = state.end;
                state.end += u64::from(need);
                SpillSlot {
                    offset,
                    len: need,
                    cap: need,
                }
            }
        };
        file.seek(SeekFrom::Start(slot.offset))
            .and_then(|_| file.write_all(&record))
            .map_err(|e| EnvError::Pager(format!("spill write failed: {e}")))?;
        let token = state.next_token;
        state.next_token += 1;
        state.slots.insert(token, slot);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(token)
    }

    fn load(&self, token: u64) -> Result<PageData> {
        use std::io::{Read, Seek, SeekFrom};
        let mut guard = lock_pager(&self.file, "spill file")?;
        let (file, state) = &mut *guard;
        let slot = state
            .slots
            .get(&token)
            .ok_or_else(|| EnvError::Pager(format!("unknown page token {token}")))?;
        let mut record = vec![0u8; slot.len as usize];
        file.seek(SeekFrom::Start(slot.offset))
            .and_then(|_| file.read_exact(&mut record))
            .map_err(|e| EnvError::Pager(format!("spill read failed: {e}")))?;
        let mut header = record.as_slice();
        let len = u32::from_le_bytes(take_arr(&mut header)?) as usize;
        if RECORD_HEADER + len != record.len() {
            return Err(EnvError::Pager("spill record length mismatch".into()));
        }
        let checksum = u64::from_le_bytes(take_arr(&mut header)?);
        let payload = &record[RECORD_HEADER..];
        if fnv64(payload) != checksum {
            return Err(EnvError::Pager(
                "spill record checksum mismatch (corrupted spill file)".into(),
            ));
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        PageData::decode(payload)
    }

    fn free(&self, token: u64) {
        let mut guard = lock_pager_tolerant(&self.file);
        let (_, state) = &mut *guard;
        if let Some(slot) = state.slots.remove(&token) {
            state.free.push(slot);
        }
    }

    fn stats(&self) -> PagerStats {
        let guard = lock_pager_tolerant(&self.file);
        let (_, state) = &*guard;
        PagerStats {
            spill_writes: self.writes.load(Ordering::Relaxed),
            spill_reads: self.reads.load(Ordering::Relaxed),
            spilled_pages: state.slots.len(),
            backing_bytes: state.end,
        }
    }

    fn label(&self) -> &'static str {
        "spill"
    }
}

/// Parse a `SGL_PAGE_BUDGET`-style value (`off`, or a positive resident
/// page count) into a typed result.  Malformed input — including `0`, which
/// would silently mean "no budget" while looking like "a tiny budget" — is
/// an [`EnvError::Pager`], never a panic: the value usually arrives from
/// the process environment, which the library does not control.
pub fn parse_page_budget(raw: &str) -> Result<Option<usize>> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "off" | "none" => Ok(None),
        n => match n.parse::<usize>() {
            Ok(pages) if pages > 0 => Ok(Some(pages)),
            _ => Err(EnvError::Pager(format!(
                "SGL_PAGE_BUDGET must be a positive page count (or `off`), got `{raw}`"
            ))),
        },
    }
}

/// Resolve the page budget configured through the `SGL_PAGE_BUDGET`
/// environment variable (number of resident pages per table).  Unset or
/// explicitly-off values mean "no budget"; a malformed value warns and
/// falls back to no budget — CI sets the variable to prove paging is
/// behaviour-neutral, but a typo in a user environment must not abort the
/// process.  Use [`parse_page_budget`] directly for the typed error.
pub fn env_page_budget() -> Option<usize> {
    let raw = std::env::var("SGL_PAGE_BUDGET").ok()?;
    match parse_page_budget(&raw) {
        Ok(budget) => budget,
        Err(e) => {
            eprintln!("warning: {e}; running without a page budget");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pages() -> Vec<PageData> {
        vec![
            PageData::F64(vec![1.5, -0.0, f64::NAN, 3.25]),
            PageData::I64(vec![i64::MIN, -1, 0, 7, i64::MAX]),
            PageData::Bool(vec![true, false, true]),
            PageData::Mixed(vec![
                Value::Int(3),
                Value::Float(2.5),
                Value::Bool(true),
                Value::str("orc"),
            ]),
        ]
    }

    fn assert_page_eq(a: &PageData, b: &PageData) {
        match (a, b) {
            (PageData::F64(x), PageData::F64(y)) => {
                assert_eq!(x.len(), y.len());
                for (p, q) in x.iter().zip(y) {
                    assert_eq!(p.to_bits(), q.to_bits(), "float bits must survive");
                }
            }
            _ => assert_eq!(a, b),
        }
    }

    #[test]
    fn pages_encode_and_decode_bit_exactly() {
        for page in sample_pages() {
            let mut bytes = Vec::new();
            page.encode(&mut bytes);
            let decoded = PageData::decode(&bytes).unwrap();
            assert_page_eq(&page, &decoded);
            assert_eq!(decoded.len(), page.len());
            assert!(!decoded.is_empty());
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let page = PageData::I64(vec![1, 2, 3]);
        let mut bytes = Vec::new();
        page.encode(&mut bytes);
        assert!(PageData::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(PageData::decode(&[]).is_err());
        let mut wrong_tag = bytes.clone();
        wrong_tag[0] = 9;
        assert!(PageData::decode(&wrong_tag).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(PageData::decode(&trailing).is_err());
    }

    #[test]
    fn ram_manager_round_trips_pages() {
        let pager = RamPageManager::with_budget(2);
        assert_eq!(pager.page_budget(), Some(2));
        assert_eq!(pager.label(), "ram");
        let mut tokens = Vec::new();
        for page in sample_pages() {
            tokens.push((pager.spill(&page).unwrap(), page));
        }
        for (token, page) in &tokens {
            assert_page_eq(&pager.load(*token).unwrap(), page);
        }
        let stats = pager.stats();
        assert_eq!(stats.spill_writes, 4);
        assert_eq!(stats.spilled_pages, 4);
        for (token, _) in tokens {
            pager.free(token);
        }
        assert_eq!(pager.stats().spilled_pages, 0);
        assert!(pager.load(999).is_err());
    }

    #[test]
    fn spill_manager_round_trips_and_reuses_slots() {
        let pager = SpillPageManager::new(1).unwrap();
        assert_eq!(pager.label(), "spill");
        let pages = sample_pages();
        let tokens: Vec<u64> = pages.iter().map(|p| pager.spill(p).unwrap()).collect();
        for (token, page) in tokens.iter().zip(&pages) {
            assert_page_eq(&pager.load(*token).unwrap(), page);
        }
        let end_before = pager.stats().backing_bytes;
        // Free everything and spill again: the file must not grow.
        for token in tokens {
            pager.free(token);
        }
        let tokens: Vec<u64> = pages.iter().map(|p| pager.spill(p).unwrap()).collect();
        assert_eq!(pager.stats().backing_bytes, end_before);
        for (token, page) in tokens.iter().zip(&pages) {
            assert_page_eq(&pager.load(*token).unwrap(), page);
        }
        assert!(pager.stats().spill_reads >= 8);
    }

    #[test]
    fn spill_file_corruption_is_detected_not_undefined() {
        use std::io::{Seek, SeekFrom, Write};
        let pager = SpillPageManager::new(1).unwrap();
        let token = pager.spill(&PageData::I64((0..64).collect())).unwrap();
        // Flip payload bytes directly in the backing file.
        {
            let mut f = std::fs::File::options()
                .write(true)
                .open(pager.path())
                .unwrap();
            f.seek(SeekFrom::Start(20)).unwrap();
            f.write_all(&[0xAB, 0xCD]).unwrap();
        }
        let err = pager.load(token).unwrap_err();
        assert!(matches!(err, EnvError::Pager(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let pager = SpillPageManager::new(1).unwrap();
        let path = pager.path().to_path_buf();
        pager.spill(&PageData::Bool(vec![true])).unwrap();
        assert!(path.exists());
        drop(pager);
        assert!(!path.exists());
    }

    #[test]
    fn env_budget_parses_strictly() {
        // Not touching the real environment variable here (tests run in
        // parallel); exercise the typed parse contract directly.
        for (raw, expect) in [
            ("8", Some(8usize)),
            (" 16 ", Some(16)),
            ("off", None),
            ("OFF", None),
            ("none", None),
            ("", None),
        ] {
            assert_eq!(parse_page_budget(raw).unwrap(), expect, "{raw:?}");
        }
        // Malformed forms are typed errors, not panics and not a silent
        // RAM fallback: `0` would read as "tiny budget" while acting as
        // "no budget", and `abc` is a typo.
        for raw in ["abc", "0", "-3", "1.5", "8 pages"] {
            let err = parse_page_budget(raw).unwrap_err();
            assert!(matches!(err, EnvError::Pager(_)), "{raw:?}: {err}");
            assert!(err.to_string().contains("SGL_PAGE_BUDGET"), "{raw:?}");
        }
    }

    /// A poisoned pager lock surfaces as a typed error on the fallible
    /// paths and degrades gracefully on `free`/`stats` — never a second
    /// panic out of the tick's IO path.
    #[test]
    fn poisoned_locks_degrade_without_panicking() {
        use std::sync::Arc;
        let pager = Arc::new(RamPageManager::with_budget(2));
        let token = pager.spill(&PageData::I64(vec![1, 2, 3])).unwrap();
        let poisoner = Arc::clone(&pager);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.store.lock().unwrap();
            panic!("poison the pager lock");
        })
        .join();
        let err = pager.load(token).unwrap_err();
        assert!(matches!(err, EnvError::Pager(_)), "{err}");
        assert!(err.to_string().contains("poisoned"), "{err}");
        assert!(matches!(
            pager.spill(&PageData::Bool(vec![true])),
            Err(EnvError::Pager(_))
        ));
        // Infallible paths keep working on the inner state.
        pager.free(token);
        assert_eq!(pager.stats().spilled_pages, 0);
    }
}
