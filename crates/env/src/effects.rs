//! Effect rows and the per-tick effect buffer.
//!
//! An SGL action produces *effects*: sparse updates to the auxiliary (effect)
//! attributes of one or more units.  During a tick every script contributes a
//! multiset of effect rows; the [`EffectBuffer`] folds them together with the
//! combination operator `⊕` (sum for stackable, min/max for nonstackable
//! effects) keyed by the unit key, exactly as described in §2.2 and §4.2 of
//! the paper.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::error::{EnvError, Result};
use crate::schema::{AttrId, CombineKind, Schema};
use crate::value::Value;

/// A sparse effect on a single unit: the unit key plus `(attribute, value)`
/// pairs for effect attributes only.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectRow {
    /// Key of the affected unit.
    pub key: i64,
    /// Sparse effect attribute assignments.
    pub values: Vec<(AttrId, Value)>,
}

impl EffectRow {
    /// Create an effect row.
    pub fn new(key: i64, values: Vec<(AttrId, Value)>) -> EffectRow {
        EffectRow { key, values }
    }

    /// Create an effect row with a single attribute.
    pub fn single(key: i64, attr: AttrId, value: Value) -> EffectRow {
        EffectRow {
            key,
            values: vec![(attr, value)],
        }
    }
}

/// Fold two effect values according to the attribute's combination kind.
pub fn combine_values(kind: CombineKind, a: &Value, b: &Value) -> Result<Value> {
    match kind {
        CombineKind::Const => Err(EnvError::ConstEffect("<const>".into())),
        CombineKind::Sum => a.add(b),
        CombineKind::Max => a.max_value(b),
        CombineKind::Min => a.min_value(b),
    }
}

/// Accumulates all effects of a tick, combined per `(unit key, attribute)`.
///
/// This is the executable form of the `⊕` operator: inserting effect rows one
/// at a time yields the same result as materialising the full multiset and
/// grouping by key, because `sum`, `min` and `max` are associative and
/// commutative (see `combine::` for the property-based proofs).
#[derive(Debug, Clone)]
pub struct EffectBuffer {
    schema: Arc<Schema>,
    /// key → dense vector over *all* attributes; only effect attributes are
    /// ever `Some`.
    per_key: FxHashMap<i64, Vec<Option<Value>>>,
}

impl EffectBuffer {
    /// Create an empty buffer for the given schema.
    pub fn new(schema: Arc<Schema>) -> EffectBuffer {
        EffectBuffer {
            schema,
            per_key: FxHashMap::default(),
        }
    }

    /// The schema this buffer combines against.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of distinct unit keys with at least one effect.
    pub fn len(&self) -> usize {
        self.per_key.len()
    }

    /// True if no effects were recorded.
    pub fn is_empty(&self) -> bool {
        self.per_key.is_empty()
    }

    /// Apply a single effect value, combining with any previous value.
    pub fn apply(&mut self, key: i64, attr: AttrId, value: Value) -> Result<()> {
        let def = self.schema.attr(attr);
        if def.kind == CombineKind::Const {
            return Err(EnvError::ConstEffect(def.name.clone()));
        }
        let slots = self
            .per_key
            .entry(key)
            .or_insert_with(|| vec![None; self.schema.len()]);
        let slot = &mut slots[attr];
        match slot {
            None => *slot = Some(value),
            Some(prev) => *slot = Some(combine_values(def.kind, prev, &value)?),
        }
        Ok(())
    }

    /// Apply a whole effect row.
    pub fn apply_row(&mut self, row: &EffectRow) -> Result<()> {
        for (attr, value) in &row.values {
            self.apply(row.key, *attr, value.clone())?;
        }
        Ok(())
    }

    /// Merge another buffer into this one (the `⊕` of two partial results).
    pub fn merge(&mut self, other: &EffectBuffer) -> Result<()> {
        for (key, slots) in &other.per_key {
            for (attr, value) in slots.iter().enumerate() {
                if let Some(v) = value {
                    self.apply(*key, attr, v.clone())?;
                }
            }
        }
        Ok(())
    }

    /// Read the combined effect for `(key, attr)`, if any was recorded.
    pub fn get(&self, key: i64, attr: AttrId) -> Option<&Value> {
        self.per_key
            .get(&key)
            .and_then(|slots| slots[attr].as_ref())
    }

    /// Read the combined effect, falling back to the attribute's default
    /// (the value an unaffected unit carries at the end of a tick).
    pub fn get_or_default(&self, key: i64, attr: AttrId) -> Value {
        self.get(key, attr)
            .cloned()
            .unwrap_or_else(|| self.schema.attr(attr).default.clone())
    }

    /// Iterate over `(key, attr, value)` triples of recorded effects.
    pub fn iter(&self) -> impl Iterator<Item = (i64, AttrId, &Value)> {
        self.per_key.iter().flat_map(|(key, slots)| {
            slots
                .iter()
                .enumerate()
                .filter_map(move |(attr, v)| v.as_ref().map(|v| (*key, attr, v)))
        })
    }

    /// Keys that received at least one effect, in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = i64> + '_ {
        self.per_key.keys().copied()
    }

    /// Clear all recorded effects, keeping allocations for reuse.
    pub fn clear(&mut self) {
        self.per_key.clear();
    }

    /// Canonical, order-independent snapshot used by tests to compare buffers.
    pub fn canonical(&self) -> Vec<(i64, AttrId, Value)> {
        let mut out: Vec<(i64, AttrId, Value)> =
            self.iter().map(|(k, a, v)| (k, a, v.clone())).collect();
        out.sort_by_key(|a| (a.0, a.1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;

    fn ids() -> (Arc<Schema>, AttrId, AttrId, AttrId) {
        let s = paper_schema().into_shared();
        let dmg = s.attr_id("damage").unwrap();
        let aura = s.attr_id("inaura").unwrap();
        let hp = s.attr_id("health").unwrap();
        (s, dmg, aura, hp)
    }

    #[test]
    fn stackable_effects_sum() {
        let (s, dmg, _, _) = ids();
        let mut buf = EffectBuffer::new(s);
        buf.apply(7, dmg, Value::Int(3)).unwrap();
        buf.apply(7, dmg, Value::Int(5)).unwrap();
        assert_eq!(buf.get(7, dmg), Some(&Value::Int(8)));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn nonstackable_effects_take_max() {
        let (s, _, aura, _) = ids();
        let mut buf = EffectBuffer::new(s);
        buf.apply(7, aura, Value::Int(4)).unwrap();
        buf.apply(7, aura, Value::Int(2)).unwrap();
        buf.apply(7, aura, Value::Int(9)).unwrap();
        assert_eq!(buf.get(7, aura), Some(&Value::Int(9)));
    }

    #[test]
    fn const_attributes_reject_effects() {
        let (s, _, _, hp) = ids();
        let mut buf = EffectBuffer::new(s);
        assert!(matches!(
            buf.apply(1, hp, Value::Int(1)).unwrap_err(),
            EnvError::ConstEffect(_)
        ));
    }

    #[test]
    fn rows_and_merge() {
        let (s, dmg, aura, _) = ids();
        let mut a = EffectBuffer::new(Arc::clone(&s));
        a.apply_row(&EffectRow::new(
            1,
            vec![(dmg, Value::Int(2)), (aura, Value::Int(1))],
        ))
        .unwrap();
        let mut b = EffectBuffer::new(Arc::clone(&s));
        b.apply_row(&EffectRow::single(1, dmg, Value::Int(4)))
            .unwrap();
        b.apply_row(&EffectRow::single(2, aura, Value::Int(6)))
            .unwrap();

        let mut merged_ab = a.clone();
        merged_ab.merge(&b).unwrap();
        let mut merged_ba = b.clone();
        merged_ba.merge(&a).unwrap();
        // ⊕ is commutative.
        assert_eq!(merged_ab.canonical(), merged_ba.canonical());
        assert_eq!(merged_ab.get(1, dmg), Some(&Value::Int(6)));
        assert_eq!(merged_ab.get(2, aura), Some(&Value::Int(6)));
    }

    #[test]
    fn get_or_default_falls_back_to_schema_default() {
        let (s, dmg, aura, _) = ids();
        let buf = EffectBuffer::new(s);
        assert_eq!(buf.get_or_default(55, dmg), Value::Int(0));
        assert_eq!(buf.get_or_default(55, aura), Value::Int(0));
        assert!(buf.is_empty());
    }

    #[test]
    fn clear_retains_schema() {
        let (s, dmg, _, _) = ids();
        let mut buf = EffectBuffer::new(s);
        buf.apply(1, dmg, Value::Int(1)).unwrap();
        buf.clear();
        assert!(buf.is_empty());
        buf.apply(1, dmg, Value::Int(2)).unwrap();
        assert_eq!(buf.get(1, dmg), Some(&Value::Int(2)));
    }

    #[test]
    fn iteration_yields_all_triples() {
        let (s, dmg, aura, _) = ids();
        let mut buf = EffectBuffer::new(s);
        buf.apply(1, dmg, Value::Int(1)).unwrap();
        buf.apply(2, aura, Value::Int(3)).unwrap();
        let mut seen: Vec<(i64, AttrId)> = buf.iter().map(|(k, a, _)| (k, a)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, dmg), (2, aura)]);
        let mut keys: Vec<i64> = buf.keys().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn float_effects_combine() {
        let s = paper_schema().into_shared();
        let mx = s.attr_id("movevect_x").unwrap();
        let mut buf = EffectBuffer::new(s);
        buf.apply(3, mx, Value::Float(1.5)).unwrap();
        buf.apply(3, mx, Value::Float(-0.5)).unwrap();
        assert_eq!(buf.get(3, mx), Some(&Value::Float(1.0)));
    }
}
