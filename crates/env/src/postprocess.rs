//! The post-processing step that applies combined effects to unit state
//! (Example 4.1 in the paper).
//!
//! After all SGL scripts of a tick have produced their effect relations and
//! those have been folded by `⊕`, a game-mechanics query rewrites the state
//! attributes of every unit from its old state and its combined effects, and
//! removes dead units.  The paper expresses this as a fixed SQL query; here it
//! is a small declarative rule language so that different games (and tests)
//! can define their own mechanics without writing executor code.

use std::sync::Arc;

use crate::effects::EffectBuffer;
use crate::error::Result;
use crate::schema::{AttrId, Schema};
use crate::table::EnvTable;
use crate::value::Value;

/// Expression over the *old* state and the *combined effects* of one unit.
#[derive(Debug, Clone)]
pub enum UpdateExpr {
    /// Value of a state attribute before the update.
    State(AttrId),
    /// Combined effect value for an effect attribute (default if none).
    Effect(AttrId),
    /// A literal constant.
    Const(Value),
    /// Addition.
    Add(Box<UpdateExpr>, Box<UpdateExpr>),
    /// Subtraction.
    Sub(Box<UpdateExpr>, Box<UpdateExpr>),
    /// Multiplication.
    Mul(Box<UpdateExpr>, Box<UpdateExpr>),
    /// Division (errors on division by zero).
    Div(Box<UpdateExpr>, Box<UpdateExpr>),
    /// Pointwise minimum.
    Min(Box<UpdateExpr>, Box<UpdateExpr>),
    /// Pointwise maximum.
    Max(Box<UpdateExpr>, Box<UpdateExpr>),
    /// Clamp the first expression into `[lo, hi]`.
    Clamp {
        /// Expression being clamped.
        value: Box<UpdateExpr>,
        /// Lower bound.
        lo: Box<UpdateExpr>,
        /// Upper bound.
        hi: Box<UpdateExpr>,
    },
}

impl UpdateExpr {
    /// Convenience: `a + b`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: UpdateExpr, b: UpdateExpr) -> UpdateExpr {
        UpdateExpr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience: `a - b`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: UpdateExpr, b: UpdateExpr) -> UpdateExpr {
        UpdateExpr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience: `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: UpdateExpr, b: UpdateExpr) -> UpdateExpr {
        UpdateExpr::Mul(Box::new(a), Box::new(b))
    }

    /// Convenience: `min(a, b)`.
    pub fn min(a: UpdateExpr, b: UpdateExpr) -> UpdateExpr {
        UpdateExpr::Min(Box::new(a), Box::new(b))
    }

    /// Convenience: `max(a, b)`.
    pub fn max(a: UpdateExpr, b: UpdateExpr) -> UpdateExpr {
        UpdateExpr::Max(Box::new(a), Box::new(b))
    }

    fn eval(
        &self,
        state: crate::table::RowRef<'_>,
        key: i64,
        effects: &EffectBuffer,
    ) -> Result<Value> {
        match self {
            UpdateExpr::State(attr) => Ok(state.get(*attr)),
            UpdateExpr::Effect(attr) => Ok(effects.get_or_default(key, *attr)),
            UpdateExpr::Const(v) => Ok(v.clone()),
            UpdateExpr::Add(a, b) => a
                .eval(state, key, effects)?
                .add(&b.eval(state, key, effects)?),
            UpdateExpr::Sub(a, b) => a
                .eval(state, key, effects)?
                .sub(&b.eval(state, key, effects)?),
            UpdateExpr::Mul(a, b) => a
                .eval(state, key, effects)?
                .mul(&b.eval(state, key, effects)?),
            UpdateExpr::Div(a, b) => a
                .eval(state, key, effects)?
                .div(&b.eval(state, key, effects)?),
            UpdateExpr::Min(a, b) => a
                .eval(state, key, effects)?
                .min_value(&b.eval(state, key, effects)?),
            UpdateExpr::Max(a, b) => a
                .eval(state, key, effects)?
                .max_value(&b.eval(state, key, effects)?),
            UpdateExpr::Clamp { value, lo, hi } => {
                let v = value.eval(state, key, effects)?;
                let lo = lo.eval(state, key, effects)?;
                let hi = hi.eval(state, key, effects)?;
                v.max_value(&lo)?.min_value(&hi)
            }
        }
    }
}

/// A single update rule: `target ← expr(old state, combined effects)`.
#[derive(Debug, Clone)]
pub enum UpdateRule {
    /// Assign the value of an expression to a state attribute.
    Assign {
        /// State attribute receiving the value.
        target: AttrId,
        /// Expression over old state and combined effects.
        expr: UpdateExpr,
    },
    /// Move a position attribute by the combined movement vector, normalised
    /// to at most `step` world units per tick (Example 4.1's `norm` factor).
    NormalizedMove {
        /// Position attribute being moved (`posx` or `posy`).
        target: AttrId,
        /// Effect attribute holding the x component of the movement vector.
        dx: AttrId,
        /// Effect attribute holding the y component of the movement vector.
        dy: AttrId,
        /// True when `target` is the x axis.
        axis_is_x: bool,
        /// Maximum distance moved per tick.
        step: f64,
    },
}

/// Predicate deciding which units are removed after the update (e.g. the dead).
#[derive(Debug, Clone)]
pub struct RemoveRule {
    /// State attribute inspected after updates were applied.
    pub attr: AttrId,
    /// Remove the unit when `attr <= threshold`.
    pub threshold: Value,
}

/// Statistics returned by [`PostProcessor::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PostStats {
    /// Units whose state changed (any rule produced a different value).
    pub updated: usize,
    /// Units removed by the removal rule.
    pub removed: usize,
}

/// Applies combined effects to the environment table.
#[derive(Debug, Clone)]
pub struct PostProcessor {
    schema: Arc<Schema>,
    rules: Vec<UpdateRule>,
    remove: Option<RemoveRule>,
}

impl PostProcessor {
    /// Create a post-processor with no rules.
    pub fn new(schema: Arc<Schema>) -> PostProcessor {
        PostProcessor {
            schema,
            rules: Vec::new(),
            remove: None,
        }
    }

    /// Add an assignment rule.
    pub fn assign(mut self, target: AttrId, expr: UpdateExpr) -> PostProcessor {
        self.rules.push(UpdateRule::Assign { target, expr });
        self
    }

    /// Add a normalised-movement rule for one axis.
    pub fn normalized_move(
        mut self,
        target: AttrId,
        dx: AttrId,
        dy: AttrId,
        axis_is_x: bool,
        step: f64,
    ) -> PostProcessor {
        self.rules.push(UpdateRule::NormalizedMove {
            target,
            dx,
            dy,
            axis_is_x,
            step,
        });
        self
    }

    /// Remove units whose `attr` is `<= threshold` after the update.
    pub fn remove_when_le(mut self, attr: AttrId, threshold: impl Into<Value>) -> PostProcessor {
        self.remove = Some(RemoveRule {
            attr,
            threshold: threshold.into(),
        });
        self
    }

    /// The rules, for introspection.
    pub fn rules(&self) -> &[UpdateRule] {
        &self.rules
    }

    /// Apply all rules to every unit, then the removal rule, then reset all
    /// effect attributes to their defaults (ready for the next tick).
    pub fn apply(&self, table: &mut EnvTable, effects: &EffectBuffer) -> Result<PostStats> {
        let mut stats = PostStats::default();
        let schema = Arc::clone(&self.schema);
        let n = table.len();
        // Compute all new values first (reads must see the *old* state only),
        // then write them back: the simultaneous-update semantics of §2.2.
        // The new values accumulate per *rule* — one full column each — so
        // the write-back is a handful of bulk column replacements instead of
        // a per-row, per-attribute walk.
        let targets: Vec<AttrId> = self
            .rules
            .iter()
            .map(|rule| match rule {
                UpdateRule::Assign { target, .. } => *target,
                UpdateRule::NormalizedMove { target, .. } => *target,
            })
            .collect();
        let mut new_columns: Vec<Vec<Value>> =
            self.rules.iter().map(|_| Vec::with_capacity(n)).collect();
        for idx in 0..n {
            let row = table.row(idx);
            let key = row.key(&schema);
            let mut changed = false;
            // Sequential per-row semantics for the `updated` statistic: a
            // later rule targeting the same attribute compares against the
            // earlier rule's value, exactly as the old in-place writes did.
            let mut written: Vec<(AttrId, Value)> = Vec::with_capacity(self.rules.len());
            for (ri, rule) in self.rules.iter().enumerate() {
                let target = targets[ri];
                let value = match rule {
                    UpdateRule::Assign { expr, .. } => expr.eval(row, key, effects)?,
                    UpdateRule::NormalizedMove {
                        dx,
                        dy,
                        axis_is_x,
                        step,
                        ..
                    } => {
                        let vx = effects.get_or_default(key, *dx).as_f64()?;
                        let vy = effects.get_or_default(key, *dy).as_f64()?;
                        let norm = (vx * vx + vy * vy).sqrt();
                        let old = row.get(target).as_f64()?;
                        let delta = if norm > f64::EPSILON {
                            let component = if *axis_is_x { vx } else { vy };
                            component * (step / norm).min(1.0)
                        } else {
                            0.0
                        };
                        Value::Float(old + delta)
                    }
                };
                let current = written
                    .iter()
                    .rev()
                    .find(|(a, _)| *a == target)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_else(|| row.get(target));
                if current != value {
                    changed = true;
                }
                written.push((target, value.clone()));
                new_columns[ri].push(value);
            }
            if changed {
                stats.updated += 1;
            }
        }
        for (ri, values) in new_columns.into_iter().enumerate() {
            table.set_column(targets[ri], values)?;
        }
        if let Some(remove) = &self.remove {
            let attr = remove.attr;
            let threshold = remove.threshold.clone();
            stats.removed = table.remove_where(|row| {
                row.get(attr)
                    .compare(&threshold)
                    .map(|o| o != std::cmp::Ordering::Greater)
                    .unwrap_or(false)
            })?;
        }
        table.reset_effects();
        Ok(stats)
    }
}

/// Build the exact post-processing step of Example 4.1 for the paper schema:
/// positions move by the normalised movement vector, health loses `damage`
/// and gains `inaura` (capped by `max_health` if present), the cooldown
/// decreases by one and increases by `weaponused * reload`.
pub fn paper_postprocessor(
    schema: &Arc<Schema>,
    walk_dist_per_tick: f64,
    reload: i64,
) -> Result<PostProcessor> {
    let posx = schema.require_attr("posx")?;
    let posy = schema.require_attr("posy")?;
    let health = schema.require_attr("health")?;
    let cooldown = schema.require_attr("cooldown")?;
    let weaponused = schema.require_attr("weaponused")?;
    let mvx = schema.require_attr("movevect_x")?;
    let mvy = schema.require_attr("movevect_y")?;
    let damage = schema.require_attr("damage")?;
    let inaura = schema.require_attr("inaura")?;

    let health_expr = UpdateExpr::add(
        UpdateExpr::sub(UpdateExpr::State(health), UpdateExpr::Effect(damage)),
        UpdateExpr::Effect(inaura),
    );
    // Cap healing at max_health when the schema provides it.
    let health_expr = match schema.attr_id("max_health") {
        Some(maxhp) => UpdateExpr::min(health_expr, UpdateExpr::State(maxhp)),
        None => health_expr,
    };
    let cooldown_expr = UpdateExpr::max(
        UpdateExpr::add(
            UpdateExpr::sub(
                UpdateExpr::State(cooldown),
                UpdateExpr::Const(Value::Int(1)),
            ),
            UpdateExpr::mul(
                UpdateExpr::Effect(weaponused),
                UpdateExpr::Const(Value::Int(reload)),
            ),
        ),
        UpdateExpr::Const(Value::Int(0)),
    );

    Ok(PostProcessor::new(Arc::clone(schema))
        .normalized_move(posx, mvx, mvy, true, walk_dist_per_tick)
        .normalized_move(posy, mvx, mvy, false, walk_dist_per_tick)
        .assign(health, health_expr)
        .assign(cooldown, cooldown_expr)
        .remove_when_le(health, 0i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;
    use crate::tuple::TupleBuilder;

    fn setup() -> (Arc<Schema>, EnvTable, EffectBuffer) {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for (key, hp, x) in [(1i64, 20i64, 0.0f64), (2, 5, 10.0), (3, 8, 20.0)] {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("health", hp)
                .unwrap()
                .set("posx", x)
                .unwrap()
                .set("cooldown", 2i64)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        let effects = EffectBuffer::new(Arc::clone(&schema));
        (schema, table, effects)
    }

    #[test]
    fn damage_and_healing_update_health() {
        let (schema, mut table, mut effects) = setup();
        let dmg = schema.attr_id("damage").unwrap();
        let aura = schema.attr_id("inaura").unwrap();
        effects.apply(1, dmg, Value::Int(6)).unwrap();
        effects.apply(1, aura, Value::Int(2)).unwrap();
        effects.apply(2, dmg, Value::Int(9)).unwrap();

        let pp = paper_postprocessor(&schema, 1.0, 3).unwrap();
        let stats = pp.apply(&mut table, &effects).unwrap();

        // Unit 2 had 5 hp and took 9 damage: removed.
        assert_eq!(stats.removed, 1);
        assert_eq!(table.sorted_keys(), vec![1, 3]);
        let hp = schema.attr_id("health").unwrap();
        let idx = table.find_key(1).unwrap();
        assert_eq!(table.row(idx).get_i64(hp).unwrap(), 20 - 6 + 2);
    }

    #[test]
    fn cooldown_decrements_and_reload_applies() {
        let (schema, mut table, mut effects) = setup();
        let weapon = schema.attr_id("weaponused").unwrap();
        effects.apply(1, weapon, Value::Int(1)).unwrap();
        let pp = paper_postprocessor(&schema, 1.0, 4).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        let cd = schema.attr_id("cooldown").unwrap();
        let shooter = table.find_key(1).unwrap();
        let idle = table.find_key(3).unwrap();
        assert_eq!(table.row(shooter).get_i64(cd).unwrap(), 2 - 1 + 4);
        assert_eq!(table.row(idle).get_i64(cd).unwrap(), 1);
    }

    #[test]
    fn cooldown_never_goes_negative() {
        let (schema, mut table, effects) = setup();
        let pp = paper_postprocessor(&schema, 1.0, 3).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        let cd = schema.attr_id("cooldown").unwrap();
        for (_, row) in table.iter() {
            assert_eq!(row.get_i64(cd).unwrap(), 0);
        }
    }

    #[test]
    fn movement_is_normalized_to_step_length() {
        let (schema, mut table, mut effects) = setup();
        let mvx = schema.attr_id("movevect_x").unwrap();
        let mvy = schema.attr_id("movevect_y").unwrap();
        // Unit 1 wants to move 30 units in x and 40 in y; the step is 5.
        effects.apply(1, mvx, Value::Float(30.0)).unwrap();
        effects.apply(1, mvy, Value::Float(40.0)).unwrap();
        let pp = paper_postprocessor(&schema, 5.0, 3).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        let posx = schema.attr_id("posx").unwrap();
        let posy = schema.attr_id("posy").unwrap();
        let idx = table.find_key(1).unwrap();
        assert!((table.row(idx).get_f64(posx).unwrap() - 3.0).abs() < 1e-9);
        assert!((table.row(idx).get_f64(posy).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn short_moves_are_not_scaled_up() {
        let (schema, mut table, mut effects) = setup();
        let mvx = schema.attr_id("movevect_x").unwrap();
        effects.apply(1, mvx, Value::Float(0.5)).unwrap();
        let pp = paper_postprocessor(&schema, 5.0, 3).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        let posx = schema.attr_id("posx").unwrap();
        let idx = table.find_key(1).unwrap();
        assert!((table.row(idx).get_f64(posx).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn effects_are_reset_after_application() {
        let (schema, mut table, mut effects) = setup();
        let dmg = schema.attr_id("damage").unwrap();
        effects.apply(1, dmg, Value::Int(1)).unwrap();
        // Simulate the executor having written effects into the table too.
        table.set_by_key(1, dmg, Value::Int(1)).unwrap();
        let pp = paper_postprocessor(&schema, 1.0, 3).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        let idx = table.find_key(1).unwrap();
        assert_eq!(table.row(idx).get_i64(dmg).unwrap(), 0);
    }

    #[test]
    fn no_effects_means_only_cooldown_changes() {
        let (schema, mut table, effects) = setup();
        let pp = paper_postprocessor(&schema, 1.0, 3).unwrap();
        let stats = pp.apply(&mut table, &effects).unwrap();
        assert_eq!(stats.removed, 0);
        assert_eq!(stats.updated, 3); // cooldown 2 → 1 for everyone
        let hp = schema.attr_id("health").unwrap();
        assert_eq!(
            table
                .row(table.find_key_readonly(1).unwrap())
                .get_i64(hp)
                .unwrap(),
            20
        );
    }

    #[test]
    fn clamp_expression_limits_values() {
        let (schema, mut table, mut effects) = setup();
        let hp = schema.attr_id("health").unwrap();
        let aura = schema.attr_id("inaura").unwrap();
        effects.apply(1, aura, Value::Int(100)).unwrap();
        let pp = PostProcessor::new(Arc::clone(&schema)).assign(
            hp,
            UpdateExpr::Clamp {
                value: Box::new(UpdateExpr::add(
                    UpdateExpr::State(hp),
                    UpdateExpr::Effect(aura),
                )),
                lo: Box::new(UpdateExpr::Const(Value::Int(0))),
                hi: Box::new(UpdateExpr::Const(Value::Int(25))),
            },
        );
        pp.apply(&mut table, &effects).unwrap();
        assert_eq!(
            table
                .row(table.find_key_readonly(1).unwrap())
                .get_i64(hp)
                .unwrap(),
            25
        );
    }

    #[test]
    fn division_rule_errors_propagate() {
        let (schema, mut table, effects) = setup();
        let hp = schema.attr_id("health").unwrap();
        let pp = PostProcessor::new(Arc::clone(&schema)).assign(
            hp,
            UpdateExpr::Div(
                Box::new(UpdateExpr::State(hp)),
                Box::new(UpdateExpr::Const(Value::Int(0))),
            ),
        );
        assert!(pp.apply(&mut table, &effects).is_err());
    }
}
