//! The environment relation `E`: a multiset of unit tuples.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::error::{EnvError, Result};
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// The environment relation.  Holds every unit/object in the game world.
///
/// The table keeps a key → row-index map so executors can resolve
/// `WHERE e.key = target_key` probes in O(1); the map is rebuilt lazily after
/// structural changes (insert/remove).
#[derive(Debug, Clone)]
pub struct EnvTable {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
    key_index: FxHashMap<i64, usize>,
    key_index_dirty: bool,
}

impl EnvTable {
    /// Create an empty environment with the given schema.
    pub fn new(schema: Arc<Schema>) -> EnvTable {
        EnvTable {
            schema,
            rows: Vec::new(),
            key_index: FxHashMap::default(),
            key_index_dirty: false,
        }
    }

    /// The schema of the table.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no units.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a unit, checking arity. Keys are expected to be unique; a
    /// duplicate key is an error so that effect application stays well defined.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.len() {
            return Err(EnvError::ArityMismatch {
                expected: self.schema.len(),
                found: tuple.arity(),
            });
        }
        let key = tuple.key(&self.schema);
        self.ensure_key_index();
        if self.key_index.contains_key(&key) {
            return Err(EnvError::DuplicateKey(key));
        }
        self.key_index.insert(key, self.rows.len());
        self.rows.push(tuple);
        Ok(())
    }

    /// Access a row by position.
    pub fn row(&self, idx: usize) -> &Tuple {
        &self.rows[idx]
    }

    /// Mutable access to a row by position.
    pub fn row_mut(&mut self, idx: usize) -> &mut Tuple {
        &mut self.rows[idx]
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// All rows, mutably. Callers must not change keys through this.
    pub fn rows_mut(&mut self) -> &mut [Tuple] {
        &mut self.rows
    }

    /// Iterate over `(row_index, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Tuple)> {
        self.rows.iter().enumerate()
    }

    /// The key of the row at `idx`.
    pub fn key_of(&self, idx: usize) -> i64 {
        self.rows[idx].key(&self.schema)
    }

    fn ensure_key_index(&mut self) {
        if self.key_index_dirty {
            self.key_index.clear();
            for (i, row) in self.rows.iter().enumerate() {
                self.key_index.insert(row.key(&self.schema), i);
            }
            self.key_index_dirty = false;
        }
    }

    /// Find the row index holding `key`.
    pub fn find_key(&mut self, key: i64) -> Option<usize> {
        self.ensure_key_index();
        self.key_index.get(&key).copied()
    }

    /// Find the row index holding `key` without requiring `&mut self`.
    /// Falls back to a linear scan if the index is stale.
    pub fn find_key_readonly(&self, key: i64) -> Option<usize> {
        if !self.key_index_dirty {
            return self.key_index.get(&key).copied();
        }
        self.rows.iter().position(|r| r.key(&self.schema) == key)
    }

    /// Read a whole column as `f64` (used to build per-tick indexes).
    pub fn column_f64(&self, attr: AttrId) -> Result<Vec<f64>> {
        self.rows.iter().map(|r| r.get(attr).as_f64()).collect()
    }

    /// Read a whole column as `i64`.
    pub fn column_i64(&self, attr: AttrId) -> Result<Vec<i64>> {
        self.rows.iter().map(|r| r.get(attr).as_i64()).collect()
    }

    /// Reset every effect attribute of every unit to its default.
    /// This is the per-tick initialisation step of the processing model (§4.3).
    pub fn reset_effects(&mut self) {
        let schema = Arc::clone(&self.schema);
        for row in &mut self.rows {
            row.reset_effects(&schema);
        }
    }

    /// Remove all rows matching the predicate. Returns the number removed.
    pub fn remove_where<F: FnMut(&Tuple) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.key_index_dirty = true;
        }
        removed
    }

    /// Update a single unit's attribute by key.
    pub fn set_by_key(&mut self, key: i64, attr: AttrId, value: Value) -> Result<()> {
        if self.schema.attr(attr).kind == crate::schema::CombineKind::Const
            && attr == self.schema.key_attr()
        {
            return Err(EnvError::InvalidKey(
                "cannot overwrite the key attribute".into(),
            ));
        }
        let idx = self.find_key(key).ok_or(EnvError::UnknownKey(key))?;
        self.rows[idx].set(attr, value);
        Ok(())
    }

    /// Collect the multiset of keys (sorted) — useful in tests.
    pub fn sorted_keys(&self) -> Vec<i64> {
        let mut keys: Vec<i64> = self.rows.iter().map(|r| r.key(&self.schema)).collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;
    use crate::tuple::TupleBuilder;

    fn mk_unit(schema: &Schema, key: i64, player: i64, x: f64, y: f64, health: i64) -> Tuple {
        TupleBuilder::new(schema)
            .set("key", key)
            .unwrap()
            .set("player", player)
            .unwrap()
            .set("posx", x)
            .unwrap()
            .set("posy", y)
            .unwrap()
            .set("health", health)
            .unwrap()
            .build()
    }

    fn sample_table() -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut t = EnvTable::new(Arc::clone(&schema));
        t.insert(mk_unit(&schema, 1, 0, 0.0, 0.0, 20)).unwrap();
        t.insert(mk_unit(&schema, 2, 0, 3.0, 4.0, 15)).unwrap();
        t.insert(mk_unit(&schema, 3, 1, 10.0, 10.0, 8)).unwrap();
        (schema, t)
    }

    #[test]
    fn insert_and_lookup() {
        let (_schema, mut t) = sample_table();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.find_key(2), Some(1));
        assert_eq!(t.find_key(99), None);
        assert_eq!(t.find_key_readonly(3), Some(2));
        assert_eq!(t.key_of(0), 1);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let (schema, mut t) = sample_table();
        let dup = mk_unit(&schema, 2, 1, 1.0, 1.0, 5);
        assert_eq!(t.insert(dup).unwrap_err(), EnvError::DuplicateKey(2));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (schema, mut t) = sample_table();
        let bad = Tuple::from_values(vec![Value::Int(9)]);
        assert!(matches!(
            t.insert(bad).unwrap_err(),
            EnvError::ArityMismatch { .. }
        ));
        let _ = schema;
    }

    #[test]
    fn columns() {
        let (schema, t) = sample_table();
        let xs = t.column_f64(schema.attr_id("posx").unwrap()).unwrap();
        assert_eq!(xs, vec![0.0, 3.0, 10.0]);
        let players = t.column_i64(schema.attr_id("player").unwrap()).unwrap();
        assert_eq!(players, vec![0, 0, 1]);
    }

    #[test]
    fn remove_where_invalidates_key_index() {
        let (schema, mut t) = sample_table();
        let hp = schema.attr_id("health").unwrap();
        let removed = t.remove_where(|r| r.get_i64(hp).unwrap() < 10);
        assert_eq!(removed, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.find_key(3), None);
        assert_eq!(t.find_key(1), Some(0));
        assert_eq!(t.sorted_keys(), vec![1, 2]);
    }

    #[test]
    fn set_by_key_and_reset_effects() {
        let (schema, mut t) = sample_table();
        let dmg = schema.attr_id("damage").unwrap();
        t.set_by_key(2, dmg, Value::Int(7)).unwrap();
        assert_eq!(t.row(1).get_i64(dmg).unwrap(), 7);
        t.reset_effects();
        assert_eq!(t.row(1).get_i64(dmg).unwrap(), 0);
        assert!(t.set_by_key(77, dmg, Value::Int(1)).is_err());
    }

    #[test]
    fn find_key_readonly_with_stale_index_scans() {
        let (schema, mut t) = sample_table();
        let hp = schema.attr_id("health").unwrap();
        t.remove_where(|r| r.get_i64(hp).unwrap() == 20); // key 1 gone, index dirty
        assert_eq!(t.find_key_readonly(2), Some(0));
        assert_eq!(t.find_key_readonly(1), None);
    }
}
