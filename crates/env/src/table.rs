//! The environment relation `E`: a multiset of unit tuples, stored
//! struct-of-arrays.
//!
//! Physically the table is one paged column per schema attribute, so
//! aggregate scans, index rebuilds and digests stream contiguous typed
//! memory instead of chasing per-row `Vec<Value>` allocations.  Pages live
//! behind a [`PageManager`]: with no page budget everything stays resident;
//! under a budget (`SGL_PAGE_BUDGET`) the table pins its working set at
//! tick start ([`EnvTable::ensure_resident`]) and evicts
//! least-recently-touched pages at tick end
//! ([`EnvTable::enforce_page_budget`]).  Eviction is invisible to readers —
//! values, digests and snapshots are identical whatever the budget.
//!
//! Row-shaped access survives as [`RowRef`], a cheap cursor that reads
//! cells out of the columns; [`crate::tuple::Tuple`] remains the currency
//! for building and inserting units.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::column::{Column, MemCounters};
use crate::error::{EnvError, Result};
use crate::pager::{env_page_budget, PageData, PageManager, RamPageManager, SpillPageManager};
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// A borrowed view of one row, either backed by the columnar table or by a
/// standalone [`Tuple`].  `Copy`, so it can be passed around like the old
/// `&Tuple` references; reads return owned [`Value`]s.
#[derive(Debug, Clone, Copy)]
pub enum RowRef<'a> {
    /// Row `row` of a columnar table.
    Table {
        /// The owning table.
        table: &'a EnvTable,
        /// Row position.
        row: u32,
    },
    /// A standalone tuple (script-local units, tests).
    Tuple(&'a Tuple),
}

impl<'a> RowRef<'a> {
    /// The value of attribute `attr`.
    pub fn get(&self, attr: AttrId) -> Value {
        match self {
            RowRef::Table { table, row } => table.value_at(*row as usize, attr),
            RowRef::Tuple(t) => t.get(attr).clone(),
        }
    }

    /// The value of `attr` coerced to `f64`.
    pub fn get_f64(&self, attr: AttrId) -> Result<f64> {
        self.get(attr).as_f64()
    }

    /// The value of `attr` coerced to `i64`.
    pub fn get_i64(&self, attr: AttrId) -> Result<i64> {
        self.get(attr).as_i64()
    }

    /// The row's key under `schema`.
    pub fn key(&self, schema: &Schema) -> i64 {
        match self {
            RowRef::Table { table, row } => table.key_of(*row as usize),
            RowRef::Tuple(t) => t.key(schema),
        }
    }

    /// Number of attributes in the row.
    pub fn arity(&self) -> usize {
        match self {
            RowRef::Table { table, .. } => table.schema.len(),
            RowRef::Tuple(t) => t.arity(),
        }
    }

    /// Materialise the row as an owned [`Tuple`].
    pub fn to_tuple(&self) -> Tuple {
        match self {
            RowRef::Table { table, row } => {
                let row = *row as usize;
                Tuple::from_values(
                    (0..table.schema.len())
                        .map(|attr| table.value_at(row, attr))
                        .collect(),
                )
            }
            RowRef::Tuple(t) => (*t).clone(),
        }
    }
}

impl<'a> From<&'a Tuple> for RowRef<'a> {
    fn from(t: &'a Tuple) -> RowRef<'a> {
        RowRef::Tuple(t)
    }
}

impl<'a, 'b> From<&'b RowRef<'a>> for RowRef<'b>
where
    'a: 'b,
{
    fn from(r: &'b RowRef<'a>) -> RowRef<'b> {
        *r
    }
}

/// Memory-footprint counters for one table (and, through the shared
/// [`PageManager`], its spill traffic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableMemoryStats {
    /// Rows in the table.
    pub rows: usize,
    /// Pages currently resident across all columns.
    pub resident_pages: usize,
    /// High-water mark of resident pages.
    pub peak_resident_pages: usize,
    /// Pages currently evicted to the page manager.
    pub spilled_pages: usize,
    /// Pages allocated (created or faulted in) since table creation.
    pub page_allocs: u64,
    /// Pages evicted by [`EnvTable::enforce_page_budget`] since creation.
    pub evictions: u64,
    /// Pages read back by the page manager (shared across clones).
    pub spill_reads: u64,
    /// Pages written out by the page manager (shared across clones).
    pub spill_writes: u64,
    /// Heap bytes held by resident pages.
    pub resident_bytes: usize,
    /// `resident_bytes / rows` (0 for an empty table).
    pub bytes_per_row: f64,
    /// Label of the page manager backing the table (`"ram"` / `"spill"`).
    pub pager: &'static str,
}

impl Default for TableMemoryStats {
    fn default() -> TableMemoryStats {
        TableMemoryStats {
            rows: 0,
            resident_pages: 0,
            peak_resident_pages: 0,
            spilled_pages: 0,
            page_allocs: 0,
            evictions: 0,
            spill_reads: 0,
            spill_writes: 0,
            resident_bytes: 0,
            bytes_per_row: 0.0,
            pager: "ram",
        }
    }
}

/// The environment relation.  Holds every unit/object in the game world.
///
/// The table keeps a key → row-index map so executors can resolve
/// `WHERE e.key = target_key` probes in O(1); the map is rebuilt lazily after
/// structural changes (insert/remove).
#[derive(Debug)]
pub struct EnvTable {
    schema: Arc<Schema>,
    len: usize,
    columns: Vec<Column>,
    pager: Arc<dyn PageManager>,
    key_index: FxHashMap<i64, usize>,
    key_index_dirty: bool,
    counters: MemCounters,
    evictions: u64,
    peak_resident_pages: usize,
}

impl EnvTable {
    /// Create an empty environment with the given schema.
    ///
    /// The page manager is chosen from the `SGL_PAGE_BUDGET` environment
    /// variable: set to a positive page count it backs the table with a
    /// [`SpillPageManager`] under that budget; unset, every page stays
    /// resident in a [`RamPageManager`].
    pub fn new(schema: Arc<Schema>) -> EnvTable {
        let pager: Arc<dyn PageManager> = match env_page_budget() {
            Some(budget) => match SpillPageManager::new(budget) {
                Ok(spill) => Arc::new(spill),
                // No spill file (read-only temp dir, exhausted fds): keep
                // the budget but evict to RAM — same protocol, no disk.
                // Documented degradation, not a panic: the budget is a
                // memory-shape knob, never a correctness one.
                Err(e) => {
                    eprintln!("warning: {e}; keeping evicted pages in RAM");
                    Arc::new(RamPageManager::with_budget(budget))
                }
            },
            None => Arc::new(RamPageManager::new()),
        };
        EnvTable::with_pager(schema, pager)
    }

    /// Create an empty environment backed by an explicit page manager.
    pub fn with_pager(schema: Arc<Schema>, pager: Arc<dyn PageManager>) -> EnvTable {
        let columns = (0..schema.len()).map(|_| Column::new()).collect();
        EnvTable {
            schema,
            len: 0,
            columns,
            pager,
            key_index: FxHashMap::default(),
            key_index_dirty: false,
            counters: MemCounters::default(),
            evictions: 0,
            peak_resident_pages: 0,
        }
    }

    /// The schema of the table.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The page manager backing the table.
    pub fn pager(&self) -> &Arc<dyn PageManager> {
        &self.pager
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no units.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of `attr` for the row at `idx`.
    ///
    /// Panics if the backing page cannot be read (a corrupted spill file is
    /// unrecoverable — it is detected by checksum and reported here).  On
    /// the tick path this read is infallible by construction: the engine
    /// pins the whole working set with [`EnvTable::ensure_resident`] (which
    /// *does* surface IO failures as typed errors) before any phase reads,
    /// so resident-page access is plain vector indexing.
    pub fn value_at(&self, idx: usize, attr: AttrId) -> Value {
        assert!(idx < self.len, "row {idx} out of bounds (len {})", self.len);
        self.columns[attr]
            .value(idx, &*self.pager)
            .expect("page manager I/O failed") // PANIC-AUDIT: infallible `Value` API; tick reads are resident (see above)
    }

    /// Insert a unit, checking arity. Keys are expected to be unique; a
    /// duplicate key is an error so that effect application stays well defined.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.len() {
            return Err(EnvError::ArityMismatch {
                expected: self.schema.len(),
                found: tuple.arity(),
            });
        }
        let key = tuple.key(&self.schema);
        self.ensure_key_index();
        if self.key_index.contains_key(&key) {
            return Err(EnvError::DuplicateKey(key));
        }
        self.key_index.insert(key, self.len);
        for (attr, value) in tuple.into_values().into_iter().enumerate() {
            self.columns[attr].push(value, &*self.pager, &mut self.counters)?;
        }
        self.len += 1;
        Ok(())
    }

    /// A [`RowRef`] cursor for the row at `idx`.
    pub fn row(&self, idx: usize) -> RowRef<'_> {
        assert!(idx < self.len, "row {idx} out of bounds (len {})", self.len);
        RowRef::Table {
            table: self,
            row: idx as u32,
        }
    }

    /// Overwrite one attribute of one row (the replacement for the old
    /// `row_mut().set()` pattern).  Callers must not change keys through
    /// this without rebuilding the key index.  Fails only when a spilled
    /// page cannot be faulted back in for the write.
    pub fn set_attr(&mut self, idx: usize, attr: AttrId, value: Value) -> Result<()> {
        assert!(idx < self.len, "row {idx} out of bounds (len {})", self.len);
        self.columns[attr].set(idx, value, &*self.pager, &mut self.counters)
    }

    /// Replace a whole column (bulk write-back path for postprocess rules).
    /// `values.len()` must equal [`EnvTable::len`].
    pub fn set_column(&mut self, attr: AttrId, values: Vec<Value>) -> Result<()> {
        if values.len() != self.len {
            return Err(EnvError::ArityMismatch {
                expected: self.len,
                found: values.len(),
            });
        }
        self.columns[attr].set_values(values, &*self.pager, &mut self.counters);
        Ok(())
    }

    /// Iterate over `(row_index, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, RowRef<'_>)> {
        (0..self.len).map(move |i| (i, self.row(i)))
    }

    /// Visit every page of one column in row order (digest/snapshot paths:
    /// spilled pages are loaded once per page, not once per cell).
    pub fn for_each_column_page<F: FnMut(&PageData)>(&self, attr: AttrId, f: F) -> Result<()> {
        self.columns[attr].for_each_page(&*self.pager, f)
    }

    /// The key of the row at `idx`.
    pub fn key_of(&self, idx: usize) -> i64 {
        self.value_at(idx, self.schema.key_attr())
            .as_i64()
            .expect("key attribute must be integer valued") // PANIC-AUDIT: schema invariant (keys are Int by construction)
    }

    fn ensure_key_index(&mut self) {
        if self.key_index_dirty {
            self.key_index.clear();
            for i in 0..self.len {
                self.key_index.insert(self.key_of(i), i);
            }
            self.key_index_dirty = false;
        }
    }

    /// Find the row index holding `key`.
    pub fn find_key(&mut self, key: i64) -> Option<usize> {
        self.ensure_key_index();
        self.key_index.get(&key).copied()
    }

    /// Find the row index holding `key` without requiring `&mut self`.
    /// Falls back to a linear scan if the index is stale.
    pub fn find_key_readonly(&self, key: i64) -> Option<usize> {
        if !self.key_index_dirty {
            return self.key_index.get(&key).copied();
        }
        (0..self.len).find(|&i| self.key_of(i) == key)
    }

    /// Read a whole column as `f64` (used to build per-tick indexes).
    pub fn column_f64(&self, attr: AttrId) -> Result<Vec<f64>> {
        self.columns[attr].as_f64_vec(&*self.pager)
    }

    /// Read a whole column as `i64`.
    pub fn column_i64(&self, attr: AttrId) -> Result<Vec<i64>> {
        self.columns[attr].as_i64_vec(&*self.pager)
    }

    /// All values of a column, in row order.
    pub fn column_values(&self, attr: AttrId) -> Result<Vec<Value>> {
        self.columns[attr].values(&*self.pager)
    }

    /// Reset every effect attribute of every unit to its default.
    /// This is the per-tick initialisation step of the processing model
    /// (§4.3) — a column fill, not a per-row walk.
    pub fn reset_effects(&mut self) {
        let schema = Arc::clone(&self.schema);
        for attr in schema.effect_attrs() {
            let default = &schema.attr(attr).default;
            self.columns[attr].fill(default, &*self.pager, &mut self.counters);
        }
    }

    /// Remove all rows matching the predicate. Returns the number removed,
    /// or a typed error when a spilled page cannot be read back for the
    /// compaction pass.
    pub fn remove_where<F: FnMut(RowRef<'_>) -> bool>(&mut self, mut pred: F) -> Result<usize> {
        let keep: Vec<bool> = (0..self.len).map(|i| !pred(self.row(i))).collect();
        let kept = keep.iter().filter(|&&k| k).count();
        let removed = self.len - kept;
        if removed == 0 {
            return Ok(0);
        }
        for attr in 0..self.columns.len() {
            let values = self.columns[attr].values(&*self.pager)?;
            let filtered: Vec<Value> = values
                .into_iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(v, _)| v)
                .collect();
            self.columns[attr].set_values(filtered, &*self.pager, &mut self.counters);
        }
        self.len = kept;
        self.key_index_dirty = true;
        Ok(removed)
    }

    /// Update a single unit's attribute by key.
    pub fn set_by_key(&mut self, key: i64, attr: AttrId, value: Value) -> Result<()> {
        if self.schema.attr(attr).kind == crate::schema::CombineKind::Const
            && attr == self.schema.key_attr()
        {
            return Err(EnvError::InvalidKey(
                "cannot overwrite the key attribute".into(),
            ));
        }
        let idx = self.find_key(key).ok_or(EnvError::UnknownKey(key))?;
        self.set_attr(idx, attr, value)
    }

    /// Build a table directly from per-attribute value columns (the v2
    /// snapshot decode path).  Validates column count, uniform column
    /// length, integer keys and key uniqueness.
    pub(crate) fn from_column_values(
        schema: Arc<Schema>,
        columns: Vec<Vec<Value>>,
    ) -> Result<EnvTable> {
        if columns.len() != schema.len() {
            return Err(EnvError::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Vec::len);
        if let Some(bad) = columns.iter().find(|c| c.len() != rows) {
            return Err(EnvError::ArityMismatch {
                expected: rows,
                found: bad.len(),
            });
        }
        let mut table = EnvTable::new(schema);
        let key_attr = table.schema.key_attr();
        for (i, value) in columns[key_attr].iter().enumerate() {
            let key = value
                .as_i64()
                .map_err(|_| EnvError::InvalidKey("key attribute must be integer valued".into()))?;
            if table.key_index.insert(key, i).is_some() {
                return Err(EnvError::DuplicateKey(key));
            }
        }
        for (attr, values) in columns.into_iter().enumerate() {
            table.columns[attr].set_values(values, &*table.pager, &mut table.counters);
        }
        table.len = rows;
        Ok(table)
    }

    /// Collect the multiset of keys (sorted) — useful in tests.
    pub fn sorted_keys(&self) -> Vec<i64> {
        let mut keys: Vec<i64> = (0..self.len).map(|i| self.key_of(i)).collect();
        keys.sort_unstable();
        keys
    }

    /// The page budget of the backing manager (`None` = unlimited).
    pub fn page_budget(&self) -> Option<usize> {
        self.pager.page_budget()
    }

    /// Pages allocated (created or faulted in) since table creation — the
    /// O(1) counter behind [`TableMemoryStats::page_allocs`], cheap enough
    /// to sample around every phase of a tick.
    pub fn page_allocs(&self) -> u64 {
        self.counters.page_allocs
    }

    /// Fault every page in (tick-start pinning: after this, all in-tick
    /// reads are straight vector indexing).  This is the fallible half of
    /// the residency protocol: once it returns `Ok`, the in-tick read path
    /// ([`value_at`](Self::value_at) and friends) cannot fault.
    pub fn ensure_resident(&mut self) -> Result<()> {
        for col in &mut self.columns {
            col.ensure_resident(&*self.pager, &mut self.counters)?;
        }
        self.note_peak();
        Ok(())
    }

    /// Evict least-recently-touched pages until the resident count is back
    /// under the page budget (tick-end unpinning).  Eviction order is a
    /// deterministic function of the mutation history — `(touch, column,
    /// page)` — but correctness never depends on it: evicted pages read
    /// back bit-identically.  Returns the number of pages evicted.
    pub fn enforce_page_budget(&mut self) -> Result<usize> {
        let Some(budget) = self.pager.page_budget() else {
            return Ok(0);
        };
        self.note_peak();
        let resident: usize = self.columns.iter().map(|c| c.resident_pages()).sum();
        if resident <= budget {
            return Ok(0);
        }
        let mut candidates: Vec<(u64, usize, usize)> = Vec::with_capacity(resident);
        for (ci, col) in self.columns.iter().enumerate() {
            for (pi, slot) in col.slots.iter().enumerate() {
                if let crate::column::Slot::Resident { touch, .. } = slot {
                    candidates.push((*touch, ci, pi));
                }
            }
        }
        candidates.sort_unstable();
        let to_evict = resident - budget;
        for &(_, ci, pi) in candidates.iter().take(to_evict) {
            self.columns[ci].evict(pi, &*self.pager)?;
        }
        self.evictions += to_evict as u64;
        Ok(to_evict)
    }

    fn note_peak(&mut self) {
        let resident: usize = self.columns.iter().map(|c| c.resident_pages()).sum();
        self.peak_resident_pages = self.peak_resident_pages.max(resident);
    }

    /// Memory-footprint counters for this table.
    pub fn memory_stats(&self) -> TableMemoryStats {
        let resident_pages: usize = self.columns.iter().map(|c| c.resident_pages()).sum();
        let spilled_pages: usize = self.columns.iter().map(|c| c.spilled_pages()).sum();
        let resident_bytes: usize = self.columns.iter().map(|c| c.resident_bytes()).sum();
        let pager_stats = self.pager.stats();
        TableMemoryStats {
            rows: self.len,
            resident_pages,
            peak_resident_pages: self.peak_resident_pages.max(resident_pages),
            spilled_pages,
            page_allocs: self.counters.page_allocs,
            evictions: self.evictions,
            spill_reads: pager_stats.spill_reads,
            spill_writes: pager_stats.spill_writes,
            resident_bytes,
            bytes_per_row: if self.len == 0 {
                0.0
            } else {
                resident_bytes as f64 / self.len as f64
            },
            pager: self.pager.label(),
        }
    }
}

impl Clone for EnvTable {
    /// Deep copy: every page is materialised resident in the clone (the
    /// source keeps its own spilled pages and tokens); the page manager is
    /// shared.
    fn clone(&self) -> EnvTable {
        let mut counters = MemCounters::default();
        let columns = self
            .columns
            .iter()
            .map(|col| {
                let values = col.values(&*self.pager).expect("page manager I/O failed"); // PANIC-AUDIT: `Clone` cannot fail; clone sources are resident or spill-readable
                let mut fresh = Column::new();
                fresh.set_values(values, &*self.pager, &mut counters);
                fresh
            })
            .collect();
        EnvTable {
            schema: Arc::clone(&self.schema),
            len: self.len,
            columns,
            pager: Arc::clone(&self.pager),
            key_index: self.key_index.clone(),
            key_index_dirty: self.key_index_dirty,
            counters,
            evictions: 0,
            peak_resident_pages: 0,
        }
    }
}

impl Drop for EnvTable {
    fn drop(&mut self) {
        for col in &self.columns {
            col.free_spilled(&*self.pager);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PAGE_ROWS;
    use crate::schema::paper_schema;
    use crate::tuple::TupleBuilder;

    fn mk_unit(schema: &Schema, key: i64, player: i64, x: f64, y: f64, health: i64) -> Tuple {
        TupleBuilder::new(schema)
            .set("key", key)
            .unwrap()
            .set("player", player)
            .unwrap()
            .set("posx", x)
            .unwrap()
            .set("posy", y)
            .unwrap()
            .set("health", health)
            .unwrap()
            .build()
    }

    fn sample_table() -> (Arc<Schema>, EnvTable) {
        let schema = paper_schema().into_shared();
        let mut t = EnvTable::new(Arc::clone(&schema));
        t.insert(mk_unit(&schema, 1, 0, 0.0, 0.0, 20)).unwrap();
        t.insert(mk_unit(&schema, 2, 0, 3.0, 4.0, 15)).unwrap();
        t.insert(mk_unit(&schema, 3, 1, 10.0, 10.0, 8)).unwrap();
        (schema, t)
    }

    #[test]
    fn insert_and_lookup() {
        let (_schema, mut t) = sample_table();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.find_key(2), Some(1));
        assert_eq!(t.find_key(99), None);
        assert_eq!(t.find_key_readonly(3), Some(2));
        assert_eq!(t.key_of(0), 1);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let (schema, mut t) = sample_table();
        let dup = mk_unit(&schema, 2, 1, 1.0, 1.0, 5);
        assert_eq!(t.insert(dup).unwrap_err(), EnvError::DuplicateKey(2));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (schema, mut t) = sample_table();
        let bad = Tuple::from_values(vec![Value::Int(9)]);
        assert!(matches!(
            t.insert(bad).unwrap_err(),
            EnvError::ArityMismatch { .. }
        ));
        let _ = schema;
    }

    #[test]
    fn columns() {
        let (schema, t) = sample_table();
        let xs = t.column_f64(schema.attr_id("posx").unwrap()).unwrap();
        assert_eq!(xs, vec![0.0, 3.0, 10.0]);
        let players = t.column_i64(schema.attr_id("player").unwrap()).unwrap();
        assert_eq!(players, vec![0, 0, 1]);
    }

    #[test]
    fn remove_where_invalidates_key_index() {
        let (schema, mut t) = sample_table();
        let hp = schema.attr_id("health").unwrap();
        let removed = t.remove_where(|r| r.get_i64(hp).unwrap() < 10).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.find_key(3), None);
        assert_eq!(t.find_key(1), Some(0));
        assert_eq!(t.sorted_keys(), vec![1, 2]);
    }

    #[test]
    fn set_by_key_and_reset_effects() {
        let (schema, mut t) = sample_table();
        let dmg = schema.attr_id("damage").unwrap();
        t.set_by_key(2, dmg, Value::Int(7)).unwrap();
        assert_eq!(t.row(1).get_i64(dmg).unwrap(), 7);
        t.reset_effects();
        assert_eq!(t.row(1).get_i64(dmg).unwrap(), 0);
        assert!(t.set_by_key(77, dmg, Value::Int(1)).is_err());
    }

    #[test]
    fn find_key_readonly_with_stale_index_scans() {
        let (schema, mut t) = sample_table();
        let hp = schema.attr_id("health").unwrap();
        t.remove_where(|r| r.get_i64(hp).unwrap() == 20).unwrap(); // key 1 gone, index dirty
        assert_eq!(t.find_key_readonly(2), Some(0));
        assert_eq!(t.find_key_readonly(1), None);
    }

    #[test]
    fn row_refs_read_like_tuples() {
        let (schema, t) = sample_table();
        let posx = schema.attr_id("posx").unwrap();
        let row = t.row(1);
        assert_eq!(row.get(posx), Value::Float(3.0));
        assert_eq!(row.get_f64(posx).unwrap(), 3.0);
        assert_eq!(row.key(&schema), 2);
        assert_eq!(row.arity(), schema.len());
        let tup = row.to_tuple();
        assert_eq!(tup.get(posx), &Value::Float(3.0));
        let via_tuple: RowRef<'_> = (&tup).into();
        assert_eq!(via_tuple.get(posx), Value::Float(3.0));
        assert_eq!(via_tuple.key(&schema), 2);
        let reborrow: RowRef<'_> = (&row).into();
        assert_eq!(reborrow.get(posx), Value::Float(3.0));
    }

    #[test]
    fn set_column_bulk_write() {
        let (schema, mut t) = sample_table();
        let hp = schema.attr_id("health").unwrap();
        t.set_column(hp, vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap();
        assert_eq!(t.column_i64(hp).unwrap(), vec![1, 2, 3]);
        assert!(t.set_column(hp, vec![Value::Int(1)]).is_err());
    }

    fn big_table(schema: &Arc<Schema>, pager: Arc<dyn PageManager>, rows: i64) -> EnvTable {
        let mut t = EnvTable::with_pager(Arc::clone(schema), pager);
        for k in 0..rows {
            t.insert(mk_unit(schema, k, k % 2, k as f64, -k as f64, 10 + k))
                .unwrap();
        }
        t
    }

    #[test]
    fn budget_enforcement_evicts_and_reads_stay_identical() {
        let schema = paper_schema().into_shared();
        let rows = PAGE_ROWS as i64 * 2 + 17;
        let unbounded = big_table(&schema, Arc::new(RamPageManager::new()), rows);
        let mut budgeted = big_table(&schema, Arc::new(RamPageManager::with_budget(4)), rows);

        let evicted = budgeted.enforce_page_budget().unwrap();
        assert!(evicted > 0, "3 pages × 11 columns must exceed budget 4");
        let stats = budgeted.memory_stats();
        assert_eq!(stats.resident_pages, 4);
        assert!(stats.spilled_pages > 0);
        assert!(stats.peak_resident_pages >= stats.resident_pages + stats.spilled_pages);

        // Cold reads on the spilled table must match the resident table.
        for attr in 0..schema.len() {
            assert_eq!(
                budgeted.column_values(attr).unwrap(),
                unbounded.column_values(attr).unwrap(),
                "attr {attr}"
            );
        }
        assert_eq!(budgeted.sorted_keys(), unbounded.sorted_keys());

        // Pinning faults everything back in.
        budgeted.ensure_resident().unwrap();
        assert_eq!(budgeted.memory_stats().spilled_pages, 0);
    }

    #[test]
    fn clone_is_deep_and_fully_resident() {
        let schema = paper_schema().into_shared();
        let rows = PAGE_ROWS as i64 + 5;
        let mut t = big_table(&schema, Arc::new(RamPageManager::with_budget(2)), rows);
        t.enforce_page_budget().unwrap();
        let hp = schema.attr_id("health").unwrap();

        let mut copy = t.clone();
        assert_eq!(copy.memory_stats().spilled_pages, 0);
        copy.set_attr(0, hp, Value::Int(-1)).unwrap();
        assert_eq!(copy.row(0).get_i64(hp).unwrap(), -1);
        assert_eq!(t.row(0).get_i64(hp).unwrap(), 10, "source untouched");
        assert_eq!(
            t.column_i64(hp).unwrap()[1..],
            copy.column_i64(hp).unwrap()[1..]
        );
    }

    #[test]
    fn eviction_respects_lru_touch_order() {
        let schema = paper_schema().into_shared();
        let rows = PAGE_ROWS as i64 * 2;
        let mut t = big_table(&schema, Arc::new(RamPageManager::with_budget(21)), rows);
        let hp = schema.attr_id("health").unwrap();
        // 11 columns × 2 pages = 22 resident pages; touch one page last so
        // it survives the single eviction.
        t.set_attr(0, hp, Value::Int(99)).unwrap();
        assert_eq!(t.enforce_page_budget().unwrap(), 1);
        // The health column's page 0 was touched most recently of all the
        // earliest-touched pages; the evicted page must not be it.
        assert_eq!(t.row(0).get_i64(hp).unwrap(), 99);
        let stats = t.memory_stats();
        assert_eq!(stats.resident_pages, 21);
        assert_eq!(stats.spilled_pages, 1);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn memory_stats_shape() {
        let (_, t) = sample_table();
        let stats = t.memory_stats();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.pager, "ram");
        assert_eq!(stats.spilled_pages, 0);
        assert!(stats.resident_pages >= 1);
        assert!(stats.resident_bytes > 0);
        assert!(stats.bytes_per_row > 0.0);
        assert!(stats.page_allocs >= stats.resident_pages as u64);
        assert_eq!(stats.evictions, 0);
        assert!(
            EnvTable::new(paper_schema().into_shared())
                .memory_stats()
                .bytes_per_row
                .abs()
                < f64::EPSILON
        );
    }

    #[test]
    fn spill_pager_tables_round_trip() {
        let schema = paper_schema().into_shared();
        let pager = Arc::new(SpillPageManager::new(3).unwrap());
        let rows = PAGE_ROWS as i64 * 2 + 1;
        let mut t = big_table(&schema, pager, rows);
        let baseline: Vec<Vec<Value>> = (0..schema.len())
            .map(|a| t.column_values(a).unwrap())
            .collect();
        assert!(t.enforce_page_budget().unwrap() > 0);
        let stats = t.memory_stats();
        assert_eq!(stats.pager, "spill");
        assert!(stats.spill_writes > 0);
        for (attr, expected) in baseline.iter().enumerate() {
            assert_eq!(&t.column_values(attr).unwrap(), expected, "attr {attr}");
        }
        t.ensure_resident().unwrap();
        for (attr, expected) in baseline.iter().enumerate() {
            assert_eq!(&t.column_values(attr).unwrap(), expected, "attr {attr}");
        }
    }
}
