//! Binary snapshots of the environment relation.
//!
//! The data-driven architecture of §2 keeps "character data" in files outside
//! the engine: scenarios are authored, saved, shipped and modded as data.
//! This module provides the corresponding persistence substrate for the
//! environment relation `E`: a compact, deterministic binary encoding of a
//! table ([`snapshot`]) and its inverse ([`restore`]), plus a schema
//! fingerprint so a snapshot written against one schema is never silently
//! decoded against another.
//!
//! Version 2 of the format is columnar, matching the struct-of-arrays table:
//! after the header, each attribute is written as one column — a one-byte
//! column tag and a packed payload (raw little-endian `i64`/`f64`/`bool`
//! arrays for typed columns, per-value tagged encoding for mixed ones).
//! Column typedness is decided from the column's *content* at snapshot time,
//! never from its in-memory page representation, so the bytes are a pure
//! function of the logical table: snapshots are identical whatever the page
//! budget, eviction history or mutation order.  Version 1 (row-major) is
//! still decoded for old saves; [`snapshot_v1`] keeps a writer around for
//! compatibility tests.
//!
//! The format stays little-endian, length-prefixed and guarded by a trailing
//! FNV-1a checksum so that saves are reproducible byte for byte — the replay
//! harness in `sgl-engine` relies on "same seed + same snapshot ⇒ same game"
//! for its determinism checks.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{EnvError, Result};
use crate::pager::PageData;
use crate::schema::Schema;
use crate::table::EnvTable;
use crate::tuple::Tuple;
use crate::value::Value;

/// Magic number at the start of every snapshot (`"SGL\x01"`).
const MAGIC: u32 = 0x53474C01;
/// Current format version (columnar).
const VERSION: u16 = 2;
/// The legacy row-major version, still accepted by [`restore`].
const VERSION_V1: u16 = 1;

const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;

/// Column tags of the v2 format.  The typed tags deliberately reuse the
/// value-tag numbering; `COL_MIXED` marks a per-value tagged payload.
const COL_I64: u8 = 1;
const COL_F64: u8 = 2;
const COL_BOOL: u8 = 3;
const COL_MIXED: u8 = 4;

/// A stable fingerprint of a schema: attribute names, order and combination
/// kinds (defaults are not part of the identity — they only matter when
/// spawning new units).
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut hash = crate::checkpoint::Fnv64::new();
    for attr in schema.attrs() {
        hash.write(attr.name.as_bytes());
        hash.write(&[match attr.kind {
            crate::schema::CombineKind::Const => 0u8,
            crate::schema::CombineKind::Sum => 1,
            crate::schema::CombineKind::Max => 2,
            crate::schema::CombineKind::Min => 3,
        }]);
    }
    hash.write(&(schema.len() as u64).to_le_bytes());
    hash.finish()
}

fn value_tag(value: &Value) -> u8 {
    match value {
        Value::Int(_) => TAG_INT,
        Value::Float(_) => TAG_FLOAT,
        Value::Bool(_) => TAG_BOOL,
        Value::Str(_) => TAG_STR,
    }
}

/// Content-driven column tag: typed when every value of the column shares
/// one variant, mixed otherwise.  An empty column falls back to the
/// schema default's variant so the choice stays deterministic.
fn column_tag(table: &EnvTable, attr: usize) -> Result<u8> {
    let mut tag: Option<u8> = None;
    let mut mixed = false;
    table.for_each_column_page(attr, |page| {
        let mut merge = |t: u8| match tag {
            None => tag = Some(t),
            Some(seen) if seen != t => mixed = true,
            Some(_) => {}
        };
        match page {
            PageData::F64(_) => merge(TAG_FLOAT),
            PageData::I64(_) => merge(TAG_INT),
            PageData::Bool(_) => merge(TAG_BOOL),
            PageData::Mixed(values) => {
                for v in values {
                    merge(value_tag(v));
                }
            }
        }
    })?;
    if mixed {
        return Ok(COL_MIXED);
    }
    Ok(tag.unwrap_or_else(|| {
        if table.is_empty() {
            value_tag(&table.schema().attr(attr).default)
        } else {
            COL_MIXED
        }
    }))
}

/// Serialize a table into a self-describing columnar (v2) snapshot.
/// Fails only when a spilled page cannot be read back ([`EnvError::Pager`])
/// or a column's pages contradict its just-computed tag
/// ([`EnvError::Snapshot`] — an internal invariant, but a typed error beats
/// aborting a host that merely asked for a checkpoint).
pub fn snapshot(table: &EnvTable) -> Result<Bytes> {
    let schema = table.schema();
    let mut buf = BytesMut::with_capacity(64 + table.len() * schema.len() * 9);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(schema_fingerprint(schema));
    buf.put_u32_le(schema.len() as u32);
    buf.put_u64_le(table.len() as u64);
    for attr in 0..schema.len() {
        let tag = column_tag(table, attr)?;
        buf.put_u8(tag);
        // The per-page closure is infallible by signature; collect the
        // first tag/content mismatch and surface it after the traversal.
        let mut mismatch: Option<&'static str> = None;
        table.for_each_column_page(attr, |page| {
            if mismatch.is_none() {
                if let Err(msg) = put_column_page(&mut buf, tag, page) {
                    mismatch = Some(msg);
                }
            }
        })?;
        if let Some(msg) = mismatch {
            return Err(EnvError::Snapshot(format!("column {attr}: {msg}")));
        }
    }
    // Trailing checksum over everything written so far.
    let checksum = fnv(&buf);
    buf.put_u64_le(checksum);
    Ok(buf.freeze())
}

fn put_column_page(
    buf: &mut BytesMut,
    tag: u8,
    page: &PageData,
) -> std::result::Result<(), &'static str> {
    match (tag, page) {
        (COL_I64, PageData::I64(v)) => {
            for x in v {
                buf.put_i64_le(*x);
            }
        }
        (COL_F64, PageData::F64(v)) => {
            for x in v {
                buf.put_f64_le(*x);
            }
        }
        (COL_BOOL, PageData::Bool(v)) => {
            for x in v {
                buf.put_u8(*x as u8);
            }
        }
        // A typed column may still live in mixed pages (e.g. after a
        // promotion whose mismatched value was later overwritten and the
        // column rebuilt): the tag is content-driven, so re-pack the values.
        (COL_I64, PageData::Mixed(v)) => {
            for val in v {
                match val {
                    Value::Int(x) => buf.put_i64_le(*x),
                    _ => return Err("column tagged i64 holds a non-int value"),
                }
            }
        }
        (COL_F64, PageData::Mixed(v)) => {
            for val in v {
                match val {
                    Value::Float(x) => buf.put_f64_le(*x),
                    _ => return Err("column tagged f64 holds a non-float value"),
                }
            }
        }
        (COL_BOOL, PageData::Mixed(v)) => {
            for val in v {
                match val {
                    Value::Bool(x) => buf.put_u8(*x as u8),
                    _ => return Err("column tagged bool holds a non-bool value"),
                }
            }
        }
        (COL_MIXED, page) => {
            for off in 0..page.len() {
                put_value(buf, &page.value(off));
            }
        }
        _ => return Err("column tag contradicts page contents"),
    }
    Ok(())
}

/// Serialize a table in the legacy row-major v1 format.  Kept so the
/// read-compatibility path has a writer to test against; new code always
/// uses [`snapshot`].
pub fn snapshot_v1(table: &EnvTable) -> Bytes {
    let schema = table.schema();
    let mut buf = BytesMut::with_capacity(64 + table.len() * schema.len() * 9);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION_V1);
    buf.put_u64_le(schema_fingerprint(schema));
    buf.put_u32_le(schema.len() as u32);
    buf.put_u64_le(table.len() as u64);
    for (_, row) in table.iter() {
        for attr in 0..schema.len() {
            put_value(&mut buf, &row.get(attr));
        }
    }
    let checksum = fnv(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decode a snapshot previously produced by [`snapshot`] (v2) or the legacy
/// v1 writer against the same schema.  Fails when the data is truncated,
/// corrupted, or was written against a schema with a different fingerprint.
pub fn restore(data: &[u8], schema: &std::sync::Arc<Schema>) -> Result<EnvTable> {
    if data.len() < 4 + 2 + 8 + 4 + 8 + 8 {
        return Err(EnvError::Snapshot("snapshot is too short".into()));
    }
    let (payload, checksum_bytes) = data.split_at(data.len() - 8);
    let stored_checksum = u64::from_le_bytes(
        checksum_bytes
            .try_into()
            .map_err(|_| EnvError::Snapshot("truncated checksum".into()))?,
    );
    if fnv(payload) != stored_checksum {
        return Err(EnvError::Snapshot(
            "checksum mismatch (corrupted snapshot)".into(),
        ));
    }

    let mut cursor = payload;
    if cursor.get_u32_le() != MAGIC {
        return Err(EnvError::Snapshot("bad magic number".into()));
    }
    let version = cursor.get_u16_le();
    if version != VERSION && version != VERSION_V1 {
        return Err(EnvError::Snapshot(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let fingerprint = cursor.get_u64_le();
    if fingerprint != schema_fingerprint(schema) {
        return Err(EnvError::Snapshot(
            "snapshot was written against a different schema".into(),
        ));
    }
    let arity = cursor.get_u32_le() as usize;
    if arity != schema.len() {
        return Err(EnvError::Snapshot(format!(
            "snapshot arity {arity} does not match schema arity {}",
            schema.len()
        )));
    }
    let rows = cursor.get_u64_le();
    // The smallest possible encoding is one byte per cell (v2 bool column)
    // plus per-column tags; a row count the remaining payload cannot
    // possibly hold is rejected up front, before the decode loop reserves
    // any per-row memory.  The checksum catches random corruption, but a
    // crafted blob with a recomputed checksum must fail through typed
    // bounds checks too.
    let min_bytes = rows.checked_mul(arity as u64);
    match min_bytes {
        Some(need) if need <= cursor.remaining() as u64 => {}
        _ => {
            return Err(EnvError::Snapshot(format!(
                "snapshot claims {rows} rows but only {} payload bytes remain",
                cursor.remaining()
            )))
        }
    }
    let rows = rows as usize;

    if version == VERSION_V1 {
        let mut table = EnvTable::new(std::sync::Arc::clone(schema));
        for _ in 0..rows {
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(get_value(&mut cursor)?);
            }
            let tuple = Tuple::new(schema, values)?;
            table.insert(tuple)?;
        }
        if cursor.has_remaining() {
            return Err(EnvError::Snapshot(format!(
                "{} trailing bytes after the last row",
                cursor.remaining()
            )));
        }
        return Ok(table);
    }

    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(arity);
    for _ in 0..arity {
        columns.push(get_column(&mut cursor, rows)?);
    }
    if cursor.has_remaining() {
        return Err(EnvError::Snapshot(format!(
            "{} trailing bytes after the last column",
            cursor.remaining()
        )));
    }
    EnvTable::from_column_values(std::sync::Arc::clone(schema), columns)
}

fn need(cursor: &&[u8], n: usize) -> Result<()> {
    if cursor.remaining() < n {
        Err(EnvError::Snapshot("unexpected end of snapshot".into()))
    } else {
        Ok(())
    }
}

fn get_column(cursor: &mut &[u8], rows: usize) -> Result<Vec<Value>> {
    need(cursor, 1)?;
    let tag = cursor.get_u8();
    let mut values = Vec::with_capacity(rows);
    match tag {
        COL_I64 => {
            need(cursor, rows * 8)?;
            for _ in 0..rows {
                values.push(Value::Int(cursor.get_i64_le()));
            }
        }
        COL_F64 => {
            need(cursor, rows * 8)?;
            for _ in 0..rows {
                values.push(Value::Float(cursor.get_f64_le()));
            }
        }
        COL_BOOL => {
            need(cursor, rows)?;
            for _ in 0..rows {
                values.push(Value::Bool(cursor.get_u8() != 0));
            }
        }
        COL_MIXED => {
            for _ in 0..rows {
                values.push(get_value(cursor)?);
            }
        }
        other => return Err(EnvError::Snapshot(format!("unknown column tag {other}"))),
    }
    Ok(values)
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Int(v) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*v);
        }
        Value::Float(v) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*v);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            let bytes = s.as_bytes();
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
    }
}

fn get_value(cursor: &mut &[u8]) -> Result<Value> {
    need(cursor, 1)?;
    let tag = cursor.get_u8();
    match tag {
        TAG_INT => {
            need(cursor, 8)?;
            Ok(Value::Int(cursor.get_i64_le()))
        }
        TAG_FLOAT => {
            need(cursor, 8)?;
            Ok(Value::Float(cursor.get_f64_le()))
        }
        TAG_BOOL => {
            need(cursor, 1)?;
            Ok(Value::Bool(cursor.get_u8() != 0))
        }
        TAG_STR => {
            need(cursor, 4)?;
            let len = cursor.get_u32_le() as usize;
            need(cursor, len)?;
            let bytes = cursor[..len].to_vec();
            cursor.advance(len);
            let s = String::from_utf8(bytes)
                .map_err(|_| EnvError::Snapshot("invalid UTF-8 in string value".into()))?;
            Ok(Value::str(s))
        }
        other => Err(EnvError::Snapshot(format!("unknown value tag {other}"))),
    }
}

use crate::checkpoint::fnv64 as fnv;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;
    use crate::tuple::TupleBuilder;
    use crate::value::Value;
    use std::sync::Arc;

    fn sample_table(units: usize) -> EnvTable {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for key in 0..units as i64 {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", key % 2)
                .unwrap()
                .set("posx", key as f64 * 1.5)
                .unwrap()
                .set("posy", 100.0 - key as f64)
                .unwrap()
                .set("health", 30 - key)
                .unwrap()
                .set("cooldown", key % 3)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        table
    }

    fn assert_tables_equal(a: &EnvTable, b: &EnvTable) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.sorted_keys(), b.sorted_keys());
        let arity = a.schema().len();
        for (idx, row) in a.iter() {
            let key = a.key_of(idx);
            let other = b.find_key_readonly(key).unwrap();
            for attr in 0..arity {
                assert!(
                    row.get(attr).loose_eq(&b.row(other).get(attr)),
                    "attribute {attr} of unit {key} changed across the round trip"
                );
            }
        }
    }

    #[test]
    fn round_trip_preserves_every_value() {
        let table = sample_table(50);
        let bytes = snapshot(&table).unwrap();
        let restored = restore(&bytes, table.schema()).unwrap();
        assert_tables_equal(&table, &restored);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let table = sample_table(20);
        assert_eq!(snapshot(&table).unwrap(), snapshot(&table).unwrap());
    }

    #[test]
    fn restored_tables_resnapshot_byte_identically() {
        let table = sample_table(33);
        let bytes = snapshot(&table).unwrap();
        let restored = restore(&bytes, table.schema()).unwrap();
        assert_eq!(snapshot(&restored).unwrap(), bytes);
    }

    #[test]
    fn v1_snapshots_still_restore() {
        let table = sample_table(40);
        let v1 = snapshot_v1(&table);
        assert_eq!(v1[4], 1, "v1 writer stamps version 1");
        let restored = restore(&v1, table.schema()).unwrap();
        assert_tables_equal(&table, &restored);
        // And a v1 restore re-snapshots into the v2 format losslessly.
        let v2 = snapshot(&restored).unwrap();
        assert_eq!(v2[4], 2, "current writer stamps version 2");
        assert_tables_equal(&table, &restore(&v2, table.schema()).unwrap());
    }

    #[test]
    fn mixed_columns_round_trip() {
        // Force a genuinely mixed column: Int and Float in the same attr.
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let hp = schema.attr_id("health").unwrap();
        for key in 0..10i64 {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("health", 10 + key)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        table.set_attr(3, hp, Value::Float(7.5)).unwrap();
        let restored = restore(&snapshot(&table).unwrap(), &schema).unwrap();
        assert_eq!(restored.row(3).get(hp), Value::Float(7.5));
        assert_eq!(restored.row(2).get(hp), Value::Int(12));
        assert_eq!(snapshot(&restored).unwrap(), snapshot(&table).unwrap());
    }

    #[test]
    fn empty_tables_round_trip() {
        let schema = paper_schema().into_shared();
        let table = EnvTable::new(Arc::clone(&schema));
        let bytes = snapshot(&table).unwrap();
        let restored = restore(&bytes, &schema).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn string_and_bool_values_round_trip() {
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("name", Value::str("none"))
            .const_attr("alive", true)
            .sum_attr("damage", 0i64);
        let schema = b.build().unwrap().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let t = TupleBuilder::new(&schema)
            .set("key", 7i64)
            .unwrap()
            .set("name", Value::str("Sir Lance"))
            .unwrap()
            .set("alive", false)
            .unwrap()
            .build();
        table.insert(t).unwrap();
        let restored = restore(&snapshot(&table).unwrap(), &schema).unwrap();
        let name = schema.attr_id("name").unwrap();
        let alive = schema.attr_id("alive").unwrap();
        let name_value = restored.row(0).get(name);
        assert_eq!(name_value.as_str(), Some("Sir Lance"));
        assert!(!restored.row(0).get(alive).as_bool().unwrap());
    }

    #[test]
    fn corruption_is_detected() {
        let table = sample_table(10);
        let bytes = snapshot(&table).unwrap();
        // Flip one byte in the middle of the payload.
        let mut corrupted = bytes.to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        let err = restore(&corrupted, table.schema()).unwrap_err();
        assert!(matches!(err, EnvError::Snapshot(_)));
        assert!(err.to_string().contains("checksum") || err.to_string().contains("snapshot"));
    }

    #[test]
    fn truncated_snapshots_are_rejected() {
        let table = sample_table(10);
        let bytes = snapshot(&table).unwrap();
        for cut in [0usize, 5, 20, bytes.len() - 1] {
            let err = restore(&bytes[..cut], table.schema());
            assert!(err.is_err(), "truncation at {cut} bytes should fail");
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let table = sample_table(5);
        let bytes = snapshot(&table).unwrap();
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("posx", 0.0)
            .sum_attr("damage", 0i64);
        let other = b.build().unwrap().into_shared();
        let err = restore(&bytes, &other).unwrap_err();
        assert!(matches!(err, EnvError::Snapshot(_)));
        assert!(err.to_string().contains("schema"));
    }

    #[test]
    fn fingerprints_distinguish_schemas() {
        let a = paper_schema();
        let b = paper_schema();
        assert_eq!(schema_fingerprint(&a), schema_fingerprint(&b));
        let mut builder = Schema::builder();
        builder
            .key("key")
            .const_attr("posx", 0.0)
            .min_attr("slow", 0i64);
        let c = builder.build().unwrap();
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&c));
    }

    #[test]
    fn absurd_row_counts_with_a_fixed_checksum_are_rejected() {
        // Corrupt the row-count field to u64::MAX and recompute the trailing
        // checksum, so the bounds guard (not the checksum) must reject it.
        let table = sample_table(4);
        let bytes = snapshot(&table).unwrap();
        let mut forged = bytes[..bytes.len() - 8].to_vec();
        let rows_at = 4 + 2 + 8 + 4;
        forged[rows_at..rows_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let checksum = fnv(&forged);
        forged.extend_from_slice(&checksum.to_le_bytes());
        let err = restore(&forged, table.schema()).unwrap_err();
        assert!(matches!(err, EnvError::Snapshot(_)));
        assert!(err.to_string().contains("rows"), "{err}");
    }

    #[test]
    fn duplicate_keys_in_a_forged_columnar_snapshot_are_rejected() {
        // Write two rows with the same key and recompute the checksum: the
        // column decoder must reject it exactly like row-wise insert did.
        let table = sample_table(2);
        let bytes = snapshot(&table).unwrap();
        let mut forged = bytes[..bytes.len() - 8].to_vec();
        // Key column is attribute 0 and all-int, so its payload starts one
        // tag byte after the header.
        let key_col_at = 4 + 2 + 8 + 4 + 8 + 1;
        forged[key_col_at..key_col_at + 8].copy_from_slice(&0i64.to_le_bytes());
        forged[key_col_at + 8..key_col_at + 16].copy_from_slice(&0i64.to_le_bytes());
        let checksum = fnv(&forged);
        forged.extend_from_slice(&checksum.to_le_bytes());
        let err = restore(&forged, table.schema()).unwrap_err();
        assert_eq!(err, EnvError::DuplicateKey(0));
    }

    #[test]
    fn garbage_input_fails_cleanly() {
        let schema = paper_schema().into_shared();
        assert!(restore(&[], &schema).is_err());
        assert!(restore(&[0u8; 16], &schema).is_err());
        let garbage: Vec<u8> = (0..200u8).collect();
        assert!(restore(&garbage, &schema).is_err());
    }
}
