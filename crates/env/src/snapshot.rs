//! Binary snapshots of the environment relation.
//!
//! The data-driven architecture of §2 keeps "character data" in files outside
//! the engine: scenarios are authored, saved, shipped and modded as data.
//! This module provides the corresponding persistence substrate for the
//! environment relation `E`: a compact, deterministic binary encoding of a
//! table ([`snapshot`]) and its inverse ([`restore`]), plus a schema
//! fingerprint so a snapshot written against one schema is never silently
//! decoded against another.
//!
//! The format is intentionally simple (little-endian, length-prefixed,
//! trailing FNV-1a checksum) so that saves are reproducible byte for byte —
//! the replay harness in `sgl-engine` relies on "same seed + same snapshot ⇒
//! same game" for its determinism checks.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{EnvError, Result};
use crate::schema::Schema;
use crate::table::EnvTable;
use crate::tuple::Tuple;
use crate::value::Value;

/// Magic number at the start of every snapshot (`"SGL\x01"`).
const MAGIC: u32 = 0x53474C01;
/// Current format version.
const VERSION: u16 = 1;

const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;

/// A stable fingerprint of a schema: attribute names, order and combination
/// kinds (defaults are not part of the identity — they only matter when
/// spawning new units).
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut hash = crate::checkpoint::Fnv64::new();
    for attr in schema.attrs() {
        hash.write(attr.name.as_bytes());
        hash.write(&[match attr.kind {
            crate::schema::CombineKind::Const => 0u8,
            crate::schema::CombineKind::Sum => 1,
            crate::schema::CombineKind::Max => 2,
            crate::schema::CombineKind::Min => 3,
        }]);
    }
    hash.write(&(schema.len() as u64).to_le_bytes());
    hash.finish()
}

/// Serialize a table into a self-describing snapshot.
pub fn snapshot(table: &EnvTable) -> Bytes {
    let schema = table.schema();
    let mut buf = BytesMut::with_capacity(64 + table.len() * schema.len() * 9);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(schema_fingerprint(schema));
    buf.put_u32_le(schema.len() as u32);
    buf.put_u64_le(table.len() as u64);
    for (_, row) in table.iter() {
        for value in row.values() {
            put_value(&mut buf, value);
        }
    }
    // Trailing checksum over everything written so far.
    let checksum = fnv(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decode a snapshot previously produced by [`snapshot`] against the same
/// schema.  Fails when the data is truncated, corrupted, or was written
/// against a schema with a different fingerprint.
pub fn restore(data: &[u8], schema: &std::sync::Arc<Schema>) -> Result<EnvTable> {
    if data.len() < 4 + 2 + 8 + 4 + 8 + 8 {
        return Err(EnvError::Snapshot("snapshot is too short".into()));
    }
    let (payload, checksum_bytes) = data.split_at(data.len() - 8);
    let stored_checksum = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if fnv(payload) != stored_checksum {
        return Err(EnvError::Snapshot(
            "checksum mismatch (corrupted snapshot)".into(),
        ));
    }

    let mut cursor = payload;
    if cursor.get_u32_le() != MAGIC {
        return Err(EnvError::Snapshot("bad magic number".into()));
    }
    let version = cursor.get_u16_le();
    if version != VERSION {
        return Err(EnvError::Snapshot(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let fingerprint = cursor.get_u64_le();
    if fingerprint != schema_fingerprint(schema) {
        return Err(EnvError::Snapshot(
            "snapshot was written against a different schema".into(),
        ));
    }
    let arity = cursor.get_u32_le() as usize;
    if arity != schema.len() {
        return Err(EnvError::Snapshot(format!(
            "snapshot arity {arity} does not match schema arity {}",
            schema.len()
        )));
    }
    let rows = cursor.get_u64_le();
    // The smallest encoded value is two bytes (tag + bool payload); a row
    // count the remaining payload cannot possibly hold is rejected up front,
    // before the decode loop reserves any per-row memory.  The checksum
    // catches random corruption, but a crafted blob with a recomputed
    // checksum must fail through typed bounds checks too.
    let min_bytes = rows
        .checked_mul(arity as u64)
        .and_then(|v| v.checked_mul(2));
    match min_bytes {
        Some(need) if need <= cursor.remaining() as u64 => {}
        _ => {
            return Err(EnvError::Snapshot(format!(
                "snapshot claims {rows} rows but only {} payload bytes remain",
                cursor.remaining()
            )))
        }
    }
    let rows = rows as usize;

    let mut table = EnvTable::new(std::sync::Arc::clone(schema));
    for _ in 0..rows {
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(get_value(&mut cursor)?);
        }
        let tuple = Tuple::new(schema, values)?;
        table.insert(tuple)?;
    }
    if cursor.has_remaining() {
        return Err(EnvError::Snapshot(format!(
            "{} trailing bytes after the last row",
            cursor.remaining()
        )));
    }
    Ok(table)
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Int(v) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*v);
        }
        Value::Float(v) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*v);
        }
        Value::Bool(b) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(*b as u8);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            let bytes = s.as_bytes();
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(bytes);
        }
    }
}

fn get_value(cursor: &mut &[u8]) -> Result<Value> {
    let need = |cursor: &&[u8], n: usize| -> Result<()> {
        if cursor.remaining() < n {
            Err(EnvError::Snapshot("unexpected end of snapshot".into()))
        } else {
            Ok(())
        }
    };
    need(cursor, 1)?;
    let tag = cursor.get_u8();
    match tag {
        TAG_INT => {
            need(cursor, 8)?;
            Ok(Value::Int(cursor.get_i64_le()))
        }
        TAG_FLOAT => {
            need(cursor, 8)?;
            Ok(Value::Float(cursor.get_f64_le()))
        }
        TAG_BOOL => {
            need(cursor, 1)?;
            Ok(Value::Bool(cursor.get_u8() != 0))
        }
        TAG_STR => {
            need(cursor, 4)?;
            let len = cursor.get_u32_le() as usize;
            need(cursor, len)?;
            let bytes = cursor[..len].to_vec();
            cursor.advance(len);
            let s = String::from_utf8(bytes)
                .map_err(|_| EnvError::Snapshot("invalid UTF-8 in string value".into()))?;
            Ok(Value::str(s))
        }
        other => Err(EnvError::Snapshot(format!("unknown value tag {other}"))),
    }
}

use crate::checkpoint::fnv64 as fnv;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;
    use crate::tuple::TupleBuilder;
    use crate::value::Value;
    use std::sync::Arc;

    fn sample_table(units: usize) -> EnvTable {
        let schema = paper_schema().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        for key in 0..units as i64 {
            let t = TupleBuilder::new(&schema)
                .set("key", key)
                .unwrap()
                .set("player", key % 2)
                .unwrap()
                .set("posx", key as f64 * 1.5)
                .unwrap()
                .set("posy", 100.0 - key as f64)
                .unwrap()
                .set("health", 30 - key)
                .unwrap()
                .set("cooldown", key % 3)
                .unwrap()
                .build();
            table.insert(t).unwrap();
        }
        table
    }

    #[test]
    fn round_trip_preserves_every_value() {
        let table = sample_table(50);
        let bytes = snapshot(&table);
        let restored = restore(&bytes, table.schema()).unwrap();
        assert_eq!(restored.len(), table.len());
        assert_eq!(restored.sorted_keys(), table.sorted_keys());
        for (idx, row) in table.iter() {
            let key = table.key_of(idx);
            let other = restored.find_key_readonly(key).unwrap();
            for (attr, value) in row.values().iter().enumerate() {
                assert!(
                    value.loose_eq(restored.row(other).get(attr)),
                    "attribute {attr} of unit {key} changed across the round trip"
                );
            }
        }
    }

    #[test]
    fn snapshots_are_deterministic() {
        let table = sample_table(20);
        assert_eq!(snapshot(&table), snapshot(&table));
    }

    #[test]
    fn empty_tables_round_trip() {
        let schema = paper_schema().into_shared();
        let table = EnvTable::new(Arc::clone(&schema));
        let bytes = snapshot(&table);
        let restored = restore(&bytes, &schema).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn string_and_bool_values_round_trip() {
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("name", Value::str("none"))
            .const_attr("alive", true)
            .sum_attr("damage", 0i64);
        let schema = b.build().unwrap().into_shared();
        let mut table = EnvTable::new(Arc::clone(&schema));
        let t = TupleBuilder::new(&schema)
            .set("key", 7i64)
            .unwrap()
            .set("name", Value::str("Sir Lance"))
            .unwrap()
            .set("alive", false)
            .unwrap()
            .build();
        table.insert(t).unwrap();
        let restored = restore(&snapshot(&table), &schema).unwrap();
        let name = schema.attr_id("name").unwrap();
        let alive = schema.attr_id("alive").unwrap();
        assert_eq!(restored.row(0).get(name).as_str(), Some("Sir Lance"));
        assert!(!restored.row(0).get(alive).as_bool().unwrap());
    }

    #[test]
    fn corruption_is_detected() {
        let table = sample_table(10);
        let bytes = snapshot(&table);
        // Flip one byte in the middle of the payload.
        let mut corrupted = bytes.to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        let err = restore(&corrupted, table.schema()).unwrap_err();
        assert!(matches!(err, EnvError::Snapshot(_)));
        assert!(err.to_string().contains("checksum") || err.to_string().contains("snapshot"));
    }

    #[test]
    fn truncated_snapshots_are_rejected() {
        let table = sample_table(10);
        let bytes = snapshot(&table);
        for cut in [0usize, 5, 20, bytes.len() - 1] {
            let err = restore(&bytes[..cut], table.schema());
            assert!(err.is_err(), "truncation at {cut} bytes should fail");
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let table = sample_table(5);
        let bytes = snapshot(&table);
        let mut b = Schema::builder();
        b.key("key")
            .const_attr("posx", 0.0)
            .sum_attr("damage", 0i64);
        let other = b.build().unwrap().into_shared();
        let err = restore(&bytes, &other).unwrap_err();
        assert!(matches!(err, EnvError::Snapshot(_)));
        assert!(err.to_string().contains("schema"));
    }

    #[test]
    fn fingerprints_distinguish_schemas() {
        let a = paper_schema();
        let b = paper_schema();
        assert_eq!(schema_fingerprint(&a), schema_fingerprint(&b));
        let mut builder = Schema::builder();
        builder
            .key("key")
            .const_attr("posx", 0.0)
            .min_attr("slow", 0i64);
        let c = builder.build().unwrap();
        assert_ne!(schema_fingerprint(&a), schema_fingerprint(&c));
    }

    #[test]
    fn absurd_row_counts_with_a_fixed_checksum_are_rejected() {
        // Corrupt the row-count field to u64::MAX and recompute the trailing
        // checksum, so the bounds guard (not the checksum) must reject it.
        let table = sample_table(4);
        let bytes = snapshot(&table);
        let mut forged = bytes[..bytes.len() - 8].to_vec();
        let rows_at = 4 + 2 + 8 + 4;
        forged[rows_at..rows_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let checksum = fnv(&forged);
        forged.extend_from_slice(&checksum.to_le_bytes());
        let err = restore(&forged, table.schema()).unwrap_err();
        assert!(matches!(err, EnvError::Snapshot(_)));
        assert!(err.to_string().contains("rows"), "{err}");
    }

    #[test]
    fn garbage_input_fails_cleanly() {
        let schema = paper_schema().into_shared();
        assert!(restore(&[], &schema).is_err());
        assert!(restore(&[0u8; 16], &schema).is_err());
        let garbage: Vec<u8> = (0..200u8).collect();
        assert!(restore(&garbage, &schema).is_err());
    }
}
