//! # sgl-env — the environment layer of SGL
//!
//! This crate implements the data model of *Scaling Games to Epic Proportions*
//! (White et al., SIGMOD 2007):
//!
//! * the environment relation `E` — a multiset of unit tuples with a schema
//!   whose attributes are tagged `const`, `sum`, `max` or `min` ([`schema`],
//!   [`table`], [`mod@tuple`], [`value`]);
//! * the combination operator `⊕` that folds the per-script effect relations
//!   of a clock tick into a single effect per unit and attribute
//!   ([`effects`], [`combine`]);
//! * the post-processing step that applies combined effects to unit state and
//!   removes dead units ([`postprocess`]);
//! * the deterministic per-tick random function `Random(i)` ([`random`]).
//!
//! Everything above the environment layer (the SGL language, the algebra, the
//! executors and the discrete simulation engine) is built in the sibling
//! crates and only talks to game state through these types.
//!
//! ```
//! use sgl_env::prelude::*;
//!
//! let schema = sgl_env::schema::paper_schema().into_shared();
//! let mut table = EnvTable::new(schema.clone());
//! let knight = TupleBuilder::new(&schema)
//!     .set("key", 1i64).unwrap()
//!     .set("health", 30i64).unwrap()
//!     .build();
//! table.insert(knight).unwrap();
//! assert_eq!(table.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod column;
pub mod combine;
pub mod effects;
pub mod error;
pub mod pager;
pub mod postprocess;
pub mod random;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod tuple;
pub mod value;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::effects::{EffectBuffer, EffectRow};
    pub use crate::error::{EnvError, Result};
    pub use crate::pager::{
        PageData, PageManager, PagerStats, RamPageManager, SpillPageManager, PAGE_ROWS,
    };
    pub use crate::postprocess::{PostProcessor, PostStats, UpdateExpr};
    pub use crate::random::{GameRng, TickRandom};
    pub use crate::schema::{AttrDef, AttrId, CombineKind, Schema, SchemaBuilder};
    pub use crate::snapshot::{restore, schema_fingerprint, snapshot};
    pub use crate::table::{EnvTable, RowRef, TableMemoryStats};
    pub use crate::tuple::{Tuple, TupleBuilder};
    pub use crate::value::Value;
}

pub use prelude::*;

/// Small helper extension used in doc examples: set an attribute and panic on
/// failure (schemas in examples are static, so failures are programmer bugs).
pub trait TupleBuilderExt<'a>: Sized {
    /// Set an attribute by name, panicking on unknown attributes.
    fn unwrap_key(self, name: &str, value: impl Into<Value>) -> Self;
}

impl<'a> TupleBuilderExt<'a> for TupleBuilder<'a> {
    fn unwrap_key(self, name: &str, value: impl Into<Value>) -> Self {
        self.set(name, value).expect("attribute exists") // PANIC-AUDIT: documented panicking doc-example helper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_exports_compile_together() {
        let schema = schema::paper_schema().into_shared();
        let mut table = EnvTable::new(schema.clone());
        let unit = TupleBuilder::new(&schema)
            .unwrap_key("key", 9)
            .unwrap_key("health", 12)
            .build();
        table.insert(unit).unwrap();
        let mut effects = EffectBuffer::new(schema.clone());
        effects
            .apply(9, schema.attr_id("damage").unwrap(), Value::Int(3))
            .unwrap();
        let pp = postprocess::paper_postprocessor(&schema, 1.0, 2).unwrap();
        pp.apply(&mut table, &effects).unwrap();
        let hp = schema.attr_id("health").unwrap();
        assert_eq!(table.row(0).get_i64(hp).unwrap(), 9);
    }
}
