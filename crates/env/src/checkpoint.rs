//! Versioned multi-section checkpoint framing.
//!
//! [`snapshot`](mod@crate::snapshot) serializes one table; a *checkpoint* of a
//! running simulation needs more — the tick counter, the RNG seed, runtime
//! statistics, installed physical plan choices, maintenance counters — and
//! those sections live in different crates of the stack.  This module
//! provides the shared container they are framed in:
//!
//! ```text
//! magic (u32) · version (u16) · schema fingerprint (u64) · section count (u32)
//!   section*: tag (u32) · length (u64) · payload
//! trailing FNV-1a checksum (u64) over everything before it
//! ```
//!
//! The container never interprets payloads; each layer reads and writes its
//! own section through [`ByteWriter`] / [`ByteReader`], whose every read is
//! bounds-checked and fails with a typed [`EnvError::Checkpoint`] — a
//! corrupted or truncated checkpoint must never panic, allocate absurdly, or
//! silently decode to wrong data.  Like snapshots, the encoding is
//! deterministic byte for byte: the same simulation state always produces
//! the same checkpoint, which is what lets the golden-checkpoint corpus pin
//! the format.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::{EnvError, Result};

/// Magic number at the start of every checkpoint (`"SGL\x43"`, 'C' for
/// checkpoint — distinct from the table-snapshot magic).
pub const MAGIC: u32 = 0x53474C43;
/// Current checkpoint container version.
pub const VERSION: u16 = 1;

/// Section tags used by the engine checkpoint.  The container itself treats
/// tags as opaque; these constants just keep the layers agreeing.
pub mod section {
    /// Environment table (a complete [`crate::snapshot::snapshot`] blob).
    pub const TABLE: u32 = 1;
    /// Simulation clock: tick counter, RNG seed, scripts fingerprint.
    pub const CLOCK: u32 = 2;
    /// Cross-tick runtime statistics (`sgl_exec::RuntimeStats`).
    pub const STATS: u32 = 3;
    /// Planner mode and installed per-call-site physical choices.
    pub const PLANNER: u32 = 4;
    /// Index maintenance counters of the most recent maintenance pass.
    pub const MAINT: u32 = 5;
}

/// Streaming FNV-1a hasher — the one integrity/fingerprint hash of the
/// persistence layer (snapshot checksums, checkpoint checksums, schema and
/// script fingerprints).  Shared so the constants live in exactly one place:
/// changing them invalidates every committed golden artifact at once.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Start a hash at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64 {
            state: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Fold bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= *b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// FNV-1a of one byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

fn fnv(bytes: &[u8]) -> u64 {
    fnv64(bytes)
}

fn err(msg: impl Into<String>) -> EnvError {
    EnvError::Checkpoint(msg.into())
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Assembles a checkpoint from tagged sections.
#[derive(Debug)]
pub struct CheckpointBuilder {
    fingerprint: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl CheckpointBuilder {
    /// Start a checkpoint bound to a schema fingerprint
    /// ([`crate::snapshot::schema_fingerprint`]).
    pub fn new(fingerprint: u64) -> CheckpointBuilder {
        CheckpointBuilder {
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Append a section.  Tags must be unique within a checkpoint.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate tag — the writer side is engine code, not
    /// untrusted input, and a duplicate is a plain programming error.
    pub fn section(&mut self, tag: u32, payload: Vec<u8>) -> &mut CheckpointBuilder {
        assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate checkpoint section tag {tag}"
        );
        self.sections.push((tag, payload));
        self
    }

    /// Serialize the checkpoint (header, sections in insertion order,
    /// trailing checksum).
    pub fn finish(&self) -> Bytes {
        let payload_len: usize = self.sections.iter().map(|(_, p)| p.len() + 12).sum();
        let mut buf = BytesMut::with_capacity(32 + payload_len);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u64_le(self.fingerprint);
        buf.put_u32_le(self.sections.len() as u32);
        for (tag, payload) in &self.sections {
            buf.put_u32_le(*tag);
            buf.put_u64_le(payload.len() as u64);
            buf.put_slice(payload);
        }
        let checksum = fnv(&buf);
        buf.put_u64_le(checksum);
        buf.freeze()
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A parsed checkpoint: validated header and checksum, sections available by
/// tag.  Unknown tags are preserved but ignored, so minor forward-compatible
/// additions do not break old readers.
#[derive(Debug)]
pub struct CheckpointReader {
    fingerprint: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl CheckpointReader {
    /// Parse and validate a checkpoint container.  Fails with a typed
    /// [`EnvError::Checkpoint`] when the data is truncated, corrupted, of an
    /// unsupported version, or structurally inconsistent.
    pub fn parse(data: &[u8]) -> Result<CheckpointReader> {
        // Smallest possible checkpoint: header (18 bytes) + checksum.
        if data.len() < 4 + 2 + 8 + 4 + 8 {
            return Err(err("checkpoint is too short"));
        }
        let (payload, checksum_bytes) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(
            checksum_bytes
                .try_into()
                .map_err(|_| err("truncated checksum"))?,
        );
        if fnv(payload) != stored {
            return Err(err("checksum mismatch (corrupted checkpoint)"));
        }
        let mut r = ByteReader::new(payload);
        if r.u32("magic")? != MAGIC {
            return Err(err("bad magic number (not a checkpoint)"));
        }
        let version = r.u16("version")?;
        if version != VERSION {
            return Err(err(format!("unsupported checkpoint version {version}")));
        }
        let fingerprint = r.u64("schema fingerprint")?;
        let count = r.u32("section count")? as usize;
        let mut sections = Vec::new();
        for i in 0..count {
            let tag = r.u32("section tag")?;
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(err(format!("duplicate section tag {tag}")));
            }
            let len = r.u64("section length")?;
            if len > r.remaining() as u64 {
                return Err(err(format!(
                    "section {i} claims {len} bytes but only {} remain",
                    r.remaining()
                )));
            }
            sections.push((tag, r.bytes(len as usize, "section payload")?.to_vec()));
        }
        r.expect_end("checkpoint sections")?;
        Ok(CheckpointReader {
            fingerprint,
            sections,
        })
    }

    /// The schema fingerprint the checkpoint was written against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// A section payload by tag, if present.
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
    }

    /// A section payload by tag, failing with a typed error naming the
    /// missing section.
    pub fn require(&self, tag: u32, what: &str) -> Result<&[u8]> {
        self.section(tag).ok_or_else(|| {
            err(format!(
                "checkpoint is missing its {what} section (tag {tag})"
            ))
        })
    }
}

// ---------------------------------------------------------------------------
// Primitive encoding helpers
// ---------------------------------------------------------------------------

/// Little-endian primitive writer for section payloads.  Deterministic by
/// construction; callers are responsible for emitting map contents in a
/// sorted order.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Start an empty payload.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its little-endian bit pattern (exact round trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a section payload.  Every read
/// names what it was reading, so truncation errors say which field broke.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Read from a payload slice.
    pub fn new(data: &'a [u8]) -> ByteReader<'a> {
        ByteReader { data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.data.len() < n {
            return Err(err(format!(
                "unexpected end of checkpoint while reading {what} \
                 (need {n} bytes, have {})",
                self.data.len()
            )));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self, what: &str) -> Result<u16> {
        let bytes = self.take(2, what)?;
        Ok(u16::from_le_bytes(bytes.try_into().map_err(|_| err(what))?))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().map_err(|_| err(what))?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().map_err(|_| err(what))?))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        if len > self.remaining() {
            return Err(err(format!(
                "{what} claims {len} bytes but only {} remain",
                self.remaining()
            )));
        }
        String::from_utf8(self.take(len, what)?.to_vec())
            .map_err(|_| err(format!("invalid UTF-8 in {what}")))
    }

    /// Fail unless the payload was consumed exactly.
    pub fn expect_end(&self, what: &str) -> Result<()> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(err(format!(
                "{} trailing bytes after {what}",
                self.data.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bytes {
        let mut b = CheckpointBuilder::new(0xDEAD_BEEF);
        let mut w = ByteWriter::new();
        w.u64(42);
        w.str("hello");
        w.f64(-0.5);
        b.section(section::CLOCK, w.finish());
        b.section(section::STATS, vec![1, 2, 3]);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_sections_and_fingerprint() {
        let bytes = sample();
        let r = CheckpointReader::parse(&bytes).unwrap();
        assert_eq!(r.fingerprint(), 0xDEAD_BEEF);
        assert_eq!(r.section(section::STATS), Some(&[1u8, 2, 3][..]));
        assert!(r.section(section::TABLE).is_none());
        let mut br = ByteReader::new(r.require(section::CLOCK, "clock").unwrap());
        assert_eq!(br.u64("tick").unwrap(), 42);
        assert_eq!(br.str("name").unwrap(), "hello");
        assert_eq!(br.f64("x").unwrap(), -0.5);
        br.expect_end("clock").unwrap();
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn every_truncation_fails_typed() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let e = CheckpointReader::parse(&bytes[..cut]).unwrap_err();
            assert!(matches!(e, EnvError::Checkpoint(_)), "cut {cut}: {e}");
        }
    }

    #[test]
    fn every_bit_flip_fails_typed() {
        let bytes = sample().to_vec();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            let e = CheckpointReader::parse(&bad).unwrap_err();
            assert!(matches!(e, EnvError::Checkpoint(_)), "byte {i}: {e}");
        }
    }

    #[test]
    fn oversized_section_lengths_are_rejected_before_allocation() {
        // Hand-build a header that claims a section far larger than the
        // payload, with a valid checksum, so the length guard (not the
        // checksum) must catch it.
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u64_le(7);
        buf.put_u32_le(1);
        buf.put_u32_le(section::TABLE);
        buf.put_u64_le(u64::MAX);
        let checksum = fnv64(&buf);
        buf.put_u64_le(checksum);
        let e = CheckpointReader::parse(&buf).unwrap_err();
        assert!(matches!(e, EnvError::Checkpoint(_)), "{e}");
        assert!(e.to_string().contains("claims"));
    }

    #[test]
    fn missing_sections_fail_with_a_named_error() {
        let bytes = sample();
        let r = CheckpointReader::parse(&bytes).unwrap();
        let e = r.require(section::PLANNER, "planner state").unwrap_err();
        assert!(e.to_string().contains("planner state"), "{e}");
    }

    #[test]
    fn wrong_magic_and_garbage_fail_typed() {
        for data in [&[][..], &[0u8; 8], &[0xFFu8; 64]] {
            assert!(matches!(
                CheckpointReader::parse(data),
                Err(EnvError::Checkpoint(_))
            ));
        }
        // A valid table snapshot is not a checkpoint.
        let schema = crate::schema::paper_schema().into_shared();
        let table = crate::table::EnvTable::new(schema);
        let snap = crate::snapshot::snapshot(&table).unwrap();
        assert!(matches!(
            CheckpointReader::parse(&snap),
            Err(EnvError::Checkpoint(_))
        ));
    }
}
