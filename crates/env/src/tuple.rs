//! Row representation for the environment relation.

use crate::error::{EnvError, Result};
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// A single row (unit/object) of the environment relation.
///
/// Values are stored in schema attribute order; access is by pre-resolved
/// [`AttrId`] so that per-tick evaluation does not hash attribute names.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple filled with the schema defaults.
    pub fn defaults(schema: &Schema) -> Tuple {
        Tuple {
            values: schema.default_values(),
        }
    }

    /// Create a tuple from explicit values, checking arity against the schema.
    pub fn new(schema: &Schema, values: Vec<Value>) -> Result<Tuple> {
        if values.len() != schema.len() {
            return Err(EnvError::ArityMismatch {
                expected: schema.len(),
                found: values.len(),
            });
        }
        Ok(Tuple { values })
    }

    /// Create a tuple without validation (used by executors on hot paths where
    /// the arity is known by construction).
    pub fn from_values(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Number of attributes stored.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Read an attribute.
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr]
    }

    /// Write an attribute.
    pub fn set(&mut self, attr: AttrId, value: Value) {
        self.values[attr] = value;
    }

    /// Read an attribute as `f64`.
    pub fn get_f64(&self, attr: AttrId) -> Result<f64> {
        self.values[attr].as_f64()
    }

    /// Read an attribute as `i64`.
    pub fn get_i64(&self, attr: AttrId) -> Result<i64> {
        self.values[attr].as_i64()
    }

    /// The key of this tuple under the given schema.
    pub fn key(&self, schema: &Schema) -> i64 {
        self.values[schema.key_attr()]
            .as_i64()
            .expect("key attribute is integer valued") // PANIC-AUDIT: schema invariant (keys are Int by construction)
    }

    /// All values in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to all values.
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consume the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Reset every effect attribute to its schema default (start of a tick).
    pub fn reset_effects(&mut self, schema: &Schema) {
        for attr in schema.effect_attrs() {
            self.values[attr] = schema.attr(attr).default.clone();
        }
    }
}

/// Convenience builder for tuples used by tests, examples and the scenario
/// generator: set attributes by name on top of schema defaults.
#[derive(Debug)]
pub struct TupleBuilder<'a> {
    schema: &'a Schema,
    tuple: Tuple,
}

impl<'a> TupleBuilder<'a> {
    /// Start from the schema defaults.
    pub fn new(schema: &'a Schema) -> Self {
        TupleBuilder {
            schema,
            tuple: Tuple::defaults(schema),
        }
    }

    /// Set an attribute by name.
    pub fn set(mut self, name: &str, value: impl Into<Value>) -> Result<Self> {
        let id = self.schema.require_attr(name)?;
        self.tuple.set(id, value.into());
        Ok(self)
    }

    /// Finish building.
    pub fn build(self) -> Tuple {
        self.tuple
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_schema;

    #[test]
    fn defaults_and_access() {
        let schema = paper_schema();
        let mut t = Tuple::defaults(&schema);
        assert_eq!(t.arity(), schema.len());
        let hp = schema.attr_id("health").unwrap();
        t.set(hp, Value::Int(25));
        assert_eq!(t.get(hp), &Value::Int(25));
        assert_eq!(t.get_i64(hp).unwrap(), 25);
        assert_eq!(t.get_f64(hp).unwrap(), 25.0);
    }

    #[test]
    fn arity_is_checked() {
        let schema = paper_schema();
        assert!(Tuple::new(&schema, vec![Value::Int(1)]).is_err());
        let ok = Tuple::new(&schema, schema.default_values());
        assert!(ok.is_ok());
    }

    #[test]
    fn key_extraction() {
        let schema = paper_schema();
        let t = TupleBuilder::new(&schema)
            .set("key", 42i64)
            .unwrap()
            .build();
        assert_eq!(t.key(&schema), 42);
    }

    #[test]
    fn builder_rejects_unknown_attribute() {
        let schema = paper_schema();
        assert!(TupleBuilder::new(&schema).set("bogus", 1i64).is_err());
    }

    #[test]
    fn reset_effects_restores_defaults_but_keeps_state() {
        let schema = paper_schema();
        let mut t = TupleBuilder::new(&schema)
            .set("key", 1i64)
            .unwrap()
            .set("health", 30i64)
            .unwrap()
            .set("damage", 12i64)
            .unwrap()
            .set("inaura", 5i64)
            .unwrap()
            .build();
        t.reset_effects(&schema);
        assert_eq!(t.get_i64(schema.attr_id("health").unwrap()).unwrap(), 30);
        assert_eq!(t.get_i64(schema.attr_id("damage").unwrap()).unwrap(), 0);
        assert_eq!(t.get_i64(schema.attr_id("inaura").unwrap()).unwrap(), 0);
    }

    #[test]
    fn values_round_trip() {
        let schema = paper_schema();
        let t = Tuple::defaults(&schema);
        let vals = t.clone().into_values();
        let t2 = Tuple::from_values(vals);
        assert_eq!(t, t2);
        assert_eq!(t2.values().len(), schema.len());
    }
}
