//! Index micro-benchmarks for Figures 8 and 9: the divisible-aggregate
//! layered range tree vs. enumerate-then-aggregate, and the sweep-line MIN
//! vs. a naive scan, on clustered unit positions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::range_tree::RangeTree2D;
use sgl_index::sweepline::{sweep_min_max, SweepKind};
use sgl_index::{Point2, Rect};

fn points(n: usize, world: f64, seed: u64) -> Vec<Point2> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    // Clustered positions (combat formations): points around a few hotspots.
    (0..n)
        .map(|i| {
            let cx = ((i % 4) as f64 + 0.5) * world / 4.0;
            let cy = ((i % 3) as f64 + 0.5) * world / 3.0;
            Point2::new(
                cx + (next() - 0.5) * world / 6.0,
                cy + (next() - 0.5) * world / 6.0,
            )
        })
        .collect()
}

/// Figure 8: divisible aggregates answered from prefix accumulators vs.
/// enumerating the matching points and summing them.
fn divisible_vs_enumerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_count_in_range");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let pts = points(n, 400.0, 7);
        let entries: Vec<AggEntry> = pts
            .iter()
            .map(|p| AggEntry::new(*p, vec![p.x, p.y]))
            .collect();
        let range = 40.0;
        group.bench_with_input(BenchmarkId::new("agg_tree_cascading", n), &n, |b, _| {
            let tree = LayeredAggTree::build(&entries, 2, true);
            b.iter(|| {
                let mut total = 0.0;
                for p in &pts {
                    total += tree.query(&Rect::centered(p.x, p.y, range)).count();
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("enumerate_then_count", n), &n, |b, _| {
            let tree = RangeTree2D::build(&pts);
            b.iter(|| {
                let mut total = 0usize;
                let mut buf = Vec::new();
                for p in &pts {
                    tree.query_into(&Rect::centered(p.x, p.y, range), &mut buf);
                    total += buf.len();
                }
                total
            });
        });
        if n <= 4000 {
            group.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for p in &pts {
                        let rect = Rect::centered(p.x, p.y, range);
                        total += pts.iter().filter(|q| rect.contains(q)).count();
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

/// Figure 9: sweep-line MIN over constant-size ranges vs. a per-unit scan.
fn sweep_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_min_in_range");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let pts = points(n, 400.0, 9);
        let values: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64).collect();
        let (rx, ry) = (30.0, 30.0);
        group.bench_with_input(BenchmarkId::new("sweepline", n), &n, |b, _| {
            b.iter(|| sweep_min_max(&pts, &values, &pts, rx, ry, SweepKind::Min));
        });
        if n <= 4000 {
            group.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(n);
                    for q in &pts {
                        let mut best = f64::INFINITY;
                        for (p, v) in pts.iter().zip(&values) {
                            if (p.x - q.x).abs() <= rx && (p.y - q.y).abs() <= ry && *v < best {
                                best = *v;
                            }
                        }
                        out.push(best);
                    }
                    out
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, divisible_vs_enumerate, sweep_vs_scan);
criterion_main!(benches);
