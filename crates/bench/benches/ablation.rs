//! Ablations of the design choices called out in DESIGN.md: fractional
//! cascading on/off, aggregate-result sharing on/off, and the area-of-effect
//! index for `⊕` processing on/off — all measured on the Figure-10 workload
//! at a fixed size.

use criterion::{criterion_group, criterion_main, Criterion};

use sgl_battle::{BattleScenario, ScenarioConfig};
use sgl_exec::{ExecConfig, ExecMode};

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_500_units");
    group.sample_size(10);
    let scenario = BattleScenario::generate(ScenarioConfig {
        units: 500,
        density: 0.01,
        seed: 42,
        ..Default::default()
    });
    let schema = scenario.schema.clone();

    let configs = [
        ("indexed_full", ExecConfig::indexed(&schema)),
        (
            "no_fractional_cascading",
            ExecConfig {
                cascading: false,
                ..ExecConfig::indexed(&schema)
            },
        ),
        (
            "no_aggregate_sharing",
            ExecConfig {
                share_aggregates: false,
                ..ExecConfig::indexed(&schema)
            },
        ),
        (
            "no_aoe_index",
            ExecConfig {
                aoe_index: false,
                ..ExecConfig::indexed(&schema)
            },
        ),
        ("naive_baseline", ExecConfig::naive(&schema)),
    ];
    for (name, config) in configs {
        group.bench_function(name, |b| {
            let mut sim = scenario.build_simulation(ExecMode::Indexed);
            sim.set_exec_config(config);
            b.iter(|| sim.step().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
