//! Ablation: alternative index structures for the same aggregate workload.
//!
//! The paper commits to one combination — layered aggregate range trees for
//! divisible aggregates (Figure 8) and a sweep-line for MIN over constant
//! ranges (Figure 9).  These benches measure that choice against the
//! alternatives implemented in `sgl-index`:
//!
//! * `quadtree_*` — a bucket PR quadtree answering the same queries from one
//!   structure (both divisible and MIN/MAX);
//! * `mra_exact_min` — the multi-resolution aggregate tree the paper cites as
//!   the approximate alternative, run in exact mode;
//! * the `agg_tree` / `sweepline` rows reproduce the paper's own structures
//!   for reference.
//!
//! Build time is included in every measurement (indexes are rebuilt per tick
//! in the paper's processing model), so the numbers answer the question the
//! engine actually faces each tick: "build + answer all probes".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::mra_tree::{MraAgg, MraTree};
use sgl_index::quadtree::AggQuadTree;
use sgl_index::sweepline::{sweep_min_max, SweepKind};
use sgl_index::{Point2, Rect};

fn clustered_points(n: usize, world: f64, seed: u64) -> Vec<Point2> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    (0..n)
        .map(|i| {
            let cx = ((i % 4) as f64 + 0.5) * world / 4.0;
            let cy = ((i % 3) as f64 + 0.5) * world / 3.0;
            Point2::new(
                cx + (next() - 0.5) * world / 6.0,
                cy + (next() - 0.5) * world / 6.0,
            )
        })
        .collect()
}

/// Divisible aggregate (count + centroid channels) — every unit probes its
/// own sight rectangle, as in the battle decision phase.
fn divisible_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_ablation_divisible");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let pts = clustered_points(n, 400.0, 3);
        let entries: Vec<AggEntry> = pts
            .iter()
            .map(|p| AggEntry::new(*p, vec![p.x, p.y]))
            .collect();
        let range = 40.0;
        group.bench_with_input(BenchmarkId::new("agg_tree_fig8", n), &n, |b, _| {
            b.iter(|| {
                let tree = LayeredAggTree::build(&entries, 2, true);
                let mut total = 0.0;
                for p in &pts {
                    total += tree.query(&Rect::centered(p.x, p.y, range)).count();
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("quadtree", n), &n, |b, _| {
            b.iter(|| {
                let tree = AggQuadTree::build(&entries, 2, 12);
                let mut total = 0.0;
                for p in &pts {
                    total += tree.query(&Rect::centered(p.x, p.y, range)).count();
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("mra_exact_count", n), &n, |b, _| {
            let values: Vec<f64> = pts.iter().map(|p| p.x).collect();
            b.iter(|| {
                let tree = MraTree::build(&pts, &values, 8);
                let mut total = 0.0;
                for p in &pts {
                    total += tree
                        .query_exact(&Rect::centered(p.x, p.y, range), MraAgg::Count)
                        .unwrap_or(0.0);
                }
                total
            });
        });
    }
    group.finish();
}

/// MIN over a constant-size range ("weakest enemy in range").
fn min_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_ablation_min");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let pts = clustered_points(n, 400.0, 9);
        let values: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64).collect();
        let entries: Vec<AggEntry> = pts
            .iter()
            .zip(&values)
            .map(|(p, v)| AggEntry::new(*p, vec![*v]))
            .collect();
        let (rx, ry) = (30.0, 30.0);
        group.bench_with_input(BenchmarkId::new("sweepline_fig9", n), &n, |b, _| {
            b.iter(|| sweep_min_max(&pts, &values, &pts, rx, ry, SweepKind::Min));
        });
        group.bench_with_input(BenchmarkId::new("quadtree_min", n), &n, |b, _| {
            b.iter(|| {
                let tree = AggQuadTree::build(&entries, 1, 12);
                let mut out = Vec::with_capacity(pts.len());
                for p in &pts {
                    out.push(
                        tree.min_in_rect(&Rect::centered(p.x, p.y, rx), 0)
                            .map(|m| m.value),
                    );
                }
                out
            });
        });
        group.bench_with_input(BenchmarkId::new("mra_exact_min", n), &n, |b, _| {
            b.iter(|| {
                let tree = MraTree::build(&pts, &values, 8);
                let mut out = Vec::with_capacity(pts.len());
                for p in &pts {
                    out.push(tree.query_exact(&Rect::centered(p.x, p.y, rx), MraAgg::Min));
                }
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, divisible_structures, min_structures);
criterion_main!(benches);
