//! Optimizer benchmark (Figure 6 / Example 5.1): compile the battle scripts
//! with and without the algebraic rewrite rules and check plan quality.

use criterion::{criterion_group, criterion_main, Criterion};

use sgl_battle::{battle_registry, battle_schema, ARCHER_SCRIPT, HEALER_SCRIPT, KNIGHT_SCRIPT};
use sgl_core::algebra::OptimizerOptions;
use sgl_core::compile_script_with;

fn compile_time(c: &mut Criterion) {
    let schema = battle_schema();
    let registry = battle_registry();
    let mut group = c.benchmark_group("optimizer");
    group.bench_function("compile_battle_scripts_optimized", |b| {
        b.iter(|| {
            for (name, src) in [
                ("knight", KNIGHT_SCRIPT),
                ("archer", ARCHER_SCRIPT),
                ("healer", HEALER_SCRIPT),
            ] {
                compile_script_with(name, src, &schema, &registry, OptimizerOptions::default())
                    .unwrap();
            }
        });
    });
    group.bench_function("compile_battle_scripts_unoptimized", |b| {
        b.iter(|| {
            for (name, src) in [
                ("knight", KNIGHT_SCRIPT),
                ("archer", ARCHER_SCRIPT),
                ("healer", HEALER_SCRIPT),
            ] {
                compile_script_with(name, src, &schema, &registry, OptimizerOptions::none())
                    .unwrap();
            }
        });
    });
    // Plan quality: the rewrite rules never increase aggregate work.
    group.bench_function("plan_quality_report", |b| {
        b.iter(|| {
            let mut total_before = 0;
            let mut total_after = 0;
            for (name, src) in [
                ("knight", KNIGHT_SCRIPT),
                ("archer", ARCHER_SCRIPT),
                ("healer", HEALER_SCRIPT),
            ] {
                let compiled =
                    compile_script_with(name, src, &schema, &registry, OptimizerOptions::default())
                        .unwrap();
                total_before += compiled.optimized.before.aggregate_nodes;
                total_after += compiled.optimized.after.aggregate_nodes;
            }
            assert!(total_after <= total_before);
            (total_before, total_after)
        });
    });
    group.finish();
}

criterion_group!(benches, compile_time);
criterion_main!(benches);
