//! The §6.1 density experiment: 500 units, density varied from 0.5 % to 8 %;
//! neither engine should be very sensitive to this parameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_battle::{BattleScenario, ScenarioConfig};
use sgl_exec::ExecMode;

fn density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_500_units");
    group.sample_size(10);
    for &density in &[0.005f64, 0.01, 0.02, 0.04, 0.08] {
        let label = format!("{:.1}%", density * 100.0);
        let scenario = BattleScenario::generate(ScenarioConfig {
            units: 500,
            density,
            seed: 42,
            ..Default::default()
        });
        for mode in [ExecMode::Indexed, ExecMode::Naive] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), &label),
                &density,
                |b, _| {
                    let mut sim = scenario.build_simulation(mode);
                    b.iter(|| sim.step().unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, density);
criterion_main!(benches);
