//! Tick-throughput scaling of the sharded parallel executor.
//!
//! The decision/action phases of a tick are embarrassingly parallel under
//! the state-effect pattern (every unit reads the same immutable
//! environment; effects are ⊕-combined), so the executor fans acting units
//! out over worker threads.  This bench sweeps 1/2/4/8 threads over full
//! engine ticks of the §6 battle at two scales — the headline configuration
//! is the 10 000-unit battle, where 4 threads should deliver well over the
//! 1.5× tick-throughput bar — after first asserting that every thread count
//! simulates bit-identically the same battle (the knob is *purely*
//! performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_battle::{BattleScenario, ScenarioConfig};
use sgl_core::engine::Simulation;
use sgl_exec::{ExecConfig, ExecMode, Parallelism};

fn thread_counts() -> [usize; 4] {
    [1, 2, 4, 8]
}

fn parallelism_for(threads: usize) -> Parallelism {
    if threads <= 1 {
        Parallelism::Off
    } else {
        Parallelism::Threads(threads)
    }
}

fn simulation_with(scenario: &BattleScenario, threads: usize) -> Simulation {
    let mut sim = scenario.build_simulation(ExecMode::Indexed);
    sim.set_exec_config(
        ExecConfig::indexed(&scenario.schema).with_parallelism(parallelism_for(threads)),
    );
    sim
}

fn tick_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    for &units in &[1_000usize, 10_000] {
        let scenario = BattleScenario::generate(ScenarioConfig {
            units,
            density: 0.01,
            seed: 97,
            ..ScenarioConfig::default()
        });
        // Determinism gate: every thread count must simulate the same battle
        // before anything is timed.
        let mut reference = simulation_with(&scenario, 1);
        let reference_digests: Vec<_> = (0..3)
            .map(|_| {
                reference.step().expect("reference tick");
                reference.digest()
            })
            .collect();
        for &threads in &thread_counts()[1..] {
            let mut check = simulation_with(&scenario, threads);
            for (tick, expected) in reference_digests.iter().enumerate() {
                check.step().expect("check tick");
                assert_eq!(
                    check.digest(),
                    *expected,
                    "{threads} threads diverged at tick {tick}"
                );
            }
        }

        for &threads in &thread_counts() {
            group.bench_with_input(
                BenchmarkId::new(format!("{threads}-threads"), units),
                &threads,
                |b, &threads| {
                    let mut sim = simulation_with(&scenario, threads);
                    sim.step().expect("warmup tick");
                    b.iter(|| sim.step().expect("bench tick"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, tick_throughput);
criterion_main!(benches);
