//! Ablation: rebuild-per-tick vs. dynamically maintained indexes, measured
//! through **full engine ticks** (decision + action + post-processing +
//! movement + resurrection + index maintenance) rather than structures in
//! isolation.
//!
//! Section 5.3 argues that for volatile data (unit positions change every
//! tick) it is cheaper to rebuild the per-tick indexes from scratch than to
//! maintain dynamic structures.  With the cross-tick `IndexManager` the
//! engine can run the same battle under every maintenance policy, so the
//! claim is measured where it matters — end-to-end tick latency:
//!
//! * `rebuild` — `MaintenancePolicy::RebuildEachTick` (the paper's choice);
//! * `incremental` — maintained `DynamicAggGrid`s patched with per-unit
//!   deltas after each tick;
//! * `adaptive` — per-partition choice between the two by update ratio.
//!
//! The policies must agree on the simulated battle (state digests are
//! compared before anything is timed); they differ only in where the index
//! time goes.  A smaller microbenchmark over the 1-D dynamic treap is kept
//! at the end for continuity with the structure-level measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_battle::{BattleScenario, ScenarioConfig};
use sgl_core::engine::Simulation;
use sgl_exec::{ExecConfig, ExecMode, MaintenancePolicy};
use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::dynamic_agg::DynamicAggIndex;
use sgl_index::{Point2, Rect};

fn policies() -> [(&'static str, MaintenancePolicy); 3] {
    [
        ("rebuild", MaintenancePolicy::RebuildEachTick),
        ("incremental", MaintenancePolicy::Incremental),
        ("adaptive", MaintenancePolicy::adaptive()),
    ]
}

fn simulation_under(scenario: &BattleScenario, policy: MaintenancePolicy) -> Simulation {
    let mut sim = scenario.build_simulation(ExecMode::Indexed);
    sim.set_exec_config(ExecConfig::indexed(&scenario.schema).with_policy(policy));
    sim
}

/// Full engine ticks under each maintenance policy, at two unit counts.
fn engine_ticks_per_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_vs_dynamic_engine");
    group.sample_size(10);
    for &units in &[300usize, 900] {
        let scenario = BattleScenario::generate(ScenarioConfig {
            units,
            density: 0.02,
            seed: 17,
            ..ScenarioConfig::default()
        });
        // The three policies must simulate the same battle before we time
        // them: compare state digests over a short prefix.
        let mut reference = simulation_under(&scenario, MaintenancePolicy::RebuildEachTick);
        let reference_digests: Vec<_> = (0..5)
            .map(|_| {
                reference.step().expect("reference tick");
                reference.digest()
            })
            .collect();
        for (name, policy) in policies() {
            let mut check = simulation_under(&scenario, policy);
            for (tick, expected) in reference_digests.iter().enumerate() {
                check.step().expect("check tick");
                assert_eq!(check.digest(), *expected, "{name} diverged at tick {tick}");
            }
        }

        for (name, policy) in policies() {
            group.bench_with_input(BenchmarkId::new(name, units), &units, |b, _| {
                let mut sim = simulation_under(&scenario, policy);
                // Warm the maintained structures so the measurement reflects
                // steady-state maintenance, not the initial build.
                sim.step().expect("warmup tick");
                b.iter(|| sim.step().expect("bench tick"));
            });
        }
    }
    group.finish();
}

/// Where the time goes: per-policy exec vs. maintenance phase split after a
/// fixed number of ticks (printed, not timed — the interesting quantity is
/// the ratio).
fn phase_split_report(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_vs_dynamic_phase_split");
    group.sample_size(10);
    let scenario = BattleScenario::generate(ScenarioConfig {
        units: 500,
        density: 0.02,
        seed: 23,
        ..ScenarioConfig::default()
    });
    for (name, policy) in policies() {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = simulation_under(&scenario, policy);
                sim.run(5).expect("run");
                let summary_timings = sim
                    .history()
                    .iter()
                    .fold(std::time::Duration::ZERO, |acc, r| {
                        acc + r.timings.exec + r.timings.maintain
                    });
                summary_timings
            });
        });
    }
    group.finish();
}

/// The original structure-level microbenchmark (1-D base level): rebuild a
/// layered tree vs. patch the dynamic treap vs. scan, at 10 % / 100 %
/// movement per tick.
fn structure_microbench(c: &mut Criterion) {
    struct Workload {
        xs: Vec<f64>,
        values: Vec<f64>,
        movers: Vec<Vec<(usize, f64)>>,
        range: f64,
    }

    fn workload(n: usize, move_fraction: f64, ticks: usize, seed: u64) -> Workload {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let world = 1000.0;
        let xs: Vec<f64> = (0..n).map(|_| next() * world).collect();
        let values: Vec<f64> = (0..n).map(|i| ((i * 13) % 101) as f64).collect();
        let mut movers = Vec::with_capacity(ticks);
        for _ in 0..ticks {
            let mut tick_moves = Vec::new();
            for i in 0..n {
                if next() < move_fraction {
                    tick_moves.push((i, (next() - 0.5) * 4.0));
                }
            }
            movers.push(tick_moves);
        }
        Workload {
            xs,
            values,
            movers,
            range: 25.0,
        }
    }

    fn run_rebuild(w: &Workload) -> f64 {
        let mut xs = w.xs.clone();
        let mut total = 0.0;
        for moves in &w.movers {
            for (i, dx) in moves {
                xs[*i] += dx;
            }
            let entries: Vec<AggEntry> = xs
                .iter()
                .zip(&w.values)
                .map(|(x, v)| AggEntry::new(Point2::new(*x, 0.0), vec![*v]))
                .collect();
            let tree = LayeredAggTree::build(&entries, 1, true);
            for x in &xs {
                let acc = tree.query(&Rect::new(x - w.range, x + w.range, -1.0, 1.0));
                total += acc.count() + acc.channel_sum(0);
            }
        }
        total
    }

    fn run_dynamic(w: &Workload) -> f64 {
        let mut xs = w.xs.clone();
        let mut index = DynamicAggIndex::new();
        for (i, (x, v)) in xs.iter().zip(&w.values).enumerate() {
            index.insert(i as u64, *x, *v);
        }
        let mut total = 0.0;
        for moves in &w.movers {
            for (i, dx) in moves {
                let old = xs[*i];
                xs[*i] += dx;
                index.update_coord(*i as u64, old, xs[*i], w.values[*i]);
            }
            for x in &xs {
                let s = index.query(x - w.range, x + w.range);
                total += s.count as f64 + s.sum;
            }
        }
        total
    }

    let mut group = c.benchmark_group("rebuild_vs_dynamic_structure");
    group.sample_size(10);
    for &(label, fraction) in &[("move10pct", 0.1), ("move100pct", 1.0)] {
        let w = workload(4000, fraction, 3, 17);
        let reference = run_rebuild(&w);
        let tolerance = reference.abs() * 1e-9 + 1e-6;
        assert!((reference - run_dynamic(&w)).abs() < tolerance);
        group.bench_with_input(BenchmarkId::new("rebuild", label), &w, |b, w| {
            b.iter(|| run_rebuild(w))
        });
        group.bench_with_input(BenchmarkId::new("dynamic", label), &w, |b, w| {
            b.iter(|| run_dynamic(w))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    engine_ticks_per_policy,
    phase_split_report,
    structure_microbench
);
criterion_main!(benches);
