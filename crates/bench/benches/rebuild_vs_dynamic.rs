//! Ablation: rebuild-per-tick vs. dynamically maintained indexes.
//!
//! Section 5.3 argues that for volatile data (unit positions change every
//! tick) it is cheaper to rebuild the per-tick indexes from scratch than to
//! maintain dynamic structures.  This bench measures that claim on the
//! x-sorted base level every per-tick index shares: each simulated "tick"
//! moves a fraction of the units, then answers one range-count/sum probe per
//! unit.
//!
//! * `rebuild` — build a fresh [`LayeredAggTree`] each tick (paper's choice);
//! * `dynamic` — keep a [`DynamicAggIndex`] and apply only the position
//!   updates of the units that moved;
//! * `naive` — no index at all (scan per probe).
//!
//! The crossover depends on the fraction of units that move per tick, so the
//! bench sweeps 10 % and 100 % movement at a fixed unit count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::dynamic_agg::DynamicAggIndex;
use sgl_index::{Point2, Rect};

struct Workload {
    /// Position (x) and value per unit, mutated tick by tick.
    xs: Vec<f64>,
    values: Vec<f64>,
    /// Precomputed per-tick displacements for the moving subset.
    movers: Vec<Vec<(usize, f64)>>,
    range: f64,
}

fn workload(n: usize, move_fraction: f64, ticks: usize, seed: u64) -> Workload {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let world = 1000.0;
    let mut xs = Vec::with_capacity(n);
    for _ in 0..n {
        xs.push(next() * world);
    }
    let values: Vec<f64> = (0..n).map(|i| ((i * 13) % 101) as f64).collect();
    let mut movers = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        let mut tick_moves = Vec::new();
        for i in 0..n {
            if next() < move_fraction {
                tick_moves.push((i, (next() - 0.5) * 4.0));
            }
        }
        movers.push(tick_moves);
    }
    Workload { xs, values, movers, range: 25.0 }
}

fn run_rebuild(w: &Workload) -> f64 {
    let mut xs = w.xs.clone();
    let mut total = 0.0;
    for moves in &w.movers {
        for (i, dx) in moves {
            xs[*i] += dx;
        }
        let entries: Vec<AggEntry> =
            xs.iter().zip(&w.values).map(|(x, v)| AggEntry::new(Point2::new(*x, 0.0), vec![*v])).collect();
        let tree = LayeredAggTree::build(&entries, 1, true);
        for x in &xs {
            let acc = tree.query(&Rect::new(x - w.range, x + w.range, -1.0, 1.0));
            total += acc.count() + acc.channel_sum(0);
        }
    }
    total
}

fn run_dynamic(w: &Workload) -> f64 {
    let mut xs = w.xs.clone();
    let mut index = DynamicAggIndex::new();
    for (i, (x, v)) in xs.iter().zip(&w.values).enumerate() {
        index.insert(i as u64, *x, *v);
    }
    let mut total = 0.0;
    for moves in &w.movers {
        for (i, dx) in moves {
            let old = xs[*i];
            xs[*i] += dx;
            index.update_coord(*i as u64, old, xs[*i], w.values[*i]);
        }
        for x in &xs {
            let s = index.query(x - w.range, x + w.range);
            total += s.count as f64 + s.sum;
        }
    }
    total
}

fn run_naive(w: &Workload) -> f64 {
    let mut xs = w.xs.clone();
    let mut total = 0.0;
    for moves in &w.movers {
        for (i, dx) in moves {
            xs[*i] += dx;
        }
        for x in &xs {
            let lo = x - w.range;
            let hi = x + w.range;
            let mut count = 0.0;
            let mut sum = 0.0;
            for (other, v) in xs.iter().zip(&w.values) {
                if *other >= lo && *other <= hi {
                    count += 1.0;
                    sum += v;
                }
            }
            total += count + sum;
        }
    }
    total
}

fn rebuild_vs_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild_vs_dynamic");
    group.sample_size(10);
    let n = 4000usize;
    let ticks = 3usize;
    for &(label, fraction) in &[("move10pct", 0.1), ("move100pct", 1.0)] {
        let w = workload(n, fraction, ticks, 17);
        // The three strategies must agree (up to float summation order)
        // before we time them.
        let reference = run_rebuild(&w);
        let tolerance = reference.abs() * 1e-9 + 1e-6;
        assert!((reference - run_dynamic(&w)).abs() < tolerance);
        assert!((reference - run_naive(&w)).abs() < tolerance);
        group.bench_with_input(BenchmarkId::new("rebuild", label), &w, |b, w| b.iter(|| run_rebuild(w)));
        group.bench_with_input(BenchmarkId::new("dynamic", label), &w, |b, w| b.iter(|| run_dynamic(w)));
        if n <= 4000 {
            group.bench_with_input(BenchmarkId::new("naive", label), &w, |b, w| b.iter(|| run_naive(w)));
        }
    }
    group.finish();
}

criterion_group!(benches, rebuild_vs_dynamic);
criterion_main!(benches);
