//! Figure 10: total simulation time vs. number of units at constant 1 %
//! density, naive vs. indexed execution.
//!
//! The paper sweeps 2 000–14 000 units for 500 ticks; a Criterion benchmark
//! measures seconds/tick on a smaller sweep (the quantity is proportional).
//! Run `cargo run --release --bin repro -- fig10` for the full table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sgl_battle::{BattleScenario, ScenarioConfig};
use sgl_exec::ExecMode;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_time_per_tick");
    group.sample_size(10);
    for &units in &[250usize, 500, 1000, 2000] {
        let scenario = BattleScenario::generate(ScenarioConfig {
            units,
            density: 0.01,
            seed: 42,
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("indexed", units), &units, |b, _| {
            let mut sim = scenario.build_simulation(ExecMode::Indexed);
            b.iter(|| sim.step().unwrap());
        });
        // The naive engine is quadratic; keep it to the sizes that finish in
        // reasonable benchmark time (the repro binary covers the full sweep).
        if units <= 500 {
            group.bench_with_input(BenchmarkId::new("naive", units), &units, |b, _| {
                let mut sim = scenario.build_simulation(ExecMode::Naive);
                b.iter(|| sim.step().unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
