//! Shared helpers for the benchmark harness (see `benches/`), plus the
//! deterministic perf suite behind the CI perf job.
//!
//! Three pieces:
//!
//! * [`run_perf_suite`] — engine-level scenarios at fixed seeds, timed with
//!   the engine's own [`PhaseTimings`] (wall clock per phase, no criterion
//!   sampling) and summarised per scenario as
//!   `{ticks/sec, per-phase µs, chosen backends}` — the one machine-readable
//!   format the CI perf gate and the committed `BENCH_*.json` trajectory
//!   share;
//! * [`report_to_json`] / [`parse_report`] / [`compare_reports`] — the JSON
//!   round trip and the ≤`max_regression` gate against a baseline committed
//!   in-repo.  Wall clock does not transfer between machines, so the gate
//!   compares each scenario's throughput *relative to the suite's anchor
//!   scenario measured in the same run* — machine speed cancels;
//! * [`calibrate_cost_constants`] — micro-measurements of the real index
//!   structures producing the [`CostConstants`] the cost-based planner
//!   prices with (the checked-in defaults come from this function).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use sgl_battle::{BattleScenario, ScenarioConfig};
use sgl_core::algebra::cost::CostConstants;
use sgl_core::engine::{PhaseTimings, Simulation};
use sgl_core::exec::{ExecConfig, ExecMode, PlannerMode};
use sgl_index::agg_tree::{AggEntry, LayeredAggTree};
use sgl_index::grid::DynamicAggGrid;
use sgl_index::kdtree::KdTree;
use sgl_index::quadtree::AggQuadTree;
use sgl_index::traits::{AggIndex, DeltaCostClass, IndexDelta, IndexRow};
use sgl_index::{Point2, Rect};

// ---------------------------------------------------------------------------
// Perf suite
// ---------------------------------------------------------------------------

/// The scenario every other measurement is normalised against (machine
/// speed cancels in the ratio).
pub const ANCHOR_SCENARIO: &str = "naive_150";

/// Mean per-tick wall-clock microseconds per engine phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseMicros {
    /// Decision/action phases (incl. per-tick index building).
    pub exec: f64,
    /// Post-processing.
    pub post: f64,
    /// Movement.
    pub movement: f64,
    /// Resurrection rule.
    pub resurrect: f64,
    /// Cross-tick index maintenance.
    pub maintain: f64,
}

impl PhaseMicros {
    fn from_timings(total: &PhaseTimings, ticks: usize) -> PhaseMicros {
        let per = |d: std::time::Duration| d.as_secs_f64() * 1e6 / ticks.max(1) as f64;
        PhaseMicros {
            exec: per(total.exec),
            post: per(total.post),
            movement: per(total.movement),
            resurrect: per(total.resurrect),
            maintain: per(total.maintain),
        }
    }
}

/// Mean page allocations (fresh pages + spill fault-ins) per tick, per
/// engine phase — the bench-report mirror of the engine's `PhaseAllocs`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseAllocRates {
    /// Tick-start fault-in of pages evicted by the previous tick.
    pub fault_in: f64,
    /// Decision/action phases.
    pub exec: f64,
    /// Post-processing.
    pub post: f64,
    /// Movement.
    pub movement: f64,
    /// Resurrection rule.
    pub resurrect: f64,
    /// Cross-tick index maintenance.
    pub maintain: f64,
}

/// Memory footprint of one scenario's environment table.  Unlike wall
/// clock, every field is deterministic — the simulated battles are seeded —
/// so these numbers transfer between machines exactly and the footprint
/// gate can compare them without anchor normalisation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryMetrics {
    /// Resident heap bytes per row at the end of the measured run.
    pub bytes_per_row: f64,
    /// High-water mark of resident pages over the run.
    pub peak_resident_pages: f64,
    /// Resident heap bytes at the end of the run.
    pub resident_bytes: f64,
    /// Mean page allocations per tick, split by phase.
    pub allocs_per_tick: PhaseAllocRates,
}

/// One scenario's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfScenarioResult {
    /// Units simulated.
    pub units: usize,
    /// Ticks simulated (after warmup).
    pub ticks: usize,
    /// Simulated ticks per wall-clock second.
    pub ticks_per_sec: f64,
    /// Throughput relative to the anchor scenario of the same run.
    pub relative: f64,
    /// Mean per-tick phase timings.
    pub phase_us: PhaseMicros,
    /// Memory footprint of the environment table.  `None` when parsed from
    /// a baseline written before the columnar storage layer (schema ≤
    /// BENCH_8); the footprint gate skips such scenarios.
    pub memory: Option<MemoryMetrics>,
    /// Chosen physical backend per aggregate call site, as
    /// `backend/maintenance` labels (the executed configuration; under the
    /// cost-based planner this is what the cost model selected).
    pub backends: BTreeMap<String, String>,
}

/// The whole suite's measurements (scenario name → result, sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Name of the scenario the `relative` values are normalised against.
    /// Relatives from reports with different anchors are incomparable; the
    /// gate refuses to compare them.
    pub anchor: String,
    /// Per-scenario results.
    pub scenarios: BTreeMap<String, PerfScenarioResult>,
    /// Scenario names enforced by the regression gate.
    pub tracked: Vec<String>,
}

/// Which script roster a perf scenario registers.
#[derive(Clone, Copy, PartialEq)]
enum ScriptRoster {
    /// The knight/archer/healer battle scripts (aggregate-probe heavy).
    BattleDefault,
    /// One steering script for every unit (scalar-arithmetic heavy — the
    /// workload class the register bytecode accelerates most).
    Steering,
    /// One sentry script for every unit: stationary units probing fixed
    /// sight rectangles, acting only when an enemy wanders into reach.
    /// Near-zero churn — the workload class materialized answers serve.
    Sentry,
}

struct ScenarioSpec {
    name: &'static str,
    units: usize,
    density: f64,
    ticks: usize,
    tracked: bool,
    config: fn(&BattleScenario) -> ExecConfig,
    roster: ScriptRoster,
}

/// SGL source of the steering script: a damped flocking rule — blend
/// attraction to the enemy centroid with cohesion toward allies, scaled by
/// health-derived bravery, then normalise the step vector.  Most of its
/// per-unit cost is scalar arithmetic over `let` bindings rather than
/// aggregate probes, so it isolates the script-evaluation overhead the
/// bytecode VM removes.
const STEERING_SCRIPT: &str = r#"
main(u) {
  (let visible = CountEnemiesInRange(u, u.sight))
  (let in_reach = CountEnemiesInRange(u, u.range))
  (let ec = CentroidOfEnemies(u, u.sight))
  (let ac = CentroidOfAllies(u, u.sight))
  (let dxe = ec.x - u.posx)
  (let dye = ec.y - u.posy)
  (let de = sqrt(dxe * dxe + dye * dye) + 1.0)
  (let dxa = ac.x - u.posx)
  (let dya = ac.y - u.posy)
  (let da = sqrt(dxa * dxa + dya * dya) + 1.0)
  (let press = (visible * 1.0) / (visible + u.morale + 1))
  (let vitality = u.health / u.max_health)
  (let brave = vitality * (1.0 - press))
  (let fear = 1.0 - brave)
  (let chase_x = brave * dxe / de)
  (let chase_y = brave * dye / de)
  (let flee_x = 0.0 - fear * dxe / de)
  (let flee_y = 0.0 - fear * dye / de)
  (let cohere_x = 0.25 * dxa / da)
  (let cohere_y = 0.25 * dya / da)
  (let jitter = abs(dxe) - abs(dye))
  (let bias = jitter / (abs(jitter) + 8.0))
  (let sx = chase_x + flee_x + cohere_x + 0.05 * bias)
  (let sy = chase_y + flee_y + cohere_y - 0.05 * bias)
  (let mag = sqrt(sx * sx + sy * sy) + 0.001)
  (let step_x = 3.0 * sx / mag)
  (let step_y = 3.0 * sy / mag) {
    if in_reach > 0 and u.cooldown = 0 then
      perform Strike(u, getNearestEnemy(u).key);
    else
      perform MoveInDirection(u, u.posx + step_x, u.posy + step_y);
  }
}
"#;

/// Build a simulation running [`STEERING_SCRIPT`] on every unit of a
/// generated battle (same schema, mechanics and seed as the default roster).
fn build_steering(scenario: &BattleScenario, exec: ExecConfig) -> Simulation {
    use sgl_core::engine::UnitSelector;
    sgl_core::GameBuilder::new(
        std::sync::Arc::clone(&scenario.schema),
        sgl_battle::battle_registry(),
        sgl_battle::battle_mechanics(
            &scenario.schema,
            scenario.world_side,
            scenario.config.resurrect,
        ),
    )
    .exec_config(exec)
    .seed(scenario.config.seed)
    .script("steering", STEERING_SCRIPT, UnitSelector::All)
    .build(scenario.table.clone())
    .expect("steering script compiles")
}

/// SGL source of the sentry script: a garrison of long-range watchtowers
/// that never move.  Each unit keeps three *wide* standing subscriptions
/// (many grid cells per probe — the regime where a maintained structure
/// still pays per-cell fold cost on every evaluation) plus one short-range
/// trigger, and acts only when an enemy is inside weapon reach.  The
/// subscription rectangles are position-derived and positions never
/// change, so the questions repeat verbatim tick after tick; in a sparse
/// world almost no tick writes a row.  This is the low-churn regime where
/// holding materialized answers must beat incremental index maintenance.
const SENTRY_SCRIPT: &str = r#"
main(u) {
  (let visible = CountEnemiesInRange(u, u.sight * 50))
  (let threat = EnemyStrengthInRange(u, u.sight * 50))
  (let backup = CountAlliesInRange(u, u.sight * 50))
  (let ec = CentroidOfEnemies(u, u.sight * 50))
  (let wounded = MissingAllyHealthInRange(u, u.sight * 50))
  (let in_reach = CountEnemiesInRange(u, u.range)) {
    if visible > 0 and in_reach > 0 and u.cooldown = 0 and threat + u.morale + ec.x * 0.001 + wounded > backup then
      perform FireAt(u, getNearestEnemy(u).key);
  }
}
"#;

/// Build a simulation running [`SENTRY_SCRIPT`] on every unit of a
/// generated battle (same schema, mechanics and seed as the default roster).
fn build_sentry(scenario: &BattleScenario, exec: ExecConfig) -> Simulation {
    use sgl_core::engine::UnitSelector;
    sgl_core::GameBuilder::new(
        std::sync::Arc::clone(&scenario.schema),
        sgl_battle::battle_registry(),
        sgl_battle::battle_mechanics(
            &scenario.schema,
            scenario.world_side,
            scenario.config.resurrect,
        ),
    )
    .exec_config(exec)
    .seed(scenario.config.seed)
    .script("sentry", SENTRY_SCRIPT, UnitSelector::All)
    .build(scenario.table.clone())
    .expect("sentry script compiles")
}

/// The fixed scenario list: one naive anchor, the three plan-interpreter
/// configurations the gate has tracked since PR 4 (pinned to
/// [`ExecMode::Indexed`] — the presets consult `SGL_EXEC_MODE`, and perf
/// numbers must not depend on an environment knob), and a register-bytecode
/// twin for each so every report carries both sides of the compiled-vs-
/// interpreter comparison.  Everything is seeded; the simulated battles are
/// bit-reproducible, only the wall clock varies.
fn scenario_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: ANCHOR_SCENARIO,
            units: 150,
            density: 0.01,
            ticks: 10,
            tracked: false,
            roster: ScriptRoster::BattleDefault,
            config: |s| ExecConfig::naive(&s.schema),
        },
        ScenarioSpec {
            name: "indexed_rebuild_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| ExecConfig::indexed(&s.schema).with_mode(ExecMode::Indexed),
        },
        ScenarioSpec {
            name: "indexed_incremental_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "indexed_costbased_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::cost_based(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_planner(PlannerMode::cost_based(4))
            },
        },
        ScenarioSpec {
            name: "compiled_rebuild_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| ExecConfig::indexed(&s.schema).with_mode(ExecMode::Compiled),
        },
        ScenarioSpec {
            name: "compiled_incremental_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Compiled)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "indexed_sparse_800",
            units: 800,
            density: 0.0005,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "compiled_sparse_800",
            units: 800,
            density: 0.0005,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Compiled)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "indexed_steering_600",
            units: 600,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::Steering,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "compiled_steering_600",
            units: 600,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::Steering,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Compiled)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "compiled_costbased_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::cost_based(&s.schema)
                    .with_mode(ExecMode::Compiled)
                    .with_planner(PlannerMode::cost_based(4))
            },
        },
        // Materialized-answer twins: the same worlds as the incremental
        // scenarios above, but every legal call site holds its folded
        // answer and patches it from the tick's delta stream.  The battle
        // rosters move every unit every tick, so each probe's subscription
        // rectangle changes and every answer misses — these two twins
        // document the churn penalty in the report (tracked, not gated).
        // The calm pair below is the gated low-churn case.
        ScenarioSpec {
            name: "materialized_sparse_800",
            units: 800,
            density: 0.0005,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::cost_based(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_planner(PlannerMode::ForceMaterialized)
            },
        },
        ScenarioSpec {
            name: "materialized_incremental_400",
            units: 400,
            density: 0.01,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::BattleDefault,
            config: |s| {
                ExecConfig::cost_based(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_planner(PlannerMode::ForceMaterialized)
            },
        },
        // The low-churn pair the materialized gate enforces: a stationary
        // sentry garrison in a sparse world.  Subscription rectangles never
        // move and almost no tick writes a row, so the materialized side
        // serves O(1) folded answers while the incremental side re-probes
        // its maintained structures for every call.
        ScenarioSpec {
            name: "indexed_calm_1600",
            units: 1600,
            density: 0.0005,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::Sentry,
            config: |s| {
                ExecConfig::indexed(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_policy(sgl_core::exec::MaintenancePolicy::Incremental)
            },
        },
        ScenarioSpec {
            name: "materialized_calm_1600",
            units: 1600,
            density: 0.0005,
            ticks: 25,
            tracked: true,
            roster: ScriptRoster::Sentry,
            config: |s| {
                ExecConfig::cost_based(&s.schema)
                    .with_mode(ExecMode::Indexed)
                    .with_planner(PlannerMode::ForceMaterialized)
            },
        },
    ]
}

/// Pair each `compiled_*` scenario with its `indexed_*` interpreter twin and
/// return `(pair suffix, compiled ticks/sec ÷ interpreter ticks/sec)`.
/// Wall clock cancels inside a pair — both sides ran in the same process —
/// so the ratios transfer between machines the way `relative` does.
pub fn compiled_speedups(report: &PerfReport) -> Vec<(String, f64)> {
    report
        .scenarios
        .iter()
        .filter_map(|(name, compiled)| {
            let suffix = name.strip_prefix("compiled_")?;
            let interp = report.scenarios.get(&format!("indexed_{suffix}"))?;
            Some((
                suffix.to_string(),
                compiled.ticks_per_sec / interp.ticks_per_sec.max(1e-9),
            ))
        })
        .collect()
}

/// Gate: every compiled scenario must beat its interpreter twin by at least
/// `min_speedup` (1.0 = "never slower").  Returns violations (empty = pass).
/// A report with no compiled/interpreter pairs fails — the comparison must
/// not silently disappear from the suite.
pub fn compiled_gate(report: &PerfReport, min_speedup: f64) -> Vec<String> {
    let speedups = compiled_speedups(report);
    if speedups.is_empty() {
        return vec!["no compiled/interpreter scenario pairs in the report".into()];
    }
    speedups
        .into_iter()
        .filter(|(_, ratio)| *ratio < min_speedup)
        .map(|(suffix, ratio)| {
            format!(
                "`compiled_{suffix}` ran at {ratio:.2}× its interpreter twin \
                 `indexed_{suffix}` (gate requires ≥ {min_speedup:.2}×)"
            )
        })
        .collect()
}

/// Pair each `materialized_*` scenario with its `indexed_*` incremental
/// twin and return `(pair suffix, materialized ticks/sec ÷ incremental
/// ticks/sec)`.  Both sides of a pair run in the same process, so wall
/// clock cancels.
pub fn materialized_speedups(report: &PerfReport) -> Vec<(String, f64)> {
    report
        .scenarios
        .iter()
        .filter_map(|(name, mat)| {
            let suffix = name.strip_prefix("materialized_")?;
            let interp = report.scenarios.get(&format!("indexed_{suffix}"))?;
            Some((suffix.to_string(), mat.ticks_per_sec / interp.ticks_per_sec))
        })
        .collect()
}

/// The low-churn pair suffixes where holding materialized answers must beat
/// incremental index maintenance (the high-churn pairs are tracked for the
/// trajectory but not gated — the planner is *expected* to walk away from
/// materialization there, which `tests/cost_planner.rs` pins).
pub const MATERIALIZED_LOW_CHURN_SUFFIXES: &[&str] = &["calm_1600"];

/// Gate: every low-churn materialized scenario must beat its incremental
/// twin by at least `min_speedup`.  Returns the violations (empty = pass).
pub fn materialized_gate(report: &PerfReport, min_speedup: f64) -> Vec<String> {
    let speedups = materialized_speedups(report);
    let mut violations = Vec::new();
    for suffix in MATERIALIZED_LOW_CHURN_SUFFIXES {
        match speedups.iter().find(|(s, _)| s == suffix) {
            Some((_, ratio)) if *ratio < min_speedup => violations.push(format!(
                "`materialized_{suffix}` ran at {ratio:.2}× its incremental twin \
                 (gate requires ≥ {min_speedup:.2}×)"
            )),
            Some(_) => {}
            None => violations.push(format!(
                "low-churn pair `{suffix}` missing from the report — the \
                 materialized gate would be vacuous"
            )),
        }
    }
    violations
}

fn run_scenario(spec: &ScenarioSpec) -> PerfScenarioResult {
    let scenario = BattleScenario::generate(ScenarioConfig {
        units: spec.units,
        density: spec.density,
        seed: 20260730,
        ..ScenarioConfig::default()
    });
    let mut sim: Simulation = match spec.roster {
        ScriptRoster::BattleDefault => scenario.build_with_config((spec.config)(&scenario)),
        ScriptRoster::Steering => build_steering(&scenario, (spec.config)(&scenario)),
        ScriptRoster::Sentry => build_sentry(&scenario, (spec.config)(&scenario)),
    };
    // One warmup tick so maintained structures and lazy caches exist before
    // anything is timed.
    sim.step().expect("warmup tick");
    let history_start = sim.history().len();
    let start = Instant::now();
    sim.run(spec.ticks).expect("perf ticks");
    let elapsed = start.elapsed().as_secs_f64();
    let mut totals = PhaseTimings::default();
    let mut allocs = sgl_core::engine::PhaseAllocs::default();
    for report in &sim.history()[history_start..] {
        totals.accumulate(&report.timings);
        allocs.accumulate(&report.allocs);
    }
    let memory = sim
        .history()
        .last()
        .map(|last| {
            let per_tick = |v: u64| v as f64 / spec.ticks.max(1) as f64;
            MemoryMetrics {
                bytes_per_row: last.memory.bytes_per_row,
                peak_resident_pages: last.memory.peak_resident_pages as f64,
                resident_bytes: last.memory.resident_bytes as f64,
                allocs_per_tick: PhaseAllocRates {
                    fault_in: per_tick(allocs.fault_in),
                    exec: per_tick(allocs.exec),
                    post: per_tick(allocs.post),
                    movement: per_tick(allocs.movement),
                    resurrect: per_tick(allocs.resurrect),
                    maintain: per_tick(allocs.maintain),
                },
            }
        })
        .expect("at least the warmup tick ran");
    let backends = sim
        .physical_choices()
        .into_iter()
        .map(|(name, backend, maintenance)| (name, format!("{backend}/{maintenance}")))
        .collect();
    PerfScenarioResult {
        units: spec.units,
        ticks: spec.ticks,
        ticks_per_sec: spec.ticks as f64 / elapsed.max(1e-9),
        relative: 0.0, // filled by the caller once the anchor is known
        phase_us: PhaseMicros::from_timings(&totals, spec.ticks),
        memory: Some(memory),
        backends,
    }
}

/// Run the whole deterministic perf suite.
pub fn run_perf_suite() -> PerfReport {
    let specs = scenario_specs();
    let mut report = PerfReport {
        anchor: ANCHOR_SCENARIO.to_string(),
        ..PerfReport::default()
    };
    for spec in &specs {
        let result = run_scenario(spec);
        if spec.tracked {
            report.tracked.push(spec.name.to_string());
        }
        report.scenarios.insert(spec.name.to_string(), result);
    }
    let anchor = report
        .scenarios
        .get(ANCHOR_SCENARIO)
        .map(|r| r.ticks_per_sec)
        .unwrap_or(1.0)
        .max(1e-9);
    for result in report.scenarios.values_mut() {
        result.relative = result.ticks_per_sec / anchor;
    }
    report
}

/// Gate: every tracked scenario's anchor-relative throughput must be at
/// least `(1 - max_regression)` of the baseline's.  Returns the violations
/// (empty = pass).  Scenarios missing from either side are violations too —
/// silently dropping a tracked scenario must not pass the gate.
pub fn compare_reports(
    current: &PerfReport,
    baseline: &PerfReport,
    max_regression: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.tracked.is_empty() {
        violations.push("baseline tracks no scenarios — the gate would be vacuous".into());
    }
    if current.anchor != baseline.anchor {
        violations.push(format!(
            "anchor mismatch: current run normalises against `{}`, baseline against `{}` — \
             the relatives are incomparable; regenerate the baseline",
            current.anchor, baseline.anchor
        ));
    }
    for name in &baseline.tracked {
        let Some(base) = baseline.scenarios.get(name) else {
            violations.push(format!(
                "tracked scenario `{name}` has no entry in the baseline's scenarios"
            ));
            continue;
        };
        let Some(cur) = current.scenarios.get(name) else {
            violations.push(format!(
                "tracked scenario `{name}` missing from current run"
            ));
            continue;
        };
        let floor = base.relative * (1.0 - max_regression);
        if cur.relative < floor {
            violations.push(format!(
                "`{name}` regressed: relative throughput {:.3} < {:.3} \
                 (baseline {:.3} − {:.0}% tolerance). If this PR changed the \
                 speed of the anchor scenario itself (the naive scan path), \
                 regenerate BENCH_BASELINE.json in the same PR instead.",
                cur.relative,
                floor,
                base.relative,
                max_regression * 100.0
            ));
        }
    }
    violations
}

/// Footprint gate: every tracked scenario's memory footprint must stay
/// within `(1 + max_regression)` of the baseline's, on both `bytes_per_row`
/// and `peak_resident_pages`.  The metrics are deterministic (seeded
/// battles), so no anchor normalisation is needed and the tolerance exists
/// only to absorb intentional layout changes below the gate's attention.
/// Returns the violations (empty = pass).
///
/// Scenarios whose baseline predates the memory telemetry (`memory` absent)
/// are skipped — the gate arms itself the first time a baseline with memory
/// fields is committed.  A *current* run without memory fields is a
/// violation: the telemetry must not silently disappear from the suite.
pub fn compare_memory(
    current: &PerfReport,
    baseline: &PerfReport,
    max_regression: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for name in &baseline.tracked {
        let (Some(base), Some(cur)) = (baseline.scenarios.get(name), current.scenarios.get(name))
        else {
            // compare_reports already reports missing tracked scenarios.
            continue;
        };
        let Some(base_mem) = &base.memory else {
            continue;
        };
        let Some(cur_mem) = &cur.memory else {
            violations.push(format!(
                "tracked scenario `{name}` lost its memory telemetry \
                 (baseline has it, current run does not)"
            ));
            continue;
        };
        let mut check = |metric: &str, cur_v: f64, base_v: f64| {
            let ceiling = base_v * (1.0 + max_regression);
            if cur_v > ceiling && cur_v - base_v > 1e-9 {
                violations.push(format!(
                    "`{name}` memory footprint regressed: {metric} {cur_v:.1} > {ceiling:.1} \
                     (baseline {base_v:.1} + {:.0}% tolerance). If the layout change is \
                     intentional, regenerate BENCH_BASELINE.json in the same PR.",
                    max_regression * 100.0
                ));
            }
        };
        check(
            "bytes_per_row",
            cur_mem.bytes_per_row,
            base_mem.bytes_per_row,
        );
        check(
            "peak_resident_pages",
            cur_mem.peak_resident_pages,
            base_mem.peak_resident_pages,
        );
    }
    violations
}

// ---------------------------------------------------------------------------
// JSON (no external deps in this workspace: hand-rolled writer + parser)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0".to_string()
    }
}

/// Serialise a report as pretty-printed JSON (the `BENCH_*.json` format).
pub fn report_to_json(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema_version\": 1,\n");
    let _ = writeln!(out, "  \"anchor\": \"{}\",", json_escape(&report.anchor));
    let tracked: Vec<String> = report
        .tracked
        .iter()
        .map(|t| format!("\"{}\"", json_escape(t)))
        .collect();
    let _ = writeln!(out, "  \"tracked\": [{}],", tracked.join(", "));
    out.push_str("  \"scenarios\": {\n");
    let count = report.scenarios.len();
    for (i, (name, r)) in report.scenarios.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", json_escape(name));
        let _ = writeln!(out, "      \"units\": {},", r.units);
        let _ = writeln!(out, "      \"ticks\": {},", r.ticks);
        let _ = writeln!(
            out,
            "      \"ticks_per_sec\": {},",
            fmt_f64(r.ticks_per_sec)
        );
        let _ = writeln!(out, "      \"relative\": {},", fmt_f64(r.relative));
        let _ = writeln!(
            out,
            "      \"phase_us\": {{\"exec\": {}, \"post\": {}, \"movement\": {}, \
             \"resurrect\": {}, \"maintain\": {}}},",
            fmt_f64(r.phase_us.exec),
            fmt_f64(r.phase_us.post),
            fmt_f64(r.phase_us.movement),
            fmt_f64(r.phase_us.resurrect),
            fmt_f64(r.phase_us.maintain)
        );
        if let Some(mem) = &r.memory {
            let _ = writeln!(
                out,
                "      \"memory\": {{\"bytes_per_row\": {}, \"peak_resident_pages\": {}, \
                 \"resident_bytes\": {}, \"allocs_per_tick\": {{\"fault_in\": {}, \
                 \"exec\": {}, \"post\": {}, \"movement\": {}, \"resurrect\": {}, \
                 \"maintain\": {}}}}},",
                fmt_f64(mem.bytes_per_row),
                fmt_f64(mem.peak_resident_pages),
                fmt_f64(mem.resident_bytes),
                fmt_f64(mem.allocs_per_tick.fault_in),
                fmt_f64(mem.allocs_per_tick.exec),
                fmt_f64(mem.allocs_per_tick.post),
                fmt_f64(mem.allocs_per_tick.movement),
                fmt_f64(mem.allocs_per_tick.resurrect),
                fmt_f64(mem.allocs_per_tick.maintain)
            );
        }
        let backends: Vec<String> = r
            .backends
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        let _ = writeln!(out, "      \"backends\": {{{}}}", backends.join(", "));
        let _ = writeln!(out, "    }}{}", if i + 1 < count { "," } else { "" });
    }
    out.push_str("  }\n}\n");
    out
}

/// A parsed JSON value (minimal: objects, arrays, strings, numbers, bools,
/// null — everything the `BENCH_*.json` format needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted map: key order is irrelevant to the format).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(_) => self.parse_number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }
}

/// Parse any JSON document (the subset the perf format uses).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing content"));
    }
    Ok(value)
}

fn get_f64(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number `{key}`"))
}

/// Parse a `BENCH_*.json` report back into a [`PerfReport`].
pub fn parse_report(text: &str) -> Result<PerfReport, String> {
    let root = parse_json(text)?;
    let obj = root.as_obj().ok_or("report must be a JSON object")?;
    let mut report = PerfReport {
        anchor: obj
            .get("anchor")
            .and_then(Json::as_str)
            .ok_or("missing `anchor` string")?
            .to_string(),
        ..PerfReport::default()
    };
    // A baseline without a tracked list would make the gate pass vacuously —
    // refuse to parse instead.
    let Some(Json::Arr(tracked)) = obj.get("tracked") else {
        return Err("missing `tracked` array".into());
    };
    for t in tracked {
        report.tracked.push(
            t.as_str()
                .ok_or("tracked entries must be strings")?
                .to_string(),
        );
    }
    let scenarios = obj
        .get("scenarios")
        .and_then(Json::as_obj)
        .ok_or("missing `scenarios` object")?;
    for (name, entry) in scenarios {
        let e = entry
            .as_obj()
            .ok_or_else(|| format!("scenario `{name}` must be an object"))?;
        let phases = e
            .get("phase_us")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("scenario `{name}` missing phase_us"))?;
        let mut backends = BTreeMap::new();
        if let Some(Json::Obj(map)) = e.get("backends") {
            for (k, v) in map {
                backends.insert(
                    k.clone(),
                    v.as_str()
                        .ok_or("backend labels must be strings")?
                        .to_string(),
                );
            }
        }
        // Optional on read: baselines up to BENCH_8 predate the memory
        // telemetry.  When the object is present, every field is required.
        let memory = match e.get("memory") {
            None => None,
            Some(m) => {
                let m = m
                    .as_obj()
                    .ok_or_else(|| format!("scenario `{name}` memory must be an object"))?;
                let rates = m
                    .get("allocs_per_tick")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| format!("scenario `{name}` memory missing allocs_per_tick"))?;
                Some(MemoryMetrics {
                    bytes_per_row: get_f64(m, "bytes_per_row")?,
                    peak_resident_pages: get_f64(m, "peak_resident_pages")?,
                    resident_bytes: get_f64(m, "resident_bytes")?,
                    allocs_per_tick: PhaseAllocRates {
                        fault_in: get_f64(rates, "fault_in")?,
                        exec: get_f64(rates, "exec")?,
                        post: get_f64(rates, "post")?,
                        movement: get_f64(rates, "movement")?,
                        resurrect: get_f64(rates, "resurrect")?,
                        maintain: get_f64(rates, "maintain")?,
                    },
                })
            }
        };
        report.scenarios.insert(
            name.clone(),
            PerfScenarioResult {
                units: get_f64(e, "units")? as usize,
                ticks: get_f64(e, "ticks")? as usize,
                ticks_per_sec: get_f64(e, "ticks_per_sec")?,
                relative: get_f64(e, "relative")?,
                phase_us: PhaseMicros {
                    exec: get_f64(phases, "exec")?,
                    post: get_f64(phases, "post")?,
                    movement: get_f64(phases, "movement")?,
                    resurrect: get_f64(phases, "resurrect")?,
                    maintain: get_f64(phases, "maintain")?,
                },
                memory,
                backends,
            },
        );
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Cost-constant calibration
// ---------------------------------------------------------------------------

fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

fn calib_rows(n: usize) -> Vec<IndexRow> {
    let mut state = 77u64;
    (0..n)
        .map(|i| {
            IndexRow::new(
                i as u64,
                Point2::new(lcg(&mut state) * 100.0, lcg(&mut state) * 100.0),
                vec![(i % 23) as f64],
            )
        })
        .collect()
}

fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / reps.max(1) as f64
}

/// Measure the cost-model constants on this machine from the real index
/// structures (µs per elementary operation).  The checked-in
/// [`CostConstants::default_calibration`] values are a rounded snapshot of
/// this; the perf binary prints a fresh measurement with `--calibrate`.
pub fn calibrate_cost_constants() -> CostConstants {
    let n = 2000usize;
    let rows = calib_rows(n);
    let entries: Vec<AggEntry> = rows
        .iter()
        .map(|r| AggEntry::new(r.point, r.values.clone()))
        .collect();
    let points: Vec<Point2> = rows.iter().map(|r| r.point).collect();
    let log_n = (n as f64).log2();
    let rect = Rect::new(20.0, 45.0, 20.0, 45.0);

    // Scan: visit every row, test containment, fold one channel.
    let scan_us = time_us(50, || {
        let mut acc = 0.0;
        for r in &rows {
            if rect.contains(&r.point) {
                acc += r.values[0];
            }
        }
        std::hint::black_box(acc);
    });

    let layered_build_us = time_us(5, || {
        std::hint::black_box(LayeredAggTree::build(&entries, 1, true));
    });
    let layered = LayeredAggTree::build(&entries, 1, true);
    let layered_probe_us = time_us(2000, || {
        std::hint::black_box(layered.query(&rect));
    });

    let quad_build_us = time_us(5, || {
        std::hint::black_box(AggQuadTree::build(&entries, 1, 8));
    });
    let quad = AggQuadTree::build(&entries, 1, 8);
    let quad_probe_us = time_us(2000, || {
        std::hint::black_box(quad.query(&rect));
    });
    // Rows a probe of this rectangle actually touches (for the per-row part).
    let matched = quad.query(&rect).count().max(1.0);

    let mut grid = DynamicAggGrid::new(0.0, 1);
    grid.rebuild(&rows);
    // The measured grid_delta constant is the cost of a Constant-class
    // delta; hold the structure to its advertised class.
    assert_eq!(
        AggIndex::delta_cost_class(&grid),
        DeltaCostClass::Constant,
        "DynamicAggGrid must advertise O(1) deltas"
    );
    let grid_build_us = time_us(5, || {
        let mut g = DynamicAggGrid::new(0.0, 1);
        g.rebuild(&rows);
        std::hint::black_box(&g);
    });
    let grid_probe_us = time_us(2000, || {
        std::hint::black_box(AggIndex::probe_rect(&grid, &rect));
    });
    let grid_delta_us = time_us(2000, || {
        let row = rows[17].clone();
        grid.apply_delta(&IndexDelta::Update {
            id: row.id,
            old_point: row.point,
            row,
        });
    });

    let kd_build_us = time_us(5, || {
        std::hint::black_box(KdTree::build(&points));
    });
    let kd = KdTree::build(&points);
    let kd_probe_us = time_us(2000, || {
        std::hint::black_box(kd.nearest(&Point2::new(50.0, 50.0)));
    });

    // Materialized answer store: a serve is one fingerprint lookup plus a
    // clone of the stored answer; one maintenance step is a delta × entry
    // relevance check (rect containment plus a channel-bits compare).
    let answers: std::collections::HashMap<u64, Vec<f64>> = (0..n as u64)
        .map(|k| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15), vec![1.0, 2.0]))
        .collect();
    let probe_keys: Vec<u64> = answers.keys().copied().take(16).collect();
    let mat_serve_us = time_us(2000, || {
        for k in &probe_keys {
            std::hint::black_box(answers.get(k).cloned());
        }
    });
    let mat_delta_us = time_us(2000, || {
        let mut relevant = 0usize;
        for r in rows.iter().take(64) {
            if rect.contains(&r.point) && r.values[0].to_bits() != 1 {
                relevant += 1;
            }
        }
        std::hint::black_box(relevant);
    });

    CostConstants {
        scan_row: (scan_us / n as f64).max(1e-6),
        build_layered_row: (layered_build_us / (n as f64 * log_n)).max(1e-6),
        probe_layered: (layered_probe_us / (3.0 * log_n)).max(1e-6),
        build_quad_row: (quad_build_us / n as f64).max(1e-6),
        probe_quad: (quad_probe_us / (2.0 * log_n + matched)).max(1e-6),
        build_kd_row: (kd_build_us / (n as f64 * log_n)).max(1e-6),
        probe_kd: (kd_probe_us / log_n).max(1e-6),
        // The sweep shares the sort-dominated profile of the layered build.
        sweep_row: (layered_build_us / (n as f64 * log_n)).max(1e-6),
        grid_delta: grid_delta_us.max(1e-6),
        grid_build_row: (grid_build_us / n as f64).max(1e-6),
        grid_probe_base: (grid_probe_us * 0.25).max(1e-6),
        grid_probe_row: (grid_probe_us * 0.75 / matched).max(1e-6),
        struct_overhead: CostConstants::default_calibration().struct_overhead,
        mat_delta: (mat_delta_us / 64.0).max(1e-6),
        mat_serve: (mat_serve_us / 16.0).max(1e-6),
    }
}

/// Render constants as a copy-pastable snippet (printed by `perf
/// --calibrate`).
pub fn constants_summary(c: &CostConstants) -> String {
    format!(
        "scan_row: {:.4}\nbuild_layered_row: {:.4}\nprobe_layered: {:.4}\n\
         build_quad_row: {:.4}\nprobe_quad: {:.4}\nbuild_kd_row: {:.4}\n\
         probe_kd: {:.4}\nsweep_row: {:.4}\ngrid_delta: {:.4}\n\
         grid_build_row: {:.4}\ngrid_probe_base: {:.4}\ngrid_probe_row: {:.4}\n\
         struct_overhead: {:.4}\nmat_delta: {:.4}\nmat_serve: {:.4}\n\
         break_even_update_rate: {:.3}\n",
        c.scan_row,
        c.build_layered_row,
        c.probe_layered,
        c.build_quad_row,
        c.probe_quad,
        c.build_kd_row,
        c.probe_kd,
        c.sweep_row,
        c.grid_delta,
        c.grid_build_row,
        c.grid_probe_base,
        c.grid_probe_row,
        c.struct_overhead,
        c.mat_delta,
        c.mat_serve,
        c.break_even_update_rate()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        let mut report = PerfReport {
            anchor: "naive_150".into(),
            tracked: vec!["indexed".into()],
            ..PerfReport::default()
        };
        let mut backends = BTreeMap::new();
        backends.insert("CountEnemiesInRange".into(), "grid/incremental".into());
        report.scenarios.insert(
            "naive_150".into(),
            PerfScenarioResult {
                units: 150,
                ticks: 10,
                ticks_per_sec: 100.0,
                relative: 1.0,
                phase_us: PhaseMicros {
                    exec: 900.0,
                    post: 50.0,
                    movement: 40.0,
                    resurrect: 5.0,
                    maintain: 0.0,
                },
                memory: None,
                backends: BTreeMap::new(),
            },
        );
        report.scenarios.insert(
            "indexed".into(),
            PerfScenarioResult {
                units: 400,
                ticks: 25,
                ticks_per_sec: 400.0,
                relative: 4.0,
                phase_us: PhaseMicros {
                    exec: 200.0,
                    post: 60.0,
                    movement: 45.0,
                    resurrect: 5.0,
                    maintain: 30.0,
                },
                memory: Some(MemoryMetrics {
                    bytes_per_row: 96.0,
                    peak_resident_pages: 22.0,
                    resident_bytes: 38400.0,
                    allocs_per_tick: PhaseAllocRates {
                        fault_in: 0.0,
                        exec: 0.0,
                        post: 0.2,
                        movement: 0.1,
                        resurrect: 0.0,
                        maintain: 0.0,
                    },
                }),
                backends,
            },
        );
        report
    }

    #[test]
    fn json_round_trips() {
        let report = sample_report();
        let json = report_to_json(&report);
        let parsed = parse_report(&json).expect("round trip parses");
        assert_eq!(parsed, report);
    }

    #[test]
    fn regression_gate_fires_on_relative_slowdowns() {
        let baseline = sample_report();
        let mut current = sample_report();
        assert!(compare_reports(&current, &baseline, 0.25).is_empty());
        // 20% down: inside the 25% tolerance.
        current.scenarios.get_mut("indexed").unwrap().relative = 3.2;
        assert!(compare_reports(&current, &baseline, 0.25).is_empty());
        // 30% down: outside.
        current.scenarios.get_mut("indexed").unwrap().relative = 2.8;
        let violations = compare_reports(&current, &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("indexed"));
        // A missing tracked scenario is a violation, not a silent pass.
        current.scenarios.remove("indexed");
        assert!(!compare_reports(&current, &baseline, 0.25).is_empty());
        // Relatives normalised against different anchors are incomparable.
        let mut moved = sample_report();
        moved.anchor = "naive_300".into();
        let violations = compare_reports(&moved, &baseline, 0.25);
        assert!(violations.iter().any(|v| v.contains("anchor mismatch")));
    }

    #[test]
    fn footprint_gate_fires_on_memory_regressions() {
        let baseline = sample_report();
        let mut current = sample_report();
        assert!(compare_memory(&current, &baseline, 0.25).is_empty());
        // 20% heavier: inside the 25% tolerance.
        current
            .scenarios
            .get_mut("indexed")
            .unwrap()
            .memory
            .as_mut()
            .unwrap()
            .bytes_per_row = 115.0;
        assert!(compare_memory(&current, &baseline, 0.25).is_empty());
        // 50% heavier: outside.
        current
            .scenarios
            .get_mut("indexed")
            .unwrap()
            .memory
            .as_mut()
            .unwrap()
            .bytes_per_row = 144.0;
        let violations = compare_memory(&current, &baseline, 0.25);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("bytes_per_row"));
        // Peak resident pages are gated independently.
        current
            .scenarios
            .get_mut("indexed")
            .unwrap()
            .memory
            .as_mut()
            .unwrap()
            .peak_resident_pages = 40.0;
        assert_eq!(compare_memory(&current, &baseline, 0.25).len(), 2);
        // Telemetry must not silently vanish from a tracked scenario.
        current.scenarios.get_mut("indexed").unwrap().memory = None;
        let violations = compare_memory(&current, &baseline, 0.25);
        assert!(violations
            .iter()
            .any(|v| v.contains("lost its memory telemetry")));
        // A pre-telemetry baseline (no memory fields) leaves the gate dormant.
        let mut old_baseline = sample_report();
        old_baseline.scenarios.get_mut("indexed").unwrap().memory = None;
        assert!(compare_memory(&sample_report(), &old_baseline, 0.25).is_empty());
    }

    #[test]
    fn memory_metrics_round_trip_and_stay_optional() {
        // With memory fields: full round trip.
        let report = sample_report();
        let json = report_to_json(&report);
        assert!(json.contains("\"memory\""));
        assert_eq!(parse_report(&json).unwrap(), report);
        // Pre-BENCH_9 baselines have no memory object — they must parse.
        let mut old = sample_report();
        for r in old.scenarios.values_mut() {
            r.memory = None;
        }
        let json = report_to_json(&old);
        assert!(!json.contains("\"memory\""));
        assert_eq!(parse_report(&json).unwrap(), old);
    }

    #[test]
    fn json_parser_handles_the_format_subset() {
        let v = parse_json(r#"{"a": [1, 2.5, "x\ny"], "b": {"c": true, "d": null}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert!(matches!(obj.get("a"), Some(Json::Arr(items)) if items.len() == 3));
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        // A report without a tracked list or anchor must not parse (the
        // gate would be vacuous / incomparable).
        assert!(parse_report("{\"schema_version\": 1, \"scenarios\": {}}").is_err());
        assert!(
            parse_report("{\"schema_version\": 1, \"tracked\": [], \"scenarios\": {}}").is_err()
        );
    }

    #[test]
    fn calibration_produces_positive_finite_constants() {
        let c = calibrate_cost_constants();
        for v in [
            c.scan_row,
            c.build_layered_row,
            c.probe_layered,
            c.build_quad_row,
            c.probe_quad,
            c.build_kd_row,
            c.probe_kd,
            c.sweep_row,
            c.grid_delta,
            c.grid_build_row,
            c.grid_probe_base,
            c.grid_probe_row,
        ] {
            assert!(v.is_finite() && v > 0.0, "{c:?}");
        }
        assert!(c.break_even_update_rate() > 0.0);
    }

    #[test]
    fn perf_suite_smoke() {
        // The full suite is CI-sized; here just prove one scenario runs and
        // produces a sane record (anchor scenario, 2 ticks).
        let spec = ScenarioSpec {
            name: "smoke",
            units: 30,
            density: 0.02,
            ticks: 2,
            tracked: false,
            roster: ScriptRoster::BattleDefault,
            config: |s| ExecConfig::indexed(&s.schema),
        };
        let result = run_scenario(&spec);
        assert_eq!(result.ticks, 2);
        assert!(result.ticks_per_sec > 0.0);
        assert!(result.phase_us.exec > 0.0);
        assert!(!result.backends.is_empty());
    }
}
