//! Deterministic perf runner behind the CI perf job.
//!
//! Runs the engine-level perf suite (fixed seeds, wall-clock per-phase
//! timings via the engine's `PhaseTimings` — no criterion sampling), writes
//! the machine-readable summary as `BENCH_10.json`, and fails with exit
//! code 1 if any gate fires:
//!
//! * a baseline was given and a tracked scenario's anchor-relative
//!   throughput regressed more than the tolerance (default 25 %);
//! * any `compiled_*` scenario failed to beat its `indexed_*` interpreter
//!   twin by `--min-compiled-speedup` (default 1.0 — never slower);
//! * a low-churn `materialized_*` scenario failed to beat its `indexed_*`
//!   incremental twin by `--min-materialized-speedup` (default 1.1);
//! * a tracked scenario's memory footprint (bytes/row or peak resident
//!   pages) grew more than `--max-footprint-regression` (default 25 %)
//!   over a baseline that carries memory fields.
//!
//! ```text
//! perf [--out PATH] [--baseline PATH] [--max-regression FRACTION]
//!      [--min-compiled-speedup RATIO] [--min-materialized-speedup RATIO]
//!      [--max-footprint-regression FRACTION] [--calibrate]
//! ```

use std::process::ExitCode;

use sgl_bench::{
    calibrate_cost_constants, compare_memory, compare_reports, compiled_gate, compiled_speedups,
    constants_summary, materialized_gate, materialized_speedups, parse_report, report_to_json,
    run_perf_suite,
};

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_10.json");
    let mut baseline_path: Option<String> = None;
    let mut max_regression = 0.25f64;
    let mut min_compiled_speedup = 1.0f64;
    let mut min_materialized_speedup = 1.1f64;
    let mut max_footprint_regression = 0.25f64;
    let mut calibrate = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a path")),
            "--max-regression" => {
                max_regression = args
                    .next()
                    .expect("--max-regression needs a fraction")
                    .parse()
                    .expect("--max-regression must be a number in (0, 1)");
            }
            "--min-compiled-speedup" => {
                min_compiled_speedup = args
                    .next()
                    .expect("--min-compiled-speedup needs a ratio")
                    .parse()
                    .expect("--min-compiled-speedup must be a positive number");
            }
            "--min-materialized-speedup" => {
                min_materialized_speedup = args
                    .next()
                    .expect("--min-materialized-speedup needs a ratio")
                    .parse()
                    .expect("--min-materialized-speedup must be a positive number");
            }
            "--max-footprint-regression" => {
                max_footprint_regression = args
                    .next()
                    .expect("--max-footprint-regression needs a fraction")
                    .parse()
                    .expect("--max-footprint-regression must be a number in (0, 1)");
            }
            "--calibrate" => calibrate = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: perf [--out PATH] [--baseline PATH] \
                     [--max-regression FRACTION] [--min-compiled-speedup RATIO] \
                     [--min-materialized-speedup RATIO] \
                     [--max-footprint-regression FRACTION] [--calibrate]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if calibrate {
        println!("cost-model constants measured on this machine (µs):");
        print!("{}", constants_summary(&calibrate_cost_constants()));
        return ExitCode::SUCCESS;
    }

    eprintln!("running perf suite...");
    let report = run_perf_suite();
    for (name, r) in &report.scenarios {
        eprintln!(
            "  {name}: {:.1} ticks/s (relative {:.3}), exec {:.0}µs/tick, maintain {:.0}µs/tick",
            r.ticks_per_sec, r.relative, r.phase_us.exec, r.phase_us.maintain
        );
        if let Some(mem) = &r.memory {
            eprintln!(
                "    memory: {:.1} bytes/row, peak {:.0} resident pages, \
                 {:.2} page allocs/tick",
                mem.bytes_per_row,
                mem.peak_resident_pages,
                mem.allocs_per_tick.fault_in
                    + mem.allocs_per_tick.exec
                    + mem.allocs_per_tick.post
                    + mem.allocs_per_tick.movement
                    + mem.allocs_per_tick.resurrect
                    + mem.allocs_per_tick.maintain
            );
        }
    }
    let json = report_to_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");

    for (suffix, ratio) in compiled_speedups(&report) {
        eprintln!("  compiled vs interpreter ({suffix}): {ratio:.2}×");
    }
    let compiled_violations = compiled_gate(&report, min_compiled_speedup);
    if !compiled_violations.is_empty() {
        eprintln!("compiled gate FAILED:");
        for v in &compiled_violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!("compiled gate passed: every compiled scenario ≥ {min_compiled_speedup:.2}× its interpreter twin");

    for (suffix, ratio) in materialized_speedups(&report) {
        eprintln!("  materialized vs incremental ({suffix}): {ratio:.2}×");
    }
    let materialized_violations = materialized_gate(&report, min_materialized_speedup);
    if !materialized_violations.is_empty() {
        eprintln!("materialized gate FAILED:");
        for v in &materialized_violations {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    eprintln!(
        "materialized gate passed: every low-churn materialized scenario ≥ \
         {min_materialized_speedup:.2}× its incremental twin"
    );

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_report(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("failed to parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let violations = compare_reports(&report, &baseline, max_regression);
        if violations.is_empty() {
            eprintln!(
                "perf gate passed: {} tracked scenarios within {:.0}% of baseline",
                baseline.tracked.len(),
                max_regression * 100.0
            );
        } else {
            eprintln!("perf gate FAILED:");
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
        let footprint_violations = compare_memory(&report, &baseline, max_footprint_regression);
        if footprint_violations.is_empty() {
            eprintln!(
                "footprint gate passed: tracked scenarios within {:.0}% of baseline memory",
                max_footprint_regression * 100.0
            );
        } else {
            eprintln!("footprint gate FAILED:");
            for v in &footprint_violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
